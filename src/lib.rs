//! # chc
//!
//! Umbrella crate for the CHC reproduction ("Correctness and Performance for
//! Stateful Chained Network Functions", NSDI'19). It re-exports the workspace
//! crates so examples, integration tests and downstream users can depend on a
//! single crate:
//!
//! * [`packet`] — packets, flows, scopes and synthetic traces,
//! * [`sim`] — the deterministic discrete-event substrate,
//! * [`store`] — the external state store,
//! * [`core`] — the CHC framework (DAG API, root, splitters, NF runtime,
//!   client state library, COE protocols),
//! * [`runtime`] — the real-thread execution substrate (batched SPSC
//!   pipelines over a sharded store backend),
//! * [`nf`] — the network functions of the paper's evaluation,
//! * [`baselines`] — behavioural models of the compared systems.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology.

pub use chc_baselines as baselines;
pub use chc_core as core;
pub use chc_nf as nf;
pub use chc_packet as packet;
pub use chc_runtime as runtime;
pub use chc_sim as sim;
pub use chc_store as store;

/// Convenience prelude pulling in the items most programs need.
pub mod prelude {
    pub use chc_baselines::{run_single_nf, SingleNfRun};
    pub use chc_core::{
        Action, ChainConfig, ChainController, ExternalizationMode, LogicalDag, NetworkFunction,
        NfContext, StateObjectSpec, VertexSpec,
    };
    pub use chc_nf::{Firewall, LoadBalancer, Nat, PortscanDetector, Scrubber, TrojanDetector};
    pub use chc_packet::{Packet, Trace, TraceConfig, TraceGenerator};
    pub use chc_runtime::{run_chain_realtime, RuntimeConfig, RuntimeReport};
    pub use chc_sim::{SimDuration, VirtualTime};
    pub use chc_store::{InstanceId, Value, VertexId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let cfg = ChainConfig::default();
        assert!(cfg.duplicate_suppression);
        let trace = TraceGenerator::new(TraceConfig::small(1)).generate();
        assert!(!trace.is_empty());
    }
}
