//! Smoke tests of the real-thread engine: chains run to completion, deliver
//! every packet exactly once, and populate the sharded store.

use chc_core::{ChainConfig, LogicalDag, VertexSpec};
use chc_nf::{Firewall, LoadBalancer, Nat};
use chc_packet::{TraceConfig, TraceGenerator};
use chc_runtime::{run_chain_realtime, RuntimeConfig, RuntimeError};
use chc_store::VertexId;
use std::rc::Rc;

fn fw_nat_lb() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ])
}

#[test]
fn three_nf_chain_delivers_exactly_once() {
    let trace = TraceGenerator::new(TraceConfig::small(42)).generate();
    let report = run_chain_realtime(
        &fw_nat_lb(),
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(16),
        &trace,
    )
    .unwrap();

    assert_eq!(report.injected, trace.len() as u64);
    assert_eq!(report.duplicates, 0);
    assert!(report.delivered > 0);
    // Firewall drops (blocked ports) plus NAT pool exhaustion are the only
    // reasons a packet may be missing at the sink.
    let dropped: u64 = report.instances.iter().map(|i| i.dropped_by_nf).sum();
    assert_eq!(report.delivered as u64 + dropped, report.injected);
    // All three instances processed traffic; batching was in effect.
    assert_eq!(report.instances.len(), 3);
    for inst in &report.instances {
        assert!(
            inst.processed > 0,
            "instance {:?} processed nothing",
            inst.instance
        );
    }
    // The store served traffic across its shards and holds final state.
    assert!(report.store_ops > 0);
    assert_eq!(report.store_ops_per_shard.len(), 4);
    assert!(!report.final_state.is_empty());
    assert!(!report.shared_digest().is_empty());
    // Latency was measured for every delivered packet.
    assert_eq!(report.latency.len(), report.delivered);
    assert!(report.pps() > 0.0 && report.gbps() > 0.0);
}

#[test]
fn batch_size_one_matches_large_batches() {
    let trace = TraceGenerator::new(TraceConfig::small(7)).generate();
    let mut digests = Vec::new();
    let mut delivered = Vec::new();
    for batch in [1usize, 64] {
        let report = run_chain_realtime(
            &fw_nat_lb(),
            ChainConfig::default(),
            &RuntimeConfig::with_batch_size(batch),
            &trace,
        )
        .unwrap();
        assert_eq!(report.duplicates, 0);
        let mut ids = report.delivered_ids.clone();
        ids.sort_unstable();
        delivered.push(ids);
        digests.push(report.shared_digest());
    }
    assert_eq!(
        delivered[0], delivered[1],
        "batch size must not change the delivered set"
    );
    assert_eq!(
        digests[0], digests[1],
        "batch size must not change final shared state"
    );
}

#[test]
fn scale_event_spawns_and_uses_the_extra_instance() {
    let trace = TraceGenerator::new(TraceConfig::small(11)).generate();
    let cut = (trace.len() / 2) as u64;
    let report = run_chain_realtime(
        &fw_nat_lb(),
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(8).with_scale(VertexId(2), cut),
        &trace,
    )
    .unwrap();
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.instances.len(), 4, "scale target pre-spawned");
    let nat_instances: Vec<_> = report
        .instances
        .iter()
        .filter(|i| i.vertex == VertexId(2))
        .collect();
    assert_eq!(nat_instances.len(), 2);
    for inst in &nat_instances {
        assert!(inst.processed > 0, "both NAT instances must see traffic");
    }
}

#[test]
fn invalid_inputs_are_rejected() {
    let trace = TraceGenerator::new(TraceConfig::small(1)).generate();
    let err = run_chain_realtime(
        &fw_nat_lb(),
        ChainConfig::default(),
        &RuntimeConfig::default().with_scale(VertexId(99), 10),
        &trace,
    )
    .unwrap_err();
    assert_eq!(err, RuntimeError::UnknownScaleVertex(VertexId(99)));

    let mut cyclic = LogicalDag::new();
    cyclic.add_vertex(VertexSpec::new(
        1,
        "a",
        Rc::new(|| Box::new(Nat::default())),
    ));
    cyclic.add_vertex(VertexSpec::new(
        2,
        "b",
        Rc::new(|| Box::new(Nat::default())),
    ));
    cyclic.add_edge(VertexId(1), VertexId(2));
    cyclic.add_edge(VertexId(2), VertexId(1));
    assert!(matches!(
        run_chain_realtime(
            &cyclic,
            ChainConfig::default(),
            &RuntimeConfig::default(),
            &trace
        ),
        Err(RuntimeError::Dag(_))
    ));
}
