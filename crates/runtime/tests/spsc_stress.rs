//! Stress tests of the SPSC rings under adversarial thread timing: batch
//! sizes 1/8/64 with seeded random stalls on both endpoints, asserting no
//! loss, no reordering, and clean shutdown when the sender drops with a
//! batch still unflushed. Release builds matter here — timing-dependent
//! ring bugs that debug schedules hide show up at full speed (CI runs this
//! suite in both profiles).

use chc_runtime::spsc::ring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// Push `total` sequential u64s through a ring with the given batch size,
/// stalling pseudo-randomly on both sides, and assert the consumer sees
/// exactly 0..total in order.
fn stress(total: u64, batch: usize, capacity: usize, seed: u64) {
    let (mut tx, mut rx) = ring::<u64>(capacity);
    let producer = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending: Vec<u64> = Vec::with_capacity(batch);
        let mut next = 0u64;
        while next < total || !pending.is_empty() {
            while pending.len() < batch && next < total {
                pending.push(next);
                next += 1;
            }
            while !pending.is_empty() {
                if tx.push_batch(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
                // Random stall: sometimes leave a partial batch in the ring
                // and let the consumer race ahead.
                if rng.gen_range(0..16) == 0 {
                    thread::yield_now();
                    break;
                }
            }
        }
    });

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut expected = 0u64;
    let mut buf: Vec<u64> = Vec::with_capacity(batch);
    loop {
        buf.clear();
        // Vary the pop size so transfers split and merge across batches.
        let max = rng.gen_range(1..=batch.max(1));
        if rx.pop_batch(&mut buf, max) == 0 {
            if rx.is_exhausted() {
                break;
            }
            if rng.gen_range(0..8) == 0 {
                thread::yield_now();
            }
            std::hint::spin_loop();
            continue;
        }
        for v in &buf {
            assert_eq!(*v, expected, "reordered or lost item (batch={batch})");
            expected += 1;
        }
    }
    producer.join().unwrap();
    assert_eq!(expected, total, "lost items (batch={batch})");
}

#[test]
fn batch_1_is_lossless_and_ordered_under_stalls() {
    stress(200_000, 1, 8, 11);
}

#[test]
fn batch_8_is_lossless_and_ordered_under_stalls() {
    stress(500_000, 8, 64, 23);
}

#[test]
fn batch_64_is_lossless_and_ordered_under_stalls() {
    stress(1_000_000, 64, 256, 47);
}

#[test]
fn tiny_ring_maximises_backpressure() {
    // Capacity 2 forces constant full/empty transitions: the producer's and
    // consumer's cached indices go stale on nearly every transfer.
    stress(100_000, 4, 2, 5);
}

#[test]
fn sender_drop_mid_batch_shuts_down_cleanly() {
    for seed in 0..32u64 {
        let (mut tx, mut rx) = ring::<u64>(16);
        let sent = thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            // Push a random number of items, some via partial batches, then
            // drop the producer with a batch possibly unflushed: whatever
            // was published must still be drained, in order, and the
            // consumer must observe exhaustion rather than hang.
            let n = rng.gen_range(0..40u64);
            let mut pending: Vec<u64> = Vec::new();
            let mut pushed = 0u64;
            for i in 0..n {
                pending.push(i);
                if rng.gen_range(0..4) == 0 {
                    pushed += tx.push_batch(&mut pending) as u64;
                }
            }
            pushed += tx.push_batch(&mut pending) as u64;
            pushed
            // tx dropped here; Drop closes the ring.
        })
        .join()
        .unwrap();

        let mut got = 0u64;
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if rx.pop_batch(&mut buf, 7) == 0 {
                if rx.is_exhausted() {
                    break;
                }
                std::hint::spin_loop();
                continue;
            }
            for v in &buf {
                assert_eq!(*v, got, "seed {seed}: reorder after sender drop");
                got += 1;
            }
        }
        assert_eq!(got, sent, "seed {seed}: items published then lost");
        assert!(rx.pop().is_none());
        assert!(rx.is_exhausted());
    }
}
