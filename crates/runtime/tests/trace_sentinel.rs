//! Causal tracing and the invariant sentinel on real failover runs: the
//! exported Chrome trace must be loadable (balanced, per-lane monotone) and
//! must show the killed vertex's packets coming back as replay spans; the
//! sentinel must stay silent on correct runs and flag a seeded
//! commit-frontier regression.

use chc_core::{ChainConfig, LogicalDag, VertexSpec};
use chc_nf::{Firewall, Nat};
use chc_packet::{flow_sampled, Trace, TraceConfig, TraceGenerator, TRACE_PPM_FULL};
use chc_runtime::{
    chrome_trace_json, run_chain_realtime, validate_chrome_trace, FaultPlan, InvariantKind,
    RuntimeConfig, RuntimeReport, SpanKind, TraceLane,
};
use chc_store::VertexId;
use chc_telemetry::{Event, EventKind, Sentinel};
use std::rc::Rc;

const FW: VertexId = VertexId(1);

fn firewall_nat() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
    ])
}

fn trace_for(seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig::small(seed)).generate()
}

fn run(rt: RuntimeConfig, trace: &Trace) -> RuntimeReport {
    run_chain_realtime(&firewall_nat(), ChainConfig::default(), &rt, trace).unwrap()
}

/// The sentinel section must exist (it is on by default) and be clean.
fn assert_sentinel_clean(report: &RuntimeReport) {
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(
        inv.ok(),
        "sentinel violations on a correct run: {:?}",
        inv.violations
    );
    assert!(
        inv.events_checked > 0,
        "sentinel consumed no journal events"
    );
    // Replay-delivered packets are exempt from the flow-order check (their
    // ring order is legitimately non-monotone), so in faulted runs the
    // checker sees a subset of deliveries; healthy tests assert equality.
    assert!(
        inv.deliveries_checked > 0 && inv.deliveries_checked as usize <= report.delivered,
        "flow-order checker saw {} of {} deliveries",
        inv.deliveries_checked,
        report.delivered
    );
    assert_eq!(
        inv.ring_pushed, inv.ring_popped,
        "ring copies in flight after shutdown"
    );
}

#[test]
fn traced_failover_exports_a_loadable_trace_with_replay_spans() {
    let trace = trace_for(91);
    let kill_at = (trace.len() / 2) as u64;
    let report = run(
        RuntimeConfig::with_batch_size(8)
            .with_fault(FaultPlan::new().kill(FW, 0, kill_at))
            .with_trace_sample_ppm(TRACE_PPM_FULL),
        &trace,
    );
    assert_eq!(report.duplicates, 0);
    assert_sentinel_clean(&report);

    let telemetry = report.telemetry.as_ref().expect("telemetry on");
    let spans = &telemetry.trace_spans;
    assert_eq!(telemetry.trace_dropped, 0);

    // Full sampling: every injected packet got a root inject span with its
    // clock counter as the trace id.
    let injects = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Inject))
        .count();
    assert_eq!(injects as u64, report.injected);

    // The export is Perfetto-loadable in shape: balanced B/E nesting and
    // monotone timestamps on every lane.
    let json = chrome_trace_json(spans);
    let shape = validate_chrome_trace(&json).expect("invalid Chrome trace");
    assert_eq!(shape.begins, shape.ends);
    // Root, sink, supervisor, both original instances and the replacement.
    assert!(shape.lanes >= 6, "only {} lanes", shape.lanes);

    // The failover is visible: the supervisor lane carries replay_inject
    // spans for the logged packets...
    let replay_injects: Vec<u64> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplayInject))
        .map(|s| s.trace_id)
        .collect();
    assert!(
        !replay_injects.is_empty(),
        "no replay_inject spans recorded"
    );
    assert!(spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplayInject))
        .all(|s| s.lane == TraceLane::Supervisor));

    // ...and the replacement's lane (fresh instance id 2 on the killed
    // vertex) shows replayed service spans for them.
    let replacement_lane = TraceLane::Vertex {
        vertex: FW.0,
        instance: 2,
    };
    let replayed_service: Vec<u64> = spans
        .iter()
        .filter(|s| {
            s.lane == replacement_lane && matches!(s.kind, SpanKind::Service { replay: true, .. })
        })
        .map(|s| s.trace_id)
        .collect();
    assert!(
        !replayed_service.is_empty(),
        "replacement processed no replayed packets on its lane"
    );
    // Every replayed service corresponds to a supervisor re-injection, and
    // every re-injected packet was root-stamped first.
    let inject_ids: std::collections::HashSet<u64> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Inject))
        .map(|s| s.trace_id)
        .collect();
    for id in &replayed_service {
        assert!(
            replay_injects.contains(id),
            "service replay {id} never re-injected"
        );
        assert!(
            inject_ids.contains(id),
            "replayed {id} missing its root inject span"
        );
    }

    // Queue-level duplicate suppression of replayed copies shows up too.
    assert!(
        spans.iter().any(|s| matches!(s.kind, SpanKind::Suppress)),
        "replay produced no suppress spans"
    );
}

#[test]
fn flow_sampling_is_deterministic_and_flow_complete() {
    let trace = trace_for(29);
    let ppm = 500_000; // half the flows
    let report = run(
        RuntimeConfig::with_batch_size(8).with_trace_sample_ppm(ppm),
        &trace,
    );
    assert_sentinel_clean(&report);
    // Healthy run: every delivery goes through the flow-order checker.
    assert_eq!(
        report.invariants.as_ref().unwrap().deliveries_checked as usize,
        report.delivered
    );
    let spans = &report.telemetry.as_ref().unwrap().trace_spans;

    // Expected trace-id set, derived from the trace alone: packet i gets
    // clock counter i+1, and sampling is a pure function of the flow key.
    let expected: std::collections::BTreeSet<u64> = trace
        .packets
        .iter()
        .enumerate()
        .filter(|(_, p)| flow_sampled(p.flow_key(), ppm))
        .map(|(i, _)| i as u64 + 1)
        .collect();
    assert!(!expected.is_empty(), "sampling rate chose no flows");
    assert!(
        (expected.len() as u64) < report.injected,
        "sampling rate chose every packet"
    );

    let injected_ids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Inject))
        .map(|s| s.trace_id)
        .collect();
    assert_eq!(
        injected_ids, expected,
        "sampled set is not flow-deterministic"
    );
    // No span of any kind leaks from an unsampled packet.
    assert!(spans.iter().all(|s| expected.contains(&s.trace_id)));

    // And the export still validates at partial sampling.
    validate_chrome_trace(&chrome_trace_json(spans)).expect("invalid Chrome trace");
}

#[test]
fn zero_sampling_collects_no_spans() {
    let trace = trace_for(11);
    let report = run(RuntimeConfig::with_batch_size(8), &trace);
    assert_sentinel_clean(&report);
    let telemetry = report.telemetry.as_ref().unwrap();
    assert!(telemetry.trace_spans.is_empty());
    assert_eq!(telemetry.trace_dropped, 0);
}

#[test]
fn sentinel_flags_an_injected_frontier_regression() {
    // A real faulted run's journal is clean end to end...
    let trace = trace_for(91);
    let kill_at = (trace.len() / 2) as u64;
    let report = run(
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(FW, 0, kill_at)),
        &trace,
    );
    assert_sentinel_clean(&report);
    let events = &report.telemetry.as_ref().unwrap().events;
    let frontiers: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CommitFrontier { .. }))
        .collect();
    assert!(!frontiers.is_empty(), "run journaled no frontier advances");

    let mut sentinel = Sentinel::new();
    let mut violations = Vec::new();
    for e in events.iter() {
        violations.extend(sentinel.observe(e));
    }
    assert!(
        violations.is_empty(),
        "replayed journal raised: {violations:?}"
    );

    // ...until a regressed commit-frontier event is appended: the sentinel
    // must catch it as a monotonicity violation naming both values.
    let last = match frontiers.last().unwrap().kind {
        EventKind::CommitFrontier { frontier, .. } => frontier,
        _ => unreachable!(),
    };
    assert!(last > 0);
    let forged = Event {
        seq: events.last().unwrap().seq + 1,
        t_ns: events.last().unwrap().t_ns + 1,
        kind: EventKind::CommitFrontier {
            frontier: last - 1,
            dropped: 0,
        },
    };
    let caught = sentinel.observe(&forged);
    assert_eq!(caught.len(), 1);
    assert_eq!(caught[0].invariant, InvariantKind::FrontierMonotonic);
    assert_eq!(caught[0].observed, last - 1);
    assert_eq!(caught[0].expected, last);
}
