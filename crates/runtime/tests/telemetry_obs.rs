//! Observability of the real-thread engine: the monitor's gauge time
//! series, the per-stage latency decomposition, and the control-plane
//! event journal — including its causal ordering across a failover.

use chc_core::{ChainConfig, LogicalDag, VertexSpec};
use chc_nf::{Firewall, Nat};
use chc_packet::{Trace, TraceConfig, TraceGenerator};
use chc_runtime::{run_chain_realtime, FaultPlan, RuntimeConfig, RuntimeReport, TelemetryConfig};
use chc_store::VertexId;
use chc_telemetry::EventKind;
use std::rc::Rc;
use std::time::Duration;

const FW: VertexId = VertexId(1);
const NAT: VertexId = VertexId(2);

fn firewall_nat() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
    ])
}

fn trace_for(seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig::small(seed)).generate()
}

fn run(rt: RuntimeConfig, trace: &Trace) -> RuntimeReport {
    run_chain_realtime(&firewall_nat(), ChainConfig::default(), &rt, trace).unwrap()
}

#[test]
fn monitor_collects_monotonic_gauge_series_and_shuts_down_cleanly() {
    let trace = trace_for(11);
    let report = run(
        RuntimeConfig::with_batch_size(8).with_sample_interval(Duration::from_millis(1)),
        &trace,
    );
    // run_chain_realtime returning at all proves the monitor thread joined
    // (the engine joins every scoped thread); the series prove it sampled.
    let telemetry = report.telemetry.as_ref().expect("telemetry on by default");
    let series = &telemetry.series;
    assert!(!series.series.is_empty(), "monitor produced no series");
    assert!(
        series.is_monotonic(),
        "gauge timestamps regressed within a series"
    );
    for g in &series.series {
        assert!(
            g.len() >= 2,
            "series {} missing initial/final sample",
            g.name
        );
    }
    // Every gauge family the config promises is present.
    assert!(series.with_prefix("ring.").count() > 0);
    let rates: Vec<_> = series.with_prefix("shard.").collect();
    assert!(rates.iter().any(|g| g.name.ends_with(".ops_per_sec")));
    // Healthy run: no fault plan, so no WAL/packet-log gauges, and replay
    // progress stays flat at zero.
    assert!(!rates.iter().any(|g| g.name.ends_with(".wal_depth")));
    assert!(series.get("rootlog.len").is_none());
    let replay = series.get("replay.packets").expect("replay gauge");
    assert!(replay.points.iter().all(|p| p.value == 0.0));
    // The store served real traffic, so some shard rate sample is nonzero.
    assert!(
        rates.iter().any(|g| g.points.iter().any(|p| p.value > 0.0)),
        "all shard op rates were zero despite store traffic"
    );
}

#[test]
fn stage_decomposition_tracks_the_end_to_end_latency() {
    let trace = trace_for(29);
    let report = run(RuntimeConfig::with_batch_size(8), &trace);
    let telemetry = report.telemetry.as_ref().expect("telemetry on by default");

    // One stage per vertex, in vertex order, each having seen every live
    // packet that reached it.
    let vertices: Vec<VertexId> = telemetry.stages.iter().map(|s| s.vertex).collect();
    assert_eq!(vertices, vec![FW, NAT]);
    let fw = &telemetry.stages[0];
    assert_eq!(fw.queue.count, fw.service.count);
    assert_eq!(fw.service.count, report.injected);
    assert_eq!(telemetry.sink_wait.count as usize, report.delivered);

    // The hop stamps telescope (queue + service + store per vertex, plus
    // the final sink hop), so the reconstructed mean must track the e2e
    // histogram's mean; firewall drops and clock-read jitter are the only
    // divergence sources.
    let e2e = report.latency.mean();
    let decomposed = telemetry.decomposed_mean_ns();
    assert!(e2e > 0.0 && decomposed > 0.0);
    assert!(
        (decomposed - e2e).abs() / e2e < 0.25,
        "decomposed {decomposed:.0} ns strays from e2e {e2e:.0} ns"
    );
}

#[test]
fn disabling_telemetry_removes_the_report_section() {
    let trace = trace_for(11);
    let report = run(
        RuntimeConfig::with_batch_size(8).with_telemetry(TelemetryConfig::disabled()),
        &trace,
    );
    assert!(report.telemetry.is_none());
    assert!(
        report.invariants.is_none(),
        "disabled() turns the sentinel off"
    );
    // The end-to-end histogram is independent of the telemetry switches.
    assert!(report.latency.len() == report.delivered);
}

#[test]
fn failover_journal_records_the_recovery_in_causal_order() {
    let trace = trace_for(91);
    let kill_at = (trace.len() / 2) as u64;
    let report = run(
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(FW, 0, kill_at)),
        &trace,
    );
    let telemetry = report.telemetry.as_ref().expect("telemetry on by default");
    let fault = report.fault.as_ref().expect("fault report");
    let recovery = &fault.recoveries[0];

    // The sentinel consumed this same journal live and found nothing wrong.
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);
    assert!(inv.events_checked as usize >= telemetry.events.len());

    // The journal holds exactly one event of each failover phase, and their
    // sequence numbers order them causally: the kill strictly precedes the
    // supervisor's begin → spawn → replay → end.
    let seq_of = |name: &str| -> u64 {
        let found = telemetry.events_named(name);
        assert_eq!(found.len(), 1, "expected exactly one {name} event");
        found[0].seq
    };
    let killed = seq_of("instance_killed");
    let begin = seq_of("failover_begin");
    let spawn = seq_of("replacement_spawn");
    let replay = seq_of("replay_complete");
    let end = seq_of("failover_end");
    assert!(killed < begin && begin < spawn && spawn < replay && replay < end);

    // Timestamps agree with the causal order (all clocks come from the one
    // run epoch).
    let t_of = |name: &str| telemetry.events_named(name)[0].t_ns;
    assert!(t_of("instance_killed") <= t_of("failover_begin"));
    assert!(t_of("failover_begin") <= t_of("failover_end"));

    // Event payloads match the fault report's measured recovery exactly.
    match &telemetry.events_named("instance_killed")[0].kind {
        EventKind::InstanceKilled {
            vertex,
            index,
            instance,
            clock,
        } => {
            assert_eq!((*vertex, *index), (FW.0, 0));
            assert_eq!(*instance, recovery.failed_instance.0 as u64);
            assert!(
                *clock >= kill_at,
                "kill fired at clock {clock}, before the armed counter {kill_at}"
            );
        }
        other => panic!("wrong payload: {other:?}"),
    }
    match &telemetry.events_named("replay_complete")[0].kind {
        EventKind::ReplayComplete {
            instance,
            packets_replayed,
            ..
        } => {
            assert_eq!(*instance, recovery.replacement.0 as u64);
            assert_eq!(*packets_replayed, recovery.packets_replayed);
        }
        other => panic!("wrong payload: {other:?}"),
    }
    match &telemetry.events_named("failover_end")[0].kind {
        EventKind::FailoverEnd { recovery_ns, .. } => {
            assert_eq!(*recovery_ns, recovery.recovery_wall.as_nanos() as u64);
        }
        other => panic!("wrong payload: {other:?}"),
    }

    // Truncation advanced the commit frontier at least once, and every
    // spawn the run journaled (initial instances + the replacement) is
    // accounted for.
    assert!(
        !telemetry.events_named("commit_frontier").is_empty(),
        "no commit-frontier advance was journaled"
    );
    let spawns = telemetry.events_named("instance_spawn").len();
    assert_eq!(spawns, 2, "firewall + NAT initial spawns");
    assert_eq!(telemetry.events_named("replacement_spawn").len(), 1);
}
