//! Fault-injected runs of the real-thread engine: instance kill + failover
//! with replay, store shard restarts from the per-shard journal, and the
//! sink's exact duplicate accounting under deliberate re-injection.
//!
//! The common yardstick is a healthy run of the same seeded trace: failures
//! plus recovery must reproduce its delivered packet set and its shared
//! state digest, with zero duplicates at the sink (R1/R6).

use chc_core::{ChainConfig, LogicalDag, VertexSpec};
use chc_nf::{Firewall, LoadBalancer, Nat};
use chc_packet::{PacketId, Trace, TraceConfig, TraceGenerator};
use chc_runtime::{run_chain_realtime, FaultPlan, RuntimeConfig, RuntimeError, RuntimeReport};
use chc_store::{InstanceId, VertexId};
use std::rc::Rc;

const FW: VertexId = VertexId(1);
const NAT: VertexId = VertexId(2);
const LB: VertexId = VertexId(3);

fn firewall_nat() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
    ])
}

fn fw_nat_lb() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ])
}

fn wide_firewall_nat() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        )
        .with_parallelism(2),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
    ])
}

fn nat_only() -> LogicalDag {
    LogicalDag::linear(vec![VertexSpec::new(
        2,
        "nat",
        Rc::new(|| Box::new(Nat::default())),
    )])
}

fn trace_for(seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig::small(seed)).generate()
}

fn run(dag: &LogicalDag, cfg: ChainConfig, rt: RuntimeConfig, trace: &Trace) -> RuntimeReport {
    run_chain_realtime(dag, cfg, &rt, trace).unwrap()
}

fn sorted_ids(report: &RuntimeReport) -> Vec<PacketId> {
    let mut ids = report.delivered_ids.clone();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The invariant sentinel runs by default and must stay silent on every
/// correct run — healthy, faulted and recovered alike.
fn assert_no_violations(report: &RuntimeReport) {
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);
}

#[test]
fn instance_kill_recovers_to_the_healthy_outcome() {
    let trace = trace_for(91);
    let kill_at = (trace.len() / 2) as u64;

    let healthy = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(FW, 0, kill_at)),
        &trace,
    );

    // R1: failover must not lose or duplicate chain output...
    assert_eq!(
        faulted.duplicates, 0,
        "replay leaked duplicates to the sink"
    );
    assert_no_violations(&healthy);
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    // ...and shared state must converge to the no-failure outcome (replay is
    // idempotent thanks to store-side clock deduplication).
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());

    // The failed instance's partial report is kept apart; the replacement
    // (a fresh instance id) shows up in the live set and processed traffic.
    assert_eq!(faulted.failed_instances.len(), 1);
    assert_eq!(faulted.failed_instances[0].instance, InstanceId(0));
    let replacement = faulted
        .instances
        .iter()
        .find(|i| i.instance == InstanceId(2))
        .expect("replacement instance missing from the report");
    assert_eq!(replacement.vertex, FW);
    assert!(replacement.processed > 0, "replacement processed nothing");

    // Recovery metrics: the log was bounded by truncation, packets were
    // replayed, and the recovery took measurable wall-clock time.
    let fault = faulted.fault.as_ref().expect("fault report missing");
    assert_eq!(fault.recoveries.len(), 1);
    let rec = &fault.recoveries[0];
    assert_eq!(
        (rec.failed_instance, rec.replacement),
        (InstanceId(0), InstanceId(2))
    );
    assert!(rec.packets_replayed > 0, "nothing was replayed");
    assert!(rec.recovery_wall.as_nanos() > 0);
    assert!(fault.log_high_water > 0);
    assert!(
        fault.log_truncated > 0,
        "commit-frontier truncation never dropped a confirmed packet"
    );
    assert!(
        fault.log_final_len < fault.log_high_water,
        "the log never shrank below its high-water mark"
    );
    assert_eq!(fault.log_rejected, 0, "the bounded log rejected packets");

    // Replay produced duplicates somewhere — and every one of them was
    // suppressed at an input queue, not at the sink.
    let suppressed: u64 = faulted
        .instances
        .iter()
        .map(|i| i.suppressed_duplicates)
        .sum();
    assert!(suppressed > 0, "replay should hit queue-level suppression");
}

#[test]
fn instance_kill_is_deterministic_across_batch_sizes() {
    let trace = trace_for(17);
    let kill_at = (trace.len() / 3) as u64;
    let mut digests = Vec::new();
    let mut id_sets = Vec::new();
    for batch in [1usize, 8, 64] {
        let report = run(
            &firewall_nat(),
            ChainConfig::default(),
            RuntimeConfig::with_batch_size(batch).with_fault(FaultPlan::new().kill(FW, 0, kill_at)),
            &trace,
        );
        assert_eq!(report.duplicates, 0, "batch {batch}");
        assert_no_violations(&report);
        digests.push(report.shared_digest());
        id_sets.push(sorted_ids(&report));
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert!(id_sets.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn shard_restart_recovers_from_checkpoint_plus_journal() {
    let trace = trace_for(23);
    let mid = (trace.len() / 2) as u64;
    let healthy = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(16),
        &trace,
    );
    // Restart every shard once, checkpointing some earlier: recovery must be
    // invisible in the observables regardless.
    let mut plan = FaultPlan::new();
    for shard in 0..4 {
        let checkpoint = (shard % 2 == 0).then_some(mid / 2 + shard as u64);
        plan = plan.restart_shard(shard, mid + shard as u64, checkpoint);
    }
    let faulted = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(16).with_fault(plan),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
    let fault = faulted.fault.as_ref().expect("fault report missing");
    assert_eq!(fault.shard_recoveries.len(), 4);
    // How much lands in the checkpoint versus the journal suffix depends on
    // how far the pipeline had progressed when each trigger fired (the
    // split itself is unit-tested deterministically in chc-store); what
    // must hold here is that recovery actually rebuilt state.
    let rebuilt: usize = fault
        .shard_recoveries
        .iter()
        .map(|r| r.replayed_ops + r.restored_from_checkpoint)
        .sum();
    assert!(rebuilt > 0, "no shard rebuilt any state");
}

#[test]
fn combined_kill_and_checkpointed_shard_restart_stay_exact() {
    // Replay after the kill re-sends clocks that were applied *before* the
    // shard's checkpoint: the restarted shard must still emulate them from
    // its durable image (a checkpoint that dropped the duplicate-suppression
    // log would double-apply here and corrupt the digest).
    let trace = trace_for(41);
    let quarter = (trace.len() / 4) as u64;
    let healthy = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let mut plan = FaultPlan::new().kill(FW, 0, 3 * quarter);
    for shard in 0..4 {
        plan = plan.restart_shard(shard, 2 * quarter, Some(quarter));
    }
    let faulted = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(plan),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
    let fault = faulted.fault.as_ref().unwrap();
    assert_eq!(fault.recoveries.len(), 1);
    assert_eq!(fault.shard_recoveries.len(), 4);
}

#[test]
fn reinjection_is_counted_exactly_at_the_sink() {
    let trace = trace_for(7);
    // Re-inject three logged packets after the trace. With queue-level
    // suppression disabled they flow the whole chain again; the NAT-only
    // chain forwards everything, so the sink must see each one exactly once
    // more — counted, not silently deduplicated.
    let counters = [5u64, 17, 40];
    let cfg = ChainConfig {
        duplicate_suppression: false,
        ..ChainConfig::default()
    };
    let report = run(
        &nat_only(),
        cfg,
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().reinject(counters)),
        &trace,
    );
    assert_eq!(report.duplicates, counters.len() as u64);
    // Deliberate re-injection: sink duplicates are expected and accounted,
    // so the exactly-once invariant must NOT fire.
    assert_no_violations(&report);
    let mut dup_counters: Vec<u64> = report
        .duplicate_clocks
        .iter()
        .map(|c| c.counter())
        .collect();
    dup_counters.sort_unstable();
    assert_eq!(dup_counters, counters);
    assert_eq!(
        report.fault.as_ref().unwrap().reinjected,
        counters.len() as u64
    );
    // Store-side clock deduplication still made the re-run state-neutral.
    let healthy = run(
        &nat_only(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    assert_eq!(healthy.shared_digest(), report.shared_digest());
}

#[test]
fn reinjection_is_suppressed_at_the_queue_when_enabled() {
    let trace = trace_for(7);
    let report = run(
        &nat_only(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().reinject([5u64, 17])),
        &trace,
    );
    // With suppression on (the default), the duplicates die at the NAT's
    // input queue and the sink stays clean.
    assert_eq!(report.duplicates, 0);
    assert_no_violations(&report);
    let suppressed: u64 = report
        .instances
        .iter()
        .map(|i| i.suppressed_duplicates)
        .sum();
    assert_eq!(suppressed, 2);
}

#[test]
fn fault_plans_are_validated() {
    let trace = trace_for(3);
    let cfg = ChainConfig::default();
    let run_with = |plan: FaultPlan, rt_mut: fn(RuntimeConfig) -> RuntimeConfig| {
        run_chain_realtime(
            &firewall_nat(),
            cfg,
            &rt_mut(RuntimeConfig::with_batch_size(8).with_fault(plan)),
            &trace,
        )
        .map(|_| ())
    };
    let id = |rt: RuntimeConfig| rt;

    assert_eq!(
        run_with(FaultPlan::new().kill(VertexId(9), 0, 10), id),
        Err(RuntimeError::UnknownFaultVertex(VertexId(9)))
    );
    // Non-entry and tail kills are accepted by default (per-vertex egress
    // logs replay at the right depth, the XOR delete window bounds tail
    // re-delivery); the old rejections survive only behind the legacy flag.
    assert_eq!(run_with(FaultPlan::new().kill(NAT, 0, 10), id), Ok(()));
    assert_eq!(
        run_with(FaultPlan::new().kill(NAT, 0, 10), |rt| {
            rt.with_legacy_entry_only_failover(true)
        }),
        Err(RuntimeError::KillNotAtEntry(NAT))
    );
    assert_eq!(
        run_chain_realtime(
            &nat_only(),
            cfg,
            &RuntimeConfig::with_batch_size(8)
                .with_fault(FaultPlan::new().kill(NAT, 0, 10))
                .with_legacy_entry_only_failover(true),
            &trace,
        )
        .map(|_| ()),
        Err(RuntimeError::KillAtChainTail(NAT))
    );
    assert_eq!(
        run_with(FaultPlan::new().kill_root(0), id),
        Err(RuntimeError::KillOutsideTrace {
            at_counter: 0,
            trace_len: trace.len()
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().kill_root(10), |mut rt| {
            rt.clock_tag_updates = false;
            rt
        }),
        Err(RuntimeError::FaultNeedsClockTags)
    );
    assert_eq!(
        run_with(FaultPlan::new().kill(FW, 3, 10), id),
        Err(RuntimeError::FaultIndexOutOfRange {
            vertex: FW,
            index: 3,
            instances: 1
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().kill(FW, 0, 0), id),
        Err(RuntimeError::KillOutsideTrace {
            at_counter: 0,
            trace_len: trace.len()
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().kill(FW, 0, 10).kill(FW, 0, 20), id),
        Err(RuntimeError::DuplicateKill {
            vertex: FW,
            index: 0
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().restart_shard(9, 10, None), id),
        Err(RuntimeError::ShardOutOfRange {
            shard: 9,
            shards: 4
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().reinject([0u64]), id),
        Err(RuntimeError::ReinjectOutsideTrace {
            counter: 0,
            trace_len: trace.len()
        })
    );
    assert_eq!(
        run_with(FaultPlan::new().kill(FW, 0, 10), |mut rt| {
            rt.clock_tag_updates = false;
            rt
        }),
        Err(RuntimeError::FaultNeedsClockTags)
    );
}

#[test]
fn mid_chain_kill_replays_from_the_upstream_egress_log() {
    let trace = trace_for(53);
    let kill_at = (trace.len() / 2) as u64;
    let healthy = run(
        &fw_nat_lb(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &fw_nat_lb(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(NAT, 0, kill_at)),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&healthy);
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());

    let fault = faulted.fault.as_ref().expect("fault report missing");
    assert_eq!(fault.recoveries.len(), 1);
    assert!(fault.recoveries[0].packets_replayed > 0);
    // The replay source was the firewall's egress log, not the root's: the
    // upstream of the killed vertex was armed and actually logged traffic.
    let fw_log = fault
        .vertex_logs
        .iter()
        .find(|s| s.vertex == FW)
        .expect("upstream egress log missing from the report");
    assert!(fw_log.high_water > 0, "the firewall never logged egress");
    assert_eq!(fw_log.rejected, 0);
}

#[test]
fn tail_kill_bounds_redelivery_with_the_xor_delete_window() {
    let trace = trace_for(67);
    let kill_at = (trace.len() / 2) as u64;
    let healthy = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(NAT, 0, kill_at)),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&healthy);
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());

    // The tail replacement re-processed the replayed suffix, but the XOR
    // delete ledger gated everything already confirmed at the sink: gated
    // packets plus the sink's replay-window suppression account for every
    // replayed copy that could have reached the end host twice.
    let replacement = faulted
        .instances
        .iter()
        .find(|i| i.vertex == NAT && i.instance != InstanceId(1))
        .expect("tail replacement missing");
    // Whether a given replayed copy is caught at the replacement's egress
    // (ledger already confirmed when it re-emits) or at the sink (the
    // confirmation raced the re-emission) depends on thread timing; the
    // window bound is the sum of the two.
    assert!(
        replacement.replay_egress_gated + faulted.replay_window_suppressed > 0,
        "no replayed copy of a delivered clock was ever caught by the window"
    );
}

#[test]
fn tail_kill_in_a_three_nf_chain_replays_from_the_nat_log() {
    // Same protocol, one level deeper: the LB tail dies in the 3-NF chain,
    // so the replacement is fed from the NAT's egress log (not the root's)
    // and its re-emissions are gated by the XOR delete window.
    let trace = trace_for(71);
    let kill_at = (trace.len() / 2) as u64;
    let healthy = run(
        &fw_nat_lb(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &fw_nat_lb(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(LB, 0, kill_at)),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
    let fault = faulted.fault.as_ref().expect("fault report");
    assert_eq!(fault.recoveries.len(), 1);
    assert!(fault.aborts.is_empty());
    // The NAT (the killed tail's upstream) armed an egress log and it saw
    // traffic; the root log alone would replay at the wrong depth.
    assert!(
        fault
            .vertex_logs
            .iter()
            .any(|vl| vl.vertex == NAT && vl.high_water > 0),
        "no armed NAT egress log in {:?}",
        fault.vertex_logs
    );
}

#[test]
fn entry_and_tail_single_vertex_kill_recovers() {
    // A single-NF chain's vertex is entry *and* tail — the position the old
    // engine rejected outright (`KillAtChainTail`). Replay comes from the
    // root log and the XOR delete window plus sink-side replay suppression
    // keep the end host exactly-once.
    let trace = trace_for(29);
    let kill_at = (trace.len() / 2) as u64;
    let healthy = run(
        &nat_only(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &nat_only(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(NAT, 0, kill_at)),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
}

#[test]
fn root_kill_hands_injection_to_the_warm_standby() {
    let trace = trace_for(83);
    let kill_at = (trace.len() / 2) as u64;
    let healthy = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill_root(kill_at)),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0);
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
    assert_eq!(faulted.injected, trace.len() as u64, "trace not completed");

    let takeover = faulted
        .fault
        .as_ref()
        .expect("fault report missing")
        .root_takeover
        .expect("takeover record missing");
    assert_eq!(takeover.killed_at, kill_at);
    assert_eq!(
        takeover.resumed_at, kill_at,
        "the standby must resume exactly where the root died"
    );
    assert!(takeover.recovery_wall.as_nanos() > 0);
}

#[test]
fn overlapping_kills_do_not_double_count_duplicates() {
    // Two failovers whose replay windows overlap (both firewall replicas die
    // around the same clock) stress the duplicate accounting: every replayed
    // copy must land in queue-level suppression or the sink's replay-window
    // counter, never in `duplicates`/`duplicate_clocks` — double-counting
    // there was exactly the bug class this accounting split fixes.
    let trace = trace_for(59);
    let third = (trace.len() / 3) as u64;
    let healthy = run(
        &wide_firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8),
        &trace,
    );
    let faulted = run(
        &wide_firewall_nat(),
        ChainConfig::default(),
        RuntimeConfig::with_batch_size(8).with_fault(FaultPlan::new().kill(FW, 0, third).kill(
            FW,
            1,
            third + 4,
        )),
        &trace,
    );
    assert_eq!(faulted.duplicates, 0, "overlapping replays double-counted");
    assert!(faulted.duplicate_clocks.is_empty());
    assert_no_violations(&faulted);
    assert_eq!(sorted_ids(&healthy), sorted_ids(&faulted));
    assert_eq!(healthy.shared_digest(), faulted.shared_digest());
    let fault = faulted.fault.as_ref().expect("fault report missing");
    assert_eq!(fault.recoveries.len(), 2);
    assert!(
        fault.aborts.is_empty(),
        "a failover aborted: {:?}",
        fault.aborts
    );
}
