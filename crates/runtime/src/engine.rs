//! The real-thread chain engine.
//!
//! [`run_chain_realtime`] executes a [`LogicalDag`] on OS threads:
//!
//! * a **root** (the calling thread) stamps logical clocks in trace order
//!   and feeds the entry vertices,
//! * one thread per **NF instance** pulls packet batches from its input
//!   rings, runs the unmodified [`chc_core::NetworkFunction`] against a
//!   [`StateClient`] backed by the sharded [`StoreServer`], and forwards
//!   outputs through the scope-aware splitters,
//! * a **sink** thread collects chain output, de-duplicates by clock and
//!   measures root→sink wall-clock latency.
//!
//! Every (producer, consumer) pair is connected by exactly one bounded SPSC
//! ring ([`crate::spsc`]), so the packet path takes no locks; packets move in
//! configurable batches that amortize ring and store-client overhead.
//!
//! Routing is the *same* scope-aware [`Splitter`] logic the simulator uses,
//! driven purely by `(packet, logical clock)` — including pre-planned
//! elastic scale-out events — so a given trace partitions identically on
//! both substrates and their outputs can be compared for chain output
//! equivalence. Failure injection, straggler cloning and replay are
//! simulator-only for now (see `DESIGN.md`).

use crate::config::RuntimeConfig;
use crate::report::{RuntimeInstanceReport, RuntimeReport};
use crate::spsc::{ring, Consumer, Producer};
use chc_core::dag::DagError;
use chc_core::{
    ChainConfig, LogicalDag, NetworkFunction, NfContext, Splitter, StateClient, TaggedPacket,
};
use chc_packet::{PacketId, Scope, Trace};
use chc_sim::{Histogram, VirtualTime};
use chc_store::{Clock, InstanceId, StateKey, StoreServer, Value, VertexId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Errors surfaced while planning a real-thread run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The logical DAG failed validation.
    Dag(DagError),
    /// The scale event names a vertex not present in the DAG.
    UnknownScaleVertex(VertexId),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Dag(e) => write!(f, "invalid DAG: {e}"),
            RuntimeError::UnknownScaleVertex(v) => {
                write!(f, "scale event references unknown vertex {v}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<DagError> for RuntimeError {
    fn from(e: DagError) -> RuntimeError {
        RuntimeError::Dag(e)
    }
}

/// Identity and wiring of one planned instance.
struct InstancePlan {
    vertex: VertexId,
    instance: InstanceId,
    off_path: bool,
    is_tail: bool,
    downstream: Vec<VertexId>,
    nf: Box<dyn NetworkFunction>,
    objects: Vec<chc_core::StateObjectSpec>,
}

/// A buffered outgoing edge to one downstream instance.
struct OutLink {
    producer: Producer<TaggedPacket>,
    buf: Vec<TaggedPacket>,
}

impl OutLink {
    fn new(producer: Producer<TaggedPacket>, batch: usize) -> OutLink {
        OutLink {
            producer,
            buf: Vec::with_capacity(batch),
        }
    }

    /// Queue one packet; drain the buffer through the ring once it holds a
    /// full batch (spinning on downstream backpressure — the DAG is acyclic
    /// and the sink always drains, so this cannot deadlock).
    fn push(&mut self, tp: TaggedPacket, batch: usize) {
        self.buf.push(tp);
        if self.buf.len() >= batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        while !self.buf.is_empty() {
            if self.producer.push_batch(&mut self.buf) == 0 {
                thread::yield_now();
            }
        }
    }
}

/// Callback notifications (store → instance) for read-heavy cached objects.
/// Unlike the packet path this is many-producers → one-consumer and very low
/// rate, so a mutexed vector is the right tool.
type Inbox = Arc<Mutex<Vec<(StateKey, Value)>>>;

/// What an instance thread hands back when it exits.
struct InstanceResult {
    vertex: VertexId,
    instance: InstanceId,
    processed: u64,
    dropped_by_nf: u64,
    alerts: Vec<(Clock, String)>,
    batches_in: u64,
}

/// Execute `dag` over `trace` on real threads. See the module docs.
pub fn run_chain_realtime(
    dag: &LogicalDag,
    config: ChainConfig,
    rt: &RuntimeConfig,
    trace: &Trace,
) -> Result<RuntimeReport, RuntimeError> {
    dag.topo_order()?;
    if let Some(scale) = rt.scale {
        if dag.vertex(scale.vertex).is_none() {
            return Err(RuntimeError::UnknownScaleVertex(scale.vertex));
        }
    }
    let batch = rt.batch_size.max(1);
    let depth = rt.queue_depth.max(batch * 2);

    // ------------------------------------------------------------------
    // Plan: splitters, instance identities, NF code.
    // ------------------------------------------------------------------

    // Same scope choice as ChainController::new: the coarsest partitionable
    // scope minimises shared state; Global cannot spread load, so it is
    // skipped.
    let mut splitters: HashMap<VertexId, Splitter> = HashMap::new();
    for v in dag.vertices() {
        let scope = v
            .scopes()
            .into_iter()
            .filter(|s| *s != Scope::Global)
            .max()
            .unwrap_or(Scope::FiveTuple);
        splitters.insert(v.id, Splitter::new(v.id, scope, v.parallelism));
    }

    // Instance identities in ChainController order (vertex declaration order,
    // then index), with the scale-out instance appended last — ids must match
    // the simulator's so per-flow datastore keys line up across substrates.
    let exits = dag.exits();
    let mut plans: Vec<InstancePlan> = Vec::new();
    let mut next_instance = 0u32;
    for v in dag.vertices() {
        for _ in 0..v.parallelism {
            let nf = v.build_nf();
            let objects = nf.state_objects();
            plans.push(InstancePlan {
                vertex: v.id,
                instance: InstanceId(next_instance),
                off_path: v.off_path,
                is_tail: exits.contains(&v.id),
                downstream: dag.downstream_of(v.id),
                nf,
                objects,
            });
            next_instance += 1;
        }
    }
    if let Some(scale) = rt.scale {
        let v = dag.vertex(scale.vertex).expect("validated above");
        let nf = v.build_nf();
        let objects = nf.state_objects();
        plans.push(InstancePlan {
            vertex: v.id,
            instance: InstanceId(next_instance),
            off_path: v.off_path,
            is_tail: exits.contains(&v.id),
            downstream: dag.downstream_of(v.id),
            nf,
            objects,
        });
        let splitter = splitters.get_mut(&scale.vertex).expect("splitter exists");
        splitter.schedule_scale(scale.first_counter, v.parallelism + 1);
    }
    let splitters = Arc::new(splitters);

    // Instance indices per vertex, in id order (= index order).
    let mut by_vertex: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (i, p) in plans.iter().enumerate() {
        by_vertex.entry(p.vertex).or_default().push(i);
    }

    // ------------------------------------------------------------------
    // Wiring: one SPSC ring per (producer, consumer) pair.
    // ------------------------------------------------------------------

    // inputs[i]: consumers feeding instance i; outs[i][vertex][k]: producer
    // from instance i to instance k of the downstream vertex.
    let mut inputs: Vec<Vec<Consumer<TaggedPacket>>> =
        (0..plans.len()).map(|_| Vec::new()).collect();
    let mut outs: Vec<HashMap<VertexId, Vec<OutLink>>> =
        (0..plans.len()).map(|_| HashMap::new()).collect();

    // Root → entry instances.
    let entries = dag.entries();
    let mut root_outs: HashMap<VertexId, Vec<OutLink>> = HashMap::new();
    for entry in &entries {
        let mut links = Vec::new();
        for &target in by_vertex.get(entry).map(|v| v.as_slice()).unwrap_or(&[]) {
            let (tx, rx) = ring(depth);
            inputs[target].push(rx);
            links.push(OutLink::new(tx, batch));
        }
        root_outs.insert(*entry, links);
    }

    // Instance → downstream instances (on-path producers only; off-path
    // vertices consume copies and emit nothing, as in the simulator).
    for i in 0..plans.len() {
        if plans[i].off_path {
            continue;
        }
        for d in plans[i].downstream.clone() {
            let mut links = Vec::new();
            for &target in by_vertex.get(&d).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (tx, rx) = ring(depth);
                inputs[target].push(rx);
                links.push(OutLink::new(tx, batch));
            }
            outs[i].insert(d, links);
        }
    }

    // Tail instances → sink.
    let mut sink_inputs: Vec<Consumer<TaggedPacket>> = Vec::new();
    let mut sink_outs: Vec<Option<OutLink>> = (0..plans.len()).map(|_| None).collect();
    for (i, p) in plans.iter().enumerate() {
        if p.is_tail && !p.off_path {
            let (tx, rx) = ring(depth);
            sink_inputs.push(rx);
            sink_outs[i] = Some(OutLink::new(tx, batch));
        }
    }

    // Callback inboxes, addressed by instance id.
    let inboxes: Arc<HashMap<InstanceId, Inbox>> = Arc::new(
        plans
            .iter()
            .map(|p| (p.instance, Arc::new(Mutex::new(Vec::new()))))
            .collect(),
    );

    // ------------------------------------------------------------------
    // Shared infrastructure: store, latency stamps.
    // ------------------------------------------------------------------

    let server = StoreServer::new(rt.store_shards);
    let t0 = Instant::now();
    // Root stamp time per clock counter (ns since t0), published to the sink
    // through the rings' release/acquire edges.
    let stamps: Arc<Vec<AtomicU64>> =
        Arc::new((0..trace.len()).map(|_| AtomicU64::new(0)).collect());

    let record_logs = rt.record_recovery_logs;
    let clock_tags = rt.clock_tag_updates;

    let result = thread::scope(|scope| {
        // ---------------- instance threads ----------------
        let mut handles = Vec::new();
        for (plan, (ins, out_map), sink_link) in
            zip3(plans, inputs.into_iter().zip(outs), sink_outs)
        {
            let server = Arc::clone(&server);
            let splitters = Arc::clone(&splitters);
            let inboxes = Arc::clone(&inboxes);
            handles.push(scope.spawn(move || {
                run_instance(
                    plan,
                    ins,
                    out_map,
                    sink_link,
                    server,
                    splitters,
                    inboxes,
                    config,
                    batch,
                    record_logs,
                    clock_tags,
                )
            }));
        }

        // ---------------- sink thread ----------------
        let sink_stamps = Arc::clone(&stamps);
        let sink_handle = scope.spawn(move || run_sink(sink_inputs, sink_stamps, t0, batch));

        // ---------------- root (this thread) ----------------
        let mut counter = 0u64;
        for pkt in trace.iter() {
            counter += 1;
            let clock = Clock::with_root(0, counter);
            stamps[(counter - 1) as usize].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let tp = TaggedPacket::new(pkt.clone(), clock);
            for entry in &entries {
                let splitter = &splitters[entry];
                let idx = splitter.instance_for(&tp.packet, clock);
                let links = root_outs.get_mut(entry).expect("entry links");
                links[idx].push(tp.clone(), batch);
            }
        }
        for links in root_outs.values_mut() {
            for link in links {
                link.flush();
                link.producer.close();
            }
        }
        drop(root_outs);

        let instance_results: Vec<InstanceResult> = handles
            .into_iter()
            .map(|h| h.join().expect("instance thread panicked"))
            .collect();
        let sink = sink_handle.join().expect("sink thread panicked");
        (counter, instance_results, sink)
    });
    let (injected, instance_results, sink) = result;

    let instances = instance_results
        .into_iter()
        .map(|r| RuntimeInstanceReport {
            vertex: r.vertex,
            instance: r.instance,
            processed: r.processed,
            dropped_by_nf: r.dropped_by_nf,
            alerts: r.alerts,
            batches_in: r.batches_in,
        })
        .collect();

    Ok(RuntimeReport {
        delivered: sink.delivered_ids.len() - sink.duplicates as usize,
        duplicates: sink.duplicates,
        delivered_ids: sink.delivered_ids,
        delivered_bytes: sink.bytes,
        injected,
        elapsed: sink.finished_at,
        latency: sink.latency,
        instances,
        store_ops: server.total_ops(),
        store_ops_per_shard: server.ops_per_shard(),
        final_state: server.dump(),
    })
}

/// Zip three equal-length collections (std has no 3-way zip that keeps
/// by-value iteration readable).
fn zip3<A, B, C>(
    a: Vec<A>,
    b: impl Iterator<Item = B>,
    c: Vec<C>,
) -> impl Iterator<Item = (A, B, C)> {
    a.into_iter().zip(b).zip(c).map(|((a, b), c)| (a, b, c))
}

/// Body of one NF instance thread.
#[allow(clippy::too_many_arguments)]
fn run_instance(
    mut plan: InstancePlan,
    mut inputs: Vec<Consumer<TaggedPacket>>,
    mut outs: HashMap<VertexId, Vec<OutLink>>,
    mut sink_link: Option<OutLink>,
    server: Arc<StoreServer>,
    splitters: Arc<HashMap<VertexId, Splitter>>,
    inboxes: Arc<HashMap<InstanceId, Inbox>>,
    config: ChainConfig,
    batch: usize,
    record_logs: bool,
    clock_tags: bool,
) -> InstanceResult {
    // The client is constructed *inside* the thread: it is deliberately not
    // Send (the simulator backend is single-threaded); only the store handle
    // crosses the thread boundary.
    let mut client = StateClient::new(
        plan.vertex,
        plan.instance,
        Box::new(server),
        config.mode,
        config.costs,
        &plan.objects,
    );
    client.set_recovery_logging(record_logs);
    client.set_clock_tagging(clock_tags);

    let my_inbox = Arc::clone(&inboxes[&plan.instance]);
    let mut result = InstanceResult {
        vertex: plan.vertex,
        instance: plan.instance,
        processed: 0,
        dropped_by_nf: 0,
        alerts: Vec::new(),
        batches_in: 0,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(batch);

    loop {
        // Store callbacks keep read-heavy cached objects fresh (Table 1); the
        // rate is low, so one drain per wake-up is plenty.
        {
            let mut inbox = my_inbox.lock().unwrap_or_else(|e| e.into_inner());
            for (key, value) in inbox.drain(..) {
                client.handle_callback(&key, value);
            }
        }

        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.pop_batch(&mut work, batch);
            if n == 0 {
                continue;
            }
            moved += n;
            result.batches_in += 1;
            for tp in work.drain(..) {
                process_packet(
                    tp,
                    &mut plan,
                    &mut client,
                    &splitters,
                    &inboxes,
                    &mut outs,
                    &mut sink_link,
                    batch,
                    &mut result,
                );
            }
        }

        if moved == 0 {
            // Idle: release buffered output so downstream instances are not
            // starved by a partially filled batch, then check for shutdown.
            for links in outs.values_mut() {
                for link in links {
                    link.flush();
                }
            }
            if let Some(link) = &mut sink_link {
                link.flush();
            }
            if inputs.iter_mut().all(|c| c.is_exhausted()) {
                break;
            }
            thread::yield_now();
        }
    }

    for links in outs.values_mut() {
        for link in links {
            link.flush();
            link.producer.close();
        }
    }
    if let Some(link) = &mut sink_link {
        link.flush();
        link.producer.close();
    }
    result
}

/// Run one packet through the NF and forward the outcome.
#[allow(clippy::too_many_arguments)]
fn process_packet(
    mut tp: TaggedPacket,
    plan: &mut InstancePlan,
    client: &mut StateClient,
    splitters: &HashMap<VertexId, Splitter>,
    inboxes: &HashMap<InstanceId, Inbox>,
    outs: &mut HashMap<VertexId, Vec<OutLink>>,
    sink_link: &mut Option<OutLink>,
    batch: usize,
    result: &mut InstanceResult,
) {
    let now = VirtualTime::from_nanos(tp.packet.arrival_ns);
    let mut ctx = NfContext::new(client, tp.clock, now);
    let action = plan.nf.process(&tp.packet, &mut ctx);
    let alerts = ctx.take_alerts();
    for alert in alerts {
        result.alerts.push((tp.clock, alert));
    }
    result.processed += 1;

    // The virtual cost model does not apply on real threads; wall-clock time
    // *is* the cost. The accumulators still need draining.
    let _ = client.take_charge();
    let _ = client.take_packet_tokens();
    for (other, key, value) in client.take_pending_callbacks() {
        if let Some(inbox) = inboxes.get(&other) {
            inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((key, value));
        }
    }

    match action {
        chc_core::Action::Drop => {
            result.dropped_by_nf += 1;
        }
        chc_core::Action::Forward(out_pkt) => {
            tp.packet = out_pkt;
            if plan.off_path {
                // Off-path NFs consume copies; nothing flows onward.
                return;
            }
            if plan.is_tail {
                if let Some(link) = sink_link {
                    link.push(tp.clone(), batch);
                }
            }
            for d in &plan.downstream {
                let Some(splitter) = splitters.get(d) else {
                    continue;
                };
                let idx = splitter.instance_for(&tp.packet, tp.clock);
                if let Some(links) = outs.get_mut(d) {
                    links[idx].push(tp.clone(), batch);
                }
            }
        }
    }
}

/// What the sink thread hands back.
struct SinkResult {
    delivered_ids: Vec<PacketId>,
    duplicates: u64,
    bytes: u64,
    latency: Histogram,
    finished_at: std::time::Duration,
}

/// Body of the sink thread.
fn run_sink(
    mut inputs: Vec<Consumer<TaggedPacket>>,
    stamps: Arc<Vec<AtomicU64>>,
    t0: Instant,
    batch: usize,
) -> SinkResult {
    let mut seen: HashSet<Clock> = HashSet::new();
    let mut out = SinkResult {
        delivered_ids: Vec::new(),
        duplicates: 0,
        bytes: 0,
        latency: Histogram::new(),
        finished_at: std::time::Duration::ZERO,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(batch);
    loop {
        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.pop_batch(&mut work, batch);
            if n == 0 {
                continue;
            }
            moved += n;
            let now_ns = t0.elapsed().as_nanos() as u64;
            for tp in work.drain(..) {
                out.delivered_ids.push(tp.packet.id);
                if !seen.insert(tp.clock) {
                    out.duplicates += 1;
                    continue;
                }
                out.bytes += tp.packet.len as u64;
                let counter = tp.clock.counter();
                if counter >= 1 && (counter as usize) <= stamps.len() {
                    let stamped = stamps[(counter - 1) as usize].load(Ordering::Relaxed);
                    out.latency.record_nanos(now_ns.saturating_sub(stamped));
                }
            }
        }
        if moved == 0 {
            if inputs.iter_mut().all(|c| c.is_exhausted()) {
                break;
            }
            thread::yield_now();
        }
    }
    out.finished_at = t0.elapsed();
    out
}
