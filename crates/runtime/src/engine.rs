//! The real-thread chain engine.
//!
//! [`run_chain_realtime`] executes a [`LogicalDag`] on OS threads:
//!
//! * a **root** (the calling thread) stamps logical clocks in trace order
//!   and feeds the entry vertices,
//! * one thread per **NF instance** pulls packet batches from its input
//!   rings, runs the unmodified [`chc_core::NetworkFunction`] against a
//!   [`StateClient`] backed by the sharded [`StoreServer`], and forwards
//!   outputs through the scope-aware splitters,
//! * a **sink** thread collects chain output, de-duplicates by clock and
//!   measures root→sink wall-clock latency.
//!
//! Every (producer, consumer) pair is connected by exactly one bounded SPSC
//! ring ([`crate::spsc`]), so the packet path takes no locks; packets move in
//! configurable batches that amortize ring and store-client overhead.
//!
//! Routing is the *same* scope-aware [`Splitter`] logic the simulator uses,
//! driven purely by `(packet, logical clock)` — including pre-planned
//! elastic scale-out events — so a given trace partitions identically on
//! both substrates and their outputs can be compared for chain output
//! equivalence.
//!
//! # Fail-stop failure injection (R1/R6 on the wall-clock path)
//!
//! When [`RuntimeConfig::fault`] schedules failures, the engine additionally
//! runs the paper's replay/failover machinery on real threads:
//!
//! * the root keeps a bounded **packet log** keyed by logical clock
//!   ([`chc_core::PacketLog`]); every chain component publishes a
//!   **commit watermark** to the store after flushing each batch
//!   ([`StoreServer::publish_commit`]), and a **supervisor thread** truncates
//!   the log up to the commit frontier, bounding replay memory;
//! * each NF instance suppresses duplicate clocks at its input queue
//!   (§5.3), so replayed traffic is idempotent end to end;
//! * a killed instance hands its SPSC wiring to the supervisor, which spawns
//!   a **replacement thread** under a fresh instance id, re-associates the
//!   failed instance's per-flow store state, and **replays** the logged
//!   packets through dedicated replay rings into the entry instances —
//!   live flows keep their ring order throughout (see [`crate::replay`]).
//!
//! The healthy path pays none of this: with an empty plan no log is kept,
//! no watermark is published and no duplicate tracking runs.

use crate::config::RuntimeConfig;
use crate::fault::{FaultReport, ShardRecovery};
use crate::replay::{run_supervisor, ReplacementSeed};
use crate::report::{RuntimeInstanceReport, RuntimeReport};
use crate::spsc::{ring, Consumer, Producer, RingProbe};
use crate::telemetry::{
    assemble_report, finalize_sentinel, run_monitor, run_sentinel, MonitorTargets, RunTelemetry,
    SentinelInputs, SentinelState, TimedHandle, VertexStageMetrics,
};
use chc_core::dag::DagError;
use chc_core::rootlog::PacketLog;
use chc_core::{
    ChainConfig, LogicalDag, NetworkFunction, NfContext, Splitter, StateClient, TaggedPacket,
};
use chc_packet::{flow_sampled, PacketId, Scope, Trace, TraceTag};
use chc_sim::VirtualTime;
use chc_store::{Clock, InstanceId, StateKey, StoreServer, Value, VertexId, SINK_COMMIT_SOURCE};
use chc_telemetry::{
    EventKind, FlowOrderChecker, SpanEvent, SpanKind, StreamingHistogram, TraceLane,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Errors surfaced while planning a real-thread run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The logical DAG failed validation.
    Dag(DagError),
    /// The scale event names a vertex not present in the DAG.
    UnknownScaleVertex(VertexId),
    /// A fault-plan kill names a vertex not present in the DAG.
    UnknownFaultVertex(VertexId),
    /// A fault-plan kill targets a non-entry vertex. Replay enters the chain
    /// at the root, and intervening NFs suppress replayed duplicates at
    /// their queues (§5.3) — exactly as on the simulator — so only
    /// entry-vertex instances can be brought back by replay today.
    KillNotAtEntry(VertexId),
    /// A fault-plan kill targets a vertex that delivers directly to the end
    /// host. A tail replacement re-outputs replayed packets with no
    /// downstream queue left to suppress them, so the sink would observe
    /// duplicates — suppressing them there would be exactly the silent
    /// dedup the duplicate accounting forbids. Bounding that window needs
    /// the per-packet XOR delete protocol (simulator-only today).
    KillAtChainTail(VertexId),
    /// A fault-plan kill names an instance index the vertex does not have.
    FaultIndexOutOfRange {
        /// The targeted vertex.
        vertex: VertexId,
        /// The requested instance index.
        index: usize,
        /// How many instances the vertex actually has.
        instances: usize,
    },
    /// Two kills target the same instance slot.
    DuplicateKill {
        /// The targeted vertex.
        vertex: VertexId,
        /// The doubly-targeted instance index.
        index: usize,
    },
    /// A kill trigger lies outside the trace, so it could never fire.
    KillOutsideTrace {
        /// The requested trigger counter.
        at_counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// A shard fault names a shard the store does not have.
    ShardOutOfRange {
        /// The requested shard.
        shard: usize,
        /// How many shards the store has.
        shards: usize,
    },
    /// A shard fault trigger (restart or checkpoint) lies outside the trace.
    ShardFaultOutsideTrace {
        /// The requested trigger counter.
        at_counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// A re-injection counter lies outside the trace.
    ReinjectOutsideTrace {
        /// The requested counter.
        counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// Instance kills need clock-tagged store updates: duplicate suppression
    /// at the store is what makes replay idempotent.
    FaultNeedsClockTags,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Dag(e) => write!(f, "invalid DAG: {e}"),
            RuntimeError::UnknownScaleVertex(v) => {
                write!(f, "scale event references unknown vertex {v}")
            }
            RuntimeError::UnknownFaultVertex(v) => {
                write!(f, "fault plan references unknown vertex {v}")
            }
            RuntimeError::KillNotAtEntry(v) => {
                write!(
                    f,
                    "fault plan kills vertex {v}, which is not a chain entry; \
                     root replay can only restore entry-vertex instances"
                )
            }
            RuntimeError::KillAtChainTail(v) => {
                write!(
                    f,
                    "fault plan kills vertex {v}, which outputs directly to the \
                     end host; replayed re-deliveries from its replacement \
                     cannot be suppressed before the sink"
                )
            }
            RuntimeError::FaultIndexOutOfRange {
                vertex,
                index,
                instances,
            } => write!(
                f,
                "fault plan kills instance {index} of vertex {vertex}, which has {instances}"
            ),
            RuntimeError::DuplicateKill { vertex, index } => write!(
                f,
                "fault plan kills instance {index} of vertex {vertex} more than once"
            ),
            RuntimeError::KillOutsideTrace {
                at_counter,
                trace_len,
            } => write!(
                f,
                "kill trigger {at_counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard fault targets shard {shard} of {shards}")
            }
            RuntimeError::ShardFaultOutsideTrace {
                at_counter,
                trace_len,
            } => write!(
                f,
                "shard fault trigger {at_counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::ReinjectOutsideTrace { counter, trace_len } => write!(
                f,
                "re-injection counter {counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::FaultNeedsClockTags => write!(
                f,
                "instance kills require clock_tag_updates (store-side duplicate \
                 suppression makes replay idempotent)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<DagError> for RuntimeError {
    fn from(e: DagError) -> RuntimeError {
        RuntimeError::Dag(e)
    }
}

/// Identity and wiring of one planned instance.
pub(crate) struct InstancePlan {
    pub(crate) vertex: VertexId,
    pub(crate) instance: InstanceId,
    pub(crate) off_path: bool,
    pub(crate) is_tail: bool,
    pub(crate) downstream: Vec<VertexId>,
    pub(crate) nf: Box<dyn NetworkFunction>,
    pub(crate) objects: Vec<chc_core::StateObjectSpec>,
}

/// A buffered outgoing edge to one downstream instance.
pub(crate) struct OutLink {
    pub(crate) producer: Producer<TaggedPacket>,
    pub(crate) buf: Vec<TaggedPacket>,
    /// Conservation-ledger handle, when the sentinel is on. Pushes count at
    /// flush time: copies sitting in an unflushed buffer when an instance
    /// fail-stops die with it and are deliberately never "in the network".
    pub(crate) sentinel: Option<Arc<SentinelState>>,
}

impl OutLink {
    fn new(
        producer: Producer<TaggedPacket>,
        batch: usize,
        sentinel: Option<Arc<SentinelState>>,
    ) -> OutLink {
        OutLink {
            producer,
            buf: Vec::with_capacity(batch),
            sentinel,
        }
    }

    /// Queue one packet; drain the buffer through the ring once it holds a
    /// full batch (spinning on downstream backpressure — the DAG is acyclic
    /// and the sink always drains, so this cannot deadlock).
    pub(crate) fn push(&mut self, tp: TaggedPacket, batch: usize) {
        self.buf.push(tp);
        if self.buf.len() >= batch {
            self.flush();
        }
    }

    pub(crate) fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(s) = &self.sentinel {
            s.ledger.ring_pushed.add(self.buf.len() as u64);
        }
        while !self.buf.is_empty() {
            if self.producer.push_batch(&mut self.buf) == 0 {
                thread::yield_now();
            }
        }
    }
}

/// One input ring of an instance (or the sink), with the bookkeeping the
/// commit protocol needs: the highest clock counter popped so far, and
/// whether the ring is a replay ring (replay traffic is redundant by
/// construction, so it never holds back a commit watermark).
pub(crate) struct InputRing {
    pub(crate) rx: Consumer<TaggedPacket>,
    pub(crate) last_counter: u64,
    pub(crate) replay: bool,
}

impl InputRing {
    fn live(rx: Consumer<TaggedPacket>) -> InputRing {
        InputRing {
            rx,
            last_counter: 0,
            replay: false,
        }
    }

    fn replay(rx: Consumer<TaggedPacket>) -> InputRing {
        InputRing {
            rx,
            last_counter: 0,
            replay: true,
        }
    }
}

/// Callback notifications (store → instance) for read-heavy cached objects.
/// Unlike the packet path this is many-producers → one-consumer and very low
/// rate, so a mutexed vector is the right tool.
type Inbox = Arc<Mutex<Vec<(StateKey, Value)>>>;

/// Engine state shared by every thread of one run.
pub(crate) struct EngineShared {
    pub(crate) server: Arc<StoreServer>,
    pub(crate) splitters: Arc<HashMap<VertexId, Splitter>>,
    pub(crate) inboxes: Arc<HashMap<InstanceId, Inbox>>,
    pub(crate) config: ChainConfig,
    pub(crate) batch: usize,
    pub(crate) record_logs: bool,
    pub(crate) clock_tags: bool,
    /// True when a fault plan is active: the commit protocol runs and
    /// flushes happen at every batch boundary (commit implies durable).
    pub(crate) fault_mode: bool,
    /// True when instances suppress duplicate clocks at their input queues.
    pub(crate) dedup: bool,
    /// Run-wide telemetry: span stamps, stage histograms, event journal.
    pub(crate) telemetry: Arc<RunTelemetry>,
}

/// What a fail-stopped instance hands to the supervisor: its complete SPSC
/// wiring, ready for a replacement thread to take over. Unflushed output
/// buffers have already been discarded (a crashed process loses them), and
/// in-flight packets still queued in the input rings survive, exactly as
/// packets in the network survive an endpoint crash.
pub(crate) struct DyingInstance {
    pub(crate) slot: usize,
    pub(crate) inputs: Vec<InputRing>,
    pub(crate) outs: HashMap<VertexId, Vec<OutLink>>,
    pub(crate) sink_link: Option<OutLink>,
}

/// Arms one instance thread with its fail-stop trigger.
pub(crate) struct KillSwitch {
    pub(crate) slot: usize,
    /// Replica index within the vertex (for the event journal).
    pub(crate) index: usize,
    pub(crate) at_counter: u64,
    pub(crate) tx: mpsc::Sender<DyingInstance>,
}

/// What an instance thread hands back when it exits.
pub(crate) struct InstanceResult {
    pub(crate) vertex: VertexId,
    pub(crate) instance: InstanceId,
    pub(crate) processed: u64,
    pub(crate) dropped_by_nf: u64,
    pub(crate) suppressed_duplicates: u64,
    pub(crate) alerts: Vec<(Clock, String)>,
    pub(crate) batches_in: u64,
    pub(crate) failed: bool,
}

impl InstanceResult {
    fn into_report(self) -> RuntimeInstanceReport {
        RuntimeInstanceReport {
            vertex: self.vertex,
            instance: self.instance,
            processed: self.processed,
            dropped_by_nf: self.dropped_by_nf,
            suppressed_duplicates: self.suppressed_duplicates,
            alerts: self.alerts,
            batches_in: self.batches_in,
        }
    }
}

/// Execute `dag` over `trace` on real threads. See the module docs.
pub fn run_chain_realtime(
    dag: &LogicalDag,
    config: ChainConfig,
    rt: &RuntimeConfig,
    trace: &Trace,
) -> Result<RuntimeReport, RuntimeError> {
    dag.topo_order()?;
    if let Some(scale) = rt.scale {
        if dag.vertex(scale.vertex).is_none() {
            return Err(RuntimeError::UnknownScaleVertex(scale.vertex));
        }
    }
    let batch = rt.batch_size.max(1);
    let depth = rt.queue_depth.max(batch * 2);
    let fault = rt.fault.clone();
    let fault_mode = !fault.is_empty();
    let dedup = fault_mode && config.duplicate_suppression;
    if !fault.kills.is_empty() && !rt.clock_tag_updates {
        return Err(RuntimeError::FaultNeedsClockTags);
    }

    // ------------------------------------------------------------------
    // Plan: splitters, instance identities, NF code.
    // ------------------------------------------------------------------

    // Same scope choice as ChainController::new: the coarsest partitionable
    // scope minimises shared state; Global cannot spread load, so it is
    // skipped.
    let mut splitters: HashMap<VertexId, Splitter> = HashMap::new();
    for v in dag.vertices() {
        let scope = v
            .scopes()
            .into_iter()
            .filter(|s| *s != Scope::Global)
            .max()
            .unwrap_or(Scope::FiveTuple);
        splitters.insert(v.id, Splitter::new(v.id, scope, v.parallelism));
    }

    // Instance identities in ChainController order (vertex declaration order,
    // then index), with the scale-out instance appended last — ids must match
    // the simulator's so per-flow datastore keys line up across substrates.
    let exits = dag.exits();
    let mut plans: Vec<InstancePlan> = Vec::new();
    // Replica index within its vertex, per plan slot (for the event journal).
    let mut slot_index: Vec<usize> = Vec::new();
    let mut next_instance = 0u32;
    for v in dag.vertices() {
        for idx in 0..v.parallelism {
            let nf = v.build_nf();
            let objects = nf.state_objects();
            plans.push(InstancePlan {
                vertex: v.id,
                instance: InstanceId(next_instance),
                off_path: v.off_path,
                is_tail: exits.contains(&v.id),
                downstream: dag.downstream_of(v.id),
                nf,
                objects,
            });
            slot_index.push(idx);
            next_instance += 1;
        }
    }
    if let Some(scale) = rt.scale {
        let v = dag.vertex(scale.vertex).expect("validated above");
        let nf = v.build_nf();
        let objects = nf.state_objects();
        plans.push(InstancePlan {
            vertex: v.id,
            instance: InstanceId(next_instance),
            off_path: v.off_path,
            is_tail: exits.contains(&v.id),
            downstream: dag.downstream_of(v.id),
            nf,
            objects,
        });
        slot_index.push(v.parallelism);
        let splitter = splitters.get_mut(&scale.vertex).expect("splitter exists");
        splitter.schedule_scale(scale.first_counter, v.parallelism + 1);
        next_instance += 1;
    }
    let splitters = Arc::new(splitters);

    // Instance indices per vertex, in id order (= index order).
    let mut by_vertex: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (i, p) in plans.iter().enumerate() {
        by_vertex.entry(p.vertex).or_default().push(i);
    }
    let entries = dag.entries();

    // ------------------------------------------------------------------
    // Fault plan validation and replacement seeds.
    // ------------------------------------------------------------------

    // Replacement instance ids are assigned in fault-plan order, after every
    // planned instance — the same ids the simulator hands out when the
    // equivalence test calls `failover_instance` in the same order.
    let mut seeds: HashMap<usize, ReplacementSeed> = HashMap::new();
    let mut kill_at_by_slot: Vec<Option<(u64, usize)>> = vec![None; plans.len()];
    for kill in &fault.kills {
        let Some(v) = dag.vertex(kill.vertex) else {
            return Err(RuntimeError::UnknownFaultVertex(kill.vertex));
        };
        if !entries.contains(&kill.vertex) {
            return Err(RuntimeError::KillNotAtEntry(kill.vertex));
        }
        if exits.contains(&kill.vertex) && !v.off_path {
            return Err(RuntimeError::KillAtChainTail(kill.vertex));
        }
        let slots = by_vertex
            .get(&kill.vertex)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let Some(&slot) = slots.get(kill.index) else {
            return Err(RuntimeError::FaultIndexOutOfRange {
                vertex: kill.vertex,
                index: kill.index,
                instances: slots.len(),
            });
        };
        if kill.at_counter == 0 || kill.at_counter > trace.len() as u64 {
            return Err(RuntimeError::KillOutsideTrace {
                at_counter: kill.at_counter,
                trace_len: trace.len(),
            });
        }
        if seeds.contains_key(&slot) {
            return Err(RuntimeError::DuplicateKill {
                vertex: kill.vertex,
                index: kill.index,
            });
        }
        kill_at_by_slot[slot] = Some((kill.at_counter, kill.index));
        let nf = v.build_nf();
        let objects = nf.state_objects();
        seeds.insert(
            slot,
            ReplacementSeed {
                kill: *kill,
                old_instance: plans[slot].instance,
                plan: InstancePlan {
                    vertex: kill.vertex,
                    instance: InstanceId(next_instance),
                    off_path: v.off_path,
                    is_tail: exits.contains(&kill.vertex),
                    downstream: dag.downstream_of(kill.vertex),
                    nf,
                    objects,
                },
            },
        );
        next_instance += 1;
    }

    let shards = rt.store_shards.max(1);
    let mut shard_checkpoints: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut shard_restarts: HashMap<u64, Vec<usize>> = HashMap::new();
    for sf in &fault.shard_faults {
        if sf.shard >= shards {
            return Err(RuntimeError::ShardOutOfRange {
                shard: sf.shard,
                shards,
            });
        }
        for at in std::iter::once(sf.at_counter).chain(sf.checkpoint_at) {
            if at == 0 || at > trace.len() as u64 {
                return Err(RuntimeError::ShardFaultOutsideTrace {
                    at_counter: at,
                    trace_len: trace.len(),
                });
            }
        }
        if let Some(cp) = sf.checkpoint_at {
            shard_checkpoints.entry(cp).or_default().push(sf.shard);
        }
        shard_restarts
            .entry(sf.at_counter)
            .or_default()
            .push(sf.shard);
    }
    let reinject_set: HashSet<u64> = fault.reinject.iter().copied().collect();
    for &counter in &reinject_set {
        if counter == 0 || counter > trace.len() as u64 {
            return Err(RuntimeError::ReinjectOutsideTrace {
                counter,
                trace_len: trace.len(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Wiring: one SPSC ring per (producer, consumer) pair.
    // ------------------------------------------------------------------

    // Sentinel state exists before the wiring because every OutLink carries
    // a handle to the conservation ledger.
    let sentinel_state = rt
        .telemetry
        .sentinel
        .then(|| Arc::new(SentinelState::new()));

    // inputs[i]: consumers feeding instance i; outs[i][vertex][k]: producer
    // from instance i to instance k of the downstream vertex.
    let mut inputs: Vec<Vec<InputRing>> = (0..plans.len()).map(|_| Vec::new()).collect();
    let mut outs: Vec<HashMap<VertexId, Vec<OutLink>>> =
        (0..plans.len()).map(|_| HashMap::new()).collect();

    // Occupancy probes for the gauge monitor, labelled by edge.
    let monitor_on = rt.telemetry.sample_interval.is_some();
    let mut ring_probes: Vec<(String, RingProbe)> = Vec::new();

    // Root → entry instances.
    let mut root_outs: HashMap<VertexId, Vec<OutLink>> = HashMap::new();
    for entry in &entries {
        let mut links = Vec::new();
        for &target in by_vertex.get(entry).map(|v| v.as_slice()).unwrap_or(&[]) {
            let (tx, rx) = ring(depth);
            if monitor_on {
                ring_probes.push((
                    format!("root->v{}.{}", entry.0, links.len()),
                    tx.depth_probe(),
                ));
            }
            inputs[target].push(InputRing::live(rx));
            links.push(OutLink::new(tx, batch, sentinel_state.clone()));
        }
        root_outs.insert(*entry, links);
    }

    // Supervisor → entry instances: one replay ring per entry instance,
    // idle until a failover replays the packet log. Replay traffic therefore
    // never shares a ring with live traffic, so live flows keep their order.
    let mut replay_outs: HashMap<VertexId, Vec<OutLink>> = HashMap::new();
    if !seeds.is_empty() {
        for entry in &entries {
            let mut links = Vec::new();
            for &target in by_vertex.get(entry).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (tx, rx) = ring(depth);
                if monitor_on {
                    ring_probes.push((
                        format!("replay->v{}.{}", entry.0, links.len()),
                        tx.depth_probe(),
                    ));
                }
                inputs[target].push(InputRing::replay(rx));
                links.push(OutLink::new(tx, batch, sentinel_state.clone()));
            }
            replay_outs.insert(*entry, links);
        }
    }

    // Instance → downstream instances (on-path producers only; off-path
    // vertices consume copies and emit nothing, as in the simulator).
    for i in 0..plans.len() {
        if plans[i].off_path {
            continue;
        }
        for d in plans[i].downstream.clone() {
            let mut links = Vec::new();
            for &target in by_vertex.get(&d).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (tx, rx) = ring(depth);
                if monitor_on {
                    ring_probes.push((
                        format!(
                            "v{}.{}->v{}.{}",
                            plans[i].vertex.0,
                            slot_index[i],
                            d.0,
                            links.len()
                        ),
                        tx.depth_probe(),
                    ));
                }
                inputs[target].push(InputRing::live(rx));
                links.push(OutLink::new(tx, batch, sentinel_state.clone()));
            }
            outs[i].insert(d, links);
        }
    }

    // Tail instances → sink.
    let mut sink_inputs: Vec<InputRing> = Vec::new();
    let mut sink_outs: Vec<Option<OutLink>> = (0..plans.len()).map(|_| None).collect();
    for (i, p) in plans.iter().enumerate() {
        if p.is_tail && !p.off_path {
            let (tx, rx) = ring(depth);
            if monitor_on {
                ring_probes.push((
                    format!("v{}.{}->sink", p.vertex.0, slot_index[i]),
                    tx.depth_probe(),
                ));
            }
            sink_inputs.push(InputRing::live(rx));
            sink_outs[i] = Some(OutLink::new(tx, batch, sentinel_state.clone()));
        }
    }

    // Callback inboxes, addressed by instance id (replacements included).
    let mut inbox_map: HashMap<InstanceId, Inbox> = plans
        .iter()
        .map(|p| (p.instance, Arc::new(Mutex::new(Vec::new()))))
        .collect();
    for seed in seeds.values() {
        inbox_map.insert(seed.plan.instance, Arc::new(Mutex::new(Vec::new())));
    }
    let inboxes: Arc<HashMap<InstanceId, Inbox>> = Arc::new(inbox_map);

    // ------------------------------------------------------------------
    // Shared infrastructure: store, latency stamps, packet log.
    // ------------------------------------------------------------------

    let server = StoreServer::new(rt.store_shards);
    for sf in &fault.shard_faults {
        server.set_shard_journaling(sf.shard, true);
    }
    let t0 = Instant::now();
    // Root stamp time per clock counter (ns since t0), published to the sink
    // through the rings' release/acquire edges.
    let stamps: Arc<Vec<AtomicU64>> =
        Arc::new((0..trace.len()).map(|_| AtomicU64::new(0)).collect());

    let telemetry = Arc::new(RunTelemetry::new(
        rt.telemetry,
        t0,
        trace.len(),
        dag.vertices().iter().map(|v| v.id),
        sentinel_state,
    ));

    let shared = Arc::new(EngineShared {
        server: Arc::clone(&server),
        splitters: Arc::clone(&splitters),
        inboxes: Arc::clone(&inboxes),
        config,
        batch,
        record_logs: rt.record_recovery_logs,
        clock_tags: rt.clock_tag_updates,
        fault_mode,
        dedup,
        telemetry: Arc::clone(&telemetry),
    });

    // The root packet log and the commit sources that bound it: every
    // on-path instance plus the sink must confirm a counter before the
    // supervisor may truncate it.
    let log = Arc::new(Mutex::new(PacketLog::new(config.root_log_capacity)));
    let commit_sources: Vec<InstanceId> = plans
        .iter()
        .filter(|p| !p.off_path)
        .map(|p| p.instance)
        .chain(std::iter::once(SINK_COMMIT_SOURCE))
        .collect();
    let done_injecting = Arc::new(AtomicBool::new(false));

    let result =
        thread::scope(|scope| {
            let (fault_tx, fault_rx) = mpsc::channel::<DyingInstance>();

            // ---------------- instance threads ----------------
            let mut handles = Vec::new();
            for (slot, (plan, (ins, out_map), sink_link)) in
                zip3(plans, inputs.into_iter().zip(outs), sink_outs).enumerate()
            {
                let shared = Arc::clone(&shared);
                let kill = kill_at_by_slot[slot].map(|(at_counter, index)| KillSwitch {
                    slot,
                    index,
                    at_counter,
                    tx: fault_tx.clone(),
                });
                telemetry.event(EventKind::InstanceSpawn {
                    vertex: plan.vertex.0,
                    index: slot_index[slot] as u32,
                    instance: plan.instance.0 as u64,
                });
                handles.push(scope.spawn(move || {
                    run_instance(plan, ins, out_map, sink_link, shared, kill, false)
                }));
            }
            drop(fault_tx);

            // ---------------- sink thread ----------------
            let sink_stamps = Arc::clone(&stamps);
            let sink_commit = fault_mode.then(|| Arc::clone(&server));
            let sink_telemetry = Arc::clone(&telemetry);
            // Per-flow delivery-order checking rides the sink thread (one
            // map lookup per live arrival); a pre-planned scale cut exempts
            // cross-cut pairs because the cut re-routes flows.
            let sink_flow_order = telemetry
                .sentinel
                .is_some()
                .then(|| FlowOrderChecker::new(rt.scale.map(|s| s.first_counter)));
            let sink_handle = scope.spawn(move || {
                run_sink(
                    sink_inputs,
                    sink_stamps,
                    t0,
                    batch,
                    sink_commit,
                    sink_telemetry,
                    sink_flow_order,
                )
            });

            // ---------------- sentinel thread ----------------
            // Consumes the event journal while the run is live, so a
            // frontier regression or phase-order break surfaces as a
            // violation event at detection time, not at shutdown.
            let sentinel_stop = Arc::new(AtomicBool::new(false));
            let sentinel_handle = (telemetry.sentinel.is_some() && telemetry.journal.is_some())
                .then(|| {
                    let telemetry = Arc::clone(&telemetry);
                    let stop = Arc::clone(&sentinel_stop);
                    scope.spawn(move || run_sentinel(telemetry, stop))
                });

            // ---------------- monitor thread ----------------
            let monitor_stop = Arc::new(AtomicBool::new(false));
            let monitor_handle = rt.telemetry.sample_interval.map(|interval| {
                let targets = MonitorTargets {
                    rings: std::mem::take(&mut ring_probes),
                    server: Arc::clone(&server),
                    journaled_shards: fault
                        .shard_faults
                        .iter()
                        .map(|sf| sf.shard)
                        .collect::<BTreeSet<usize>>()
                        .into_iter()
                        .collect(),
                    log: fault_mode.then(|| Arc::clone(&log)),
                };
                let telemetry = Arc::clone(&telemetry);
                let stop = Arc::clone(&monitor_stop);
                scope.spawn(move || run_monitor(targets, telemetry, interval, stop))
            });

            // ---------------- supervisor thread ----------------
            let sup_handle = fault_mode.then(|| {
                let shared = Arc::clone(&shared);
                let log = Arc::clone(&log);
                let done = Arc::clone(&done_injecting);
                let sources = commit_sources.clone();
                scope.spawn(move || {
                    run_supervisor(
                        scope,
                        fault_rx,
                        seeds,
                        replay_outs,
                        log,
                        shared,
                        sources,
                        done,
                    )
                })
            });

            // ---------------- root (this thread) ----------------
            let mut counter = 0u64;
            let mut reinject_buf: Vec<TaggedPacket> = Vec::new();
            let mut shard_recoveries: Vec<ShardRecovery> = Vec::new();
            for pkt in trace.iter() {
                let next = counter + 1;
                if fault_mode {
                    if let Some(targets) = shard_checkpoints.get(&next) {
                        for &s in targets {
                            server.checkpoint_shard(s);
                        }
                    }
                    if let Some(targets) = shard_restarts.get(&next) {
                        for &s in targets {
                            let started = Instant::now();
                            let stats = server.restart_shard(s);
                            telemetry.event(EventKind::ShardRestart {
                                shard: s as u32,
                                ops_replayed: stats.replayed_ops as u64,
                            });
                            shard_recoveries.push(ShardRecovery {
                                shard: s,
                                at_counter: next,
                                restored_from_checkpoint: stats.restored_from_checkpoint,
                                replayed_ops: stats.replayed_ops,
                                recovery_wall: started.elapsed(),
                            });
                        }
                    }
                }
                counter += 1;
                if let Some(scale) = rt.scale {
                    if counter == scale.first_counter {
                        telemetry.event(EventKind::ScaleCut {
                            vertex: scale.vertex.0,
                            at_counter: counter,
                        });
                    }
                }
                let clock = Clock::with_root(0, counter);
                let now_ns = t0.elapsed().as_nanos() as u64;
                stamps[(counter - 1) as usize].store(now_ns, Ordering::Relaxed);
                // Span epoch: the root "lets go" of the packet at injection.
                if let Some(slot) = telemetry.hop_slot(counter) {
                    slot.store(now_ns, Ordering::Relaxed);
                }
                let mut tp = TaggedPacket::new(pkt.clone(), clock);
                // Flow-sampled causal tracing: tag before the packet-log
                // insert so replayed copies carry the tag too.
                if telemetry.tracer.is_some()
                    && flow_sampled(pkt.flow_key(), rt.telemetry.trace_sample_ppm)
                {
                    tp.trace = Some(TraceTag::new(counter));
                    telemetry.trace_span(SpanEvent {
                        trace_id: counter,
                        lane: TraceLane::Root,
                        kind: SpanKind::Inject,
                        t_ns: now_ns,
                        dur_ns: 0,
                    });
                }
                if fault_mode {
                    if !log
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(tp.clone())
                    {
                        // Buffer-bloat guard (§5): a full log rejects the packet
                        // instead of queueing without bound.
                        continue;
                    }
                    if reinject_set.contains(&counter) {
                        reinject_buf.push(tp.clone());
                    }
                }
                for entry in &entries {
                    let splitter = &splitters[entry];
                    let idx = splitter.instance_for(&tp.packet, clock);
                    let links = root_outs.get_mut(entry).expect("entry links");
                    links[idx].push(tp.clone(), batch);
                }
            }

            // Re-injection drill: send saved logged packets a second time,
            // unmarked. Downstream queue suppression (when enabled) or the
            // sink's duplicate accounting (when not) must absorb them.
            let mut reinjected = 0u64;
            for tp in reinject_buf.drain(..) {
                for entry in &entries {
                    let splitter = &splitters[entry];
                    let idx = splitter.instance_for(&tp.packet, tp.clock);
                    let links = root_outs.get_mut(entry).expect("entry links");
                    links[idx].push(tp.clone(), batch);
                }
                reinjected += 1;
            }

            for links in root_outs.values_mut() {
                for link in links {
                    link.flush();
                    link.producer.close();
                }
            }
            drop(root_outs);
            done_injecting.store(true, Ordering::Release);

            // The supervisor exits once every planned kill resolved and closes
            // the replay rings; instances drain and exit after it.
            let sup = sup_handle.map(|h| h.join().expect("supervisor thread panicked"));

            let mut instance_results: Vec<InstanceResult> = handles
                .into_iter()
                .map(|h| h.join().expect("instance thread panicked"))
                .collect();
            let (recoveries, replacement_handles) = match sup {
                Some(outcome) => (outcome.recoveries, outcome.replacements),
                None => (Vec::new(), Vec::new()),
            };
            for h in replacement_handles {
                instance_results.push(h.join().expect("replacement thread panicked"));
            }
            let sink = sink_handle.join().expect("sink thread panicked");
            sentinel_stop.store(true, Ordering::Release);
            if let Some(h) = sentinel_handle {
                h.join().expect("sentinel thread panicked");
            }
            monitor_stop.store(true, Ordering::Release);
            let series = monitor_handle
                .map(|h| h.join().expect("monitor thread panicked"))
                .unwrap_or_default();
            (
                counter,
                reinjected,
                shard_recoveries,
                recoveries,
                instance_results,
                sink,
                series,
            )
        });
    let (injected, reinjected, shard_recoveries, recoveries, instance_results, sink, series) =
        result;

    let mut instances = Vec::new();
    let mut failed_instances = Vec::new();
    for r in instance_results {
        if r.failed {
            failed_instances.push(r.into_report());
        } else {
            instances.push(r.into_report());
        }
    }
    instances.sort_by_key(|r| (r.vertex, r.instance));

    // Final frontier pass: every surviving component has published its last
    // watermark by now, so this is the tightest truncation the commit
    // protocol can justify.
    let mut final_frontier = 0u64;
    let fault_report = fault_mode.then(|| {
        let mut lg = log.lock().unwrap_or_else(|e| e.into_inner());
        let mut sources: Vec<InstanceId> = commit_sources.clone();
        for rec in &recoveries {
            for s in sources.iter_mut() {
                if *s == rec.failed_instance {
                    *s = rec.replacement;
                }
            }
        }
        let frontier = server.commit_frontier(&sources);
        final_frontier = frontier;
        let dropped = lg.truncate_confirmed(0, frontier);
        if dropped > 0 {
            telemetry.event(EventKind::CommitFrontier {
                frontier,
                dropped: dropped as u64,
            });
        }
        FaultReport {
            recoveries,
            shard_recoveries,
            log_high_water: lg.high_water(),
            log_truncated: lg.truncated(),
            log_final_len: lg.len(),
            log_rejected: lg.rejected(),
            reinjected,
        }
    });

    // Shutdown invariant pass — before the telemetry report is assembled,
    // so violation events it journals appear in the report's event list.
    let processed_total: u64 = instances
        .iter()
        .chain(failed_instances.iter())
        .map(|r| r.processed)
        .sum();
    let suppressed_total: u64 = instances
        .iter()
        .chain(failed_instances.iter())
        .map(|r| r.suppressed_duplicates)
        .sum();
    let invariants = finalize_sentinel(
        &telemetry,
        &SentinelInputs {
            injected,
            reinjected,
            duplicates: sink.duplicates,
            sink_arrivals: sink.delivered_ids.len() as u64,
            processed: processed_total,
            suppressed: suppressed_total,
            fault_mode,
            frontier: final_frontier,
            log_final_len: fault_report.as_ref().map_or(0, |f| f.log_final_len as u64),
            log_high_water: fault_report.as_ref().map_or(0, |f| f.log_high_water as u64),
            log_capacity: config.root_log_capacity as u64,
        },
    );

    let telemetry_report =
        (!rt.telemetry.is_disabled()).then(|| assemble_report(&telemetry, series));

    Ok(RuntimeReport {
        delivered: sink.delivered_ids.len() - sink.duplicates as usize,
        duplicates: sink.duplicates,
        duplicate_clocks: sink.duplicate_clocks,
        delivered_ids: sink.delivered_ids,
        delivered_bytes: sink.bytes,
        injected,
        elapsed: sink.finished_at,
        latency: sink.latency,
        instances,
        failed_instances,
        store_ops: server.total_ops(),
        store_ops_per_shard: server.ops_per_shard(),
        final_state: server.dump(),
        fault: fault_report,
        telemetry: telemetry_report,
        invariants,
    })
}

/// Zip three equal-length collections (std has no 3-way zip that keeps
/// by-value iteration readable).
fn zip3<A, B, C>(
    a: Vec<A>,
    b: impl Iterator<Item = B>,
    c: Vec<C>,
) -> impl Iterator<Item = (A, B, C)> {
    a.into_iter().zip(b).zip(c).map(|((a, b), c)| (a, b, c))
}

/// Body of one NF instance thread (also used for failover replacements, with
/// `replacement = true`: commit publication is then gated until the replay
/// rings drain, because an inherited watermark only becomes true again once
/// the replayed packets have been re-flushed downstream).
pub(crate) fn run_instance(
    mut plan: InstancePlan,
    mut inputs: Vec<InputRing>,
    mut outs: HashMap<VertexId, Vec<OutLink>>,
    mut sink_link: Option<OutLink>,
    shared: Arc<EngineShared>,
    mut kill: Option<KillSwitch>,
    replacement: bool,
) -> InstanceResult {
    // Span state: on-path instances time queue wait, service and store RTT
    // per packet; the store handle below feeds the same per-vertex
    // histograms. Off-path instances consume copies outside the delivery
    // path, so timing them would break the decomposition's telescoping.
    let spans = shared.telemetry.config.spans && !plan.off_path;
    let stage: Arc<VertexStageMetrics> = shared
        .telemetry
        .stages
        .get(&plan.vertex)
        .cloned()
        .unwrap_or_default();
    let pending_store_ns = Arc::new(AtomicU64::new(0));

    // The client is constructed *inside* the thread: it is deliberately not
    // Send (the simulator backend is single-threaded); only the store handle
    // crosses the thread boundary.
    let handle: Box<dyn chc_core::StateHandle> = if spans {
        Box::new(TimedHandle {
            inner: Arc::clone(&shared.server),
            store_hist: Arc::clone(&stage),
            pending_ns: Arc::clone(&pending_store_ns),
        })
    } else {
        Box::new(Arc::clone(&shared.server))
    };
    let mut client = StateClient::new(
        plan.vertex,
        plan.instance,
        handle,
        shared.config.mode,
        shared.config.costs,
        &plan.objects,
    );
    client.set_recovery_logging(shared.record_logs);
    client.set_clock_tagging(shared.clock_tags);

    let my_inbox = Arc::clone(&shared.inboxes[&plan.instance]);
    let mut result = InstanceResult {
        vertex: plan.vertex,
        instance: plan.instance,
        processed: 0,
        dropped_by_nf: 0,
        suppressed_duplicates: 0,
        alerts: Vec::new(),
        batches_in: 0,
        failed: false,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(shared.batch);
    let mut seen: HashSet<Clock> = HashSet::new();
    let mut killed_at_clock = 0u64;
    let tracing = shared.telemetry.tracer.is_some();
    let lane = TraceLane::Vertex {
        vertex: plan.vertex.0,
        instance: plan.instance.0 as u64,
    };

    'run: loop {
        // Store callbacks keep read-heavy cached objects fresh (Table 1); the
        // rate is low, so one drain per wake-up is plenty.
        {
            let mut inbox = my_inbox.lock().unwrap_or_else(|e| e.into_inner());
            for (key, value) in inbox.drain(..) {
                client.handle_callback(&key, value);
            }
        }

        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.rx.pop_batch(&mut work, shared.batch);
            if n == 0 {
                continue;
            }
            if let Some(s) = &shared.telemetry.sentinel {
                s.ledger.ring_popped.add(n as u64);
            }
            moved += n;
            result.batches_in += 1;
            let live = !input.replay;
            // One clock read per packet: the batch pop time serves as the
            // first packet's ingress, and each packet's egress read doubles
            // as the next packet's ingress (the instance starts packet i+1
            // the moment it lets go of packet i, so the chained stamp is
            // exact, not an approximation).
            let mut prev_t = if spans && live {
                shared.telemetry.now_ns()
            } else {
                0
            };
            for (pos, tp) in work.drain(..).enumerate() {
                if live {
                    // Fail-stop trigger: die *before* processing the packet.
                    // Everything still queued (this batch's tail included)
                    // stays in flight for the replacement; the already-popped
                    // remainder of *this* batch dies with the instance and is
                    // booked as kill-lost so conservation still closes.
                    if let Some(k) = &kill {
                        if tp.clock.counter() >= k.at_counter {
                            killed_at_clock = tp.clock.counter();
                            result.failed = true;
                            if let Some(s) = &shared.telemetry.sentinel {
                                s.ledger.kill_lost.add((n - pos) as u64);
                            }
                            break 'run;
                        }
                    }
                    input.last_counter = input.last_counter.max(tp.clock.counter());
                }
                let traced = if tracing {
                    tp.trace.map(|t| t.id)
                } else {
                    None
                };
                // Duplicate suppression at the input queue (§5.3): the clock
                // is unique per input packet, so a repeat is always a replay
                // or re-injection; it is counted, never silently processed.
                if shared.dedup && !seen.insert(tp.clock) {
                    result.suppressed_duplicates += 1;
                    if let Some(id) = traced {
                        // Live suppressions reuse the chained stamp: a fresh
                        // clock read could land past the next service span's
                        // begin and break the lane's timestamp order.
                        let t_ns = if spans && live {
                            prev_t
                        } else {
                            shared.telemetry.now_ns()
                        };
                        shared.telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane,
                            kind: SpanKind::Suppress,
                            t_ns,
                            dur_ns: 0,
                        });
                    }
                    continue;
                }
                // Span timing covers live traffic only: replayed packets'
                // hop stamps are stale, and their processing is recovery
                // work, not steady-state service time.
                let span_slot = if spans && live {
                    shared.telemetry.hop_slot(tp.clock.counter())
                } else {
                    None
                };
                let mut queue_wait = 0u64;
                let t_in = span_slot.map(|slot| {
                    queue_wait = prev_t.saturating_sub(slot.load(Ordering::Relaxed));
                    stage.queue_ns.record(queue_wait);
                    pending_store_ns.store(0, Ordering::Relaxed);
                    prev_t
                });
                // Replayed traced packets still get a service span (marked
                // replay) so a trace shows the killed vertex's packets being
                // re-processed by the replacement; it never feeds the stage
                // histograms.
                let replay_t_in = if traced.is_some() && !live {
                    pending_store_ns.store(0, Ordering::Relaxed);
                    Some(shared.telemetry.now_ns())
                } else {
                    None
                };
                process_packet(
                    tp,
                    &mut plan,
                    &mut client,
                    &shared,
                    &mut outs,
                    &mut sink_link,
                    &mut result,
                );
                if let (Some(slot), Some(t_in)) = (span_slot, t_in) {
                    let t_out = shared.telemetry.now_ns();
                    let store_ns = pending_store_ns.swap(0, Ordering::Relaxed);
                    stage.store_ns.record(store_ns);
                    stage
                        .service_ns
                        .record(t_out.saturating_sub(t_in).saturating_sub(store_ns));
                    if let Some(id) = traced {
                        shared.telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane,
                            kind: SpanKind::Service {
                                queue_wait_ns: queue_wait,
                                store_ns,
                                replay: false,
                            },
                            t_ns: t_in,
                            dur_ns: t_out.saturating_sub(t_in),
                        });
                    }
                    // This stage lets go: the next hop measures its queue
                    // wait from here, and so does this stage's next packet.
                    slot.store(t_out, Ordering::Relaxed);
                    prev_t = t_out;
                } else if let (Some(id), Some(t_in)) = (traced, replay_t_in) {
                    let t_out = shared.telemetry.now_ns();
                    let store_ns = pending_store_ns.swap(0, Ordering::Relaxed);
                    shared.telemetry.trace_span(SpanEvent {
                        trace_id: id,
                        lane,
                        kind: SpanKind::Service {
                            queue_wait_ns: 0,
                            store_ns,
                            replay: true,
                        },
                        t_ns: t_in,
                        dur_ns: t_out.saturating_sub(t_in),
                    });
                }
            }
        }

        if moved > 0 {
            if shared.fault_mode {
                // Commit implies durable: flush the batched outputs before
                // publishing the watermark, so a crash after publication can
                // never lose a confirmed packet's effects.
                flush_all(&mut outs, &mut sink_link);
                publish_watermark(&shared, &plan, &mut inputs, replacement);
            }
        } else {
            // Idle: release buffered output so downstream instances are not
            // starved by a partially filled batch, then check for shutdown.
            flush_all(&mut outs, &mut sink_link);
            if kill.is_some()
                && inputs
                    .iter_mut()
                    .filter(|r| !r.replay)
                    .all(|r| r.rx.is_exhausted())
            {
                // The live stream ended without reaching the trigger: this
                // kill can no longer fire. Dropping the switch lets the
                // supervisor observe a disconnected channel and wind down.
                kill = None;
            }
            if inputs.iter_mut().all(|r| r.rx.is_exhausted()) {
                break;
            }
            thread::yield_now();
        }
    }

    if result.failed {
        // Fail-stop: unflushed output batches die with the process; the
        // wiring goes to the supervisor for the replacement thread.
        for links in outs.values_mut() {
            for link in links {
                link.buf.clear();
            }
        }
        if let Some(link) = &mut sink_link {
            link.buf.clear();
        }
        let k = kill.take().expect("fail-stop without a kill switch");
        // Journal the death *before* notifying the supervisor, so the kill
        // event is causally ordered before every failover event.
        shared.telemetry.event(EventKind::InstanceKilled {
            vertex: plan.vertex.0,
            index: k.index as u32,
            instance: plan.instance.0 as u64,
            clock: killed_at_clock,
        });
        let _ = k.tx.send(DyingInstance {
            slot: k.slot,
            inputs,
            outs,
            sink_link,
        });
        return result;
    }

    for links in outs.values_mut() {
        for link in links {
            link.flush();
            link.producer.close();
        }
    }
    if let Some(link) = &mut sink_link {
        link.flush();
        link.producer.close();
    }
    if shared.fault_mode {
        publish_watermark(&shared, &plan, &mut inputs, replacement);
    }
    result
}

fn flush_all(outs: &mut HashMap<VertexId, Vec<OutLink>>, sink_link: &mut Option<OutLink>) {
    for links in outs.values_mut() {
        for link in links {
            link.flush();
        }
    }
    if let Some(link) = sink_link {
        link.flush();
    }
}

/// Publish this instance's commit watermark: the highest counter such that
/// every live packet with a smaller-or-equal counter routed here has been
/// processed and flushed. Each live ring delivers counters monotonically, so
/// the minimum of the per-ring maxima is exactly that frontier. Replay rings
/// are excluded (their traffic is redundant by construction); a replacement
/// stays silent until its replay ring drains, after which its inherited
/// watermark is true again because every logged packet has been re-flushed.
fn publish_watermark(
    shared: &EngineShared,
    plan: &InstancePlan,
    inputs: &mut [InputRing],
    replacement: bool,
) {
    if plan.off_path {
        return;
    }
    if replacement && inputs.iter_mut().any(|r| r.replay && !r.rx.is_exhausted()) {
        return;
    }
    let wm = inputs
        .iter()
        .filter(|r| !r.replay)
        .map(|r| r.last_counter)
        .min()
        .unwrap_or(0);
    if wm > 0 {
        shared.server.publish_commit(plan.instance, wm);
    }
}

/// Run one packet through the NF and forward the outcome.
fn process_packet(
    mut tp: TaggedPacket,
    plan: &mut InstancePlan,
    client: &mut StateClient,
    shared: &EngineShared,
    outs: &mut HashMap<VertexId, Vec<OutLink>>,
    sink_link: &mut Option<OutLink>,
    result: &mut InstanceResult,
) {
    let now = VirtualTime::from_nanos(tp.packet.arrival_ns);
    let mut ctx = NfContext::new(client, tp.clock, now);
    let action = plan.nf.process(&tp.packet, &mut ctx);
    let alerts = ctx.take_alerts();
    for alert in alerts {
        result.alerts.push((tp.clock, alert));
    }
    result.processed += 1;

    // The virtual cost model does not apply on real threads; wall-clock time
    // *is* the cost. The accumulators still need draining.
    let _ = client.take_charge();
    let _ = client.take_packet_tokens();
    for (other, key, value) in client.take_pending_callbacks() {
        if let Some(inbox) = shared.inboxes.get(&other) {
            inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((key, value));
        }
    }

    match action {
        chc_core::Action::Drop => {
            result.dropped_by_nf += 1;
        }
        chc_core::Action::Forward(out_pkt) => {
            tp.packet = out_pkt;
            if plan.off_path {
                // Off-path NFs consume copies; nothing flows onward.
                return;
            }
            if plan.is_tail {
                if let Some(link) = sink_link {
                    link.push(tp.clone(), shared.batch);
                }
            }
            for d in &plan.downstream {
                let Some(splitter) = shared.splitters.get(d) else {
                    continue;
                };
                let idx = splitter.instance_for(&tp.packet, tp.clock);
                if let Some(links) = outs.get_mut(d) {
                    links[idx].push(tp.clone(), shared.batch);
                }
            }
        }
    }
}

/// What the sink thread hands back.
struct SinkResult {
    delivered_ids: Vec<PacketId>,
    duplicates: u64,
    duplicate_clocks: Vec<Clock>,
    bytes: u64,
    latency: StreamingHistogram,
    finished_at: std::time::Duration,
}

/// Body of the sink thread. With `commit` set (fault mode), the sink also
/// publishes its delivery frontier so the root's packet log can be
/// truncated: a packet is confirmed only once the *end host* has it.
fn run_sink(
    mut inputs: Vec<InputRing>,
    stamps: Arc<Vec<AtomicU64>>,
    t0: Instant,
    batch: usize,
    commit: Option<Arc<StoreServer>>,
    telemetry: Arc<RunTelemetry>,
    mut flow_order: Option<FlowOrderChecker>,
) -> SinkResult {
    let spans = telemetry.config.spans;
    let tracing = telemetry.tracer.is_some();
    let mut seen: HashSet<Clock> = HashSet::new();
    let mut out = SinkResult {
        delivered_ids: Vec::new(),
        duplicates: 0,
        duplicate_clocks: Vec::new(),
        bytes: 0,
        latency: StreamingHistogram::new(),
        finished_at: std::time::Duration::ZERO,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(batch);
    loop {
        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.rx.pop_batch(&mut work, batch);
            if n == 0 {
                continue;
            }
            if let Some(s) = &telemetry.sentinel {
                s.ledger.ring_popped.add(n as u64);
            }
            moved += n;
            let now_ns = t0.elapsed().as_nanos() as u64;
            for tp in work.drain(..) {
                input.last_counter = input.last_counter.max(tp.clock.counter());
                out.delivered_ids.push(tp.packet.id);
                let traced = if tracing {
                    tp.trace.map(|t| t.id)
                } else {
                    None
                };
                if !seen.insert(tp.clock) {
                    out.duplicates += 1;
                    out.duplicate_clocks.push(tp.clock);
                    if let Some(id) = traced {
                        telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane: TraceLane::Sink,
                            kind: SpanKind::Deliver {
                                wait_ns: 0,
                                duplicate: true,
                            },
                            t_ns: now_ns,
                            dur_ns: 0,
                        });
                    }
                    continue;
                }
                out.bytes += tp.packet.len as u64;
                let counter = tp.clock.counter();
                let mut wait_ns = 0u64;
                if counter >= 1 && (counter as usize) <= stamps.len() {
                    let stamped = stamps[(counter - 1) as usize].load(Ordering::Relaxed);
                    out.latency.record(now_ns.saturating_sub(stamped));
                    if spans {
                        // Final hop: last vertex egress → sink arrival,
                        // using the same arrival time as the e2e sample so
                        // the decomposition telescopes exactly.
                        if let Some(slot) = telemetry.hop_slot(counter) {
                            wait_ns = now_ns.saturating_sub(slot.load(Ordering::Relaxed));
                            telemetry.sink_wait.record(wait_ns);
                        }
                    }
                }
                if let Some(id) = traced {
                    telemetry.trace_span(SpanEvent {
                        trace_id: id,
                        lane: TraceLane::Sink,
                        kind: SpanKind::Deliver {
                            wait_ns,
                            duplicate: false,
                        },
                        t_ns: now_ns,
                        dur_ns: 0,
                    });
                }
                // Per-flow clock-order invariant, first-copy live arrivals
                // only: replayed copies are recovery traffic and may
                // legitimately arrive late.
                if let Some(checker) = &mut flow_order {
                    if tp.replay_for.is_none() {
                        if let Some(v) = checker.observe(tp.packet.flow_key().0, counter, now_ns) {
                            telemetry.violation(v);
                        }
                    }
                }
            }
        }
        if moved > 0 {
            if let Some(server) = &commit {
                let wm = inputs.iter().map(|r| r.last_counter).min().unwrap_or(0);
                if wm > 0 {
                    server.publish_commit(SINK_COMMIT_SOURCE, wm);
                }
            }
        } else {
            if inputs.iter_mut().all(|r| r.rx.is_exhausted()) {
                break;
            }
            thread::yield_now();
        }
    }
    if let (Some(checker), Some(state)) = (&flow_order, &telemetry.sentinel) {
        state
            .deliveries_checked
            .store(checker.checked, Ordering::Relaxed);
    }
    out.finished_at = t0.elapsed();
    out
}
