//! The real-thread chain engine.
//!
//! [`run_chain_realtime`] executes a [`LogicalDag`] on OS threads:
//!
//! * a **root** (the calling thread) stamps logical clocks in trace order
//!   and feeds the entry vertices,
//! * one thread per **NF instance** pulls packet batches from its input
//!   rings, runs the unmodified [`chc_core::NetworkFunction`] against a
//!   [`StateClient`] backed by the sharded [`StoreServer`], and forwards
//!   outputs through the scope-aware splitters,
//! * a **sink** thread collects chain output, de-duplicates by clock and
//!   measures root→sink wall-clock latency.
//!
//! Every (producer, consumer) pair is connected by exactly one bounded SPSC
//! ring ([`crate::spsc`]), so the packet path takes no locks; packets move in
//! configurable batches that amortize ring and store-client overhead.
//!
//! Routing is the *same* scope-aware [`Splitter`] logic the simulator uses,
//! driven purely by `(packet, logical clock)` — including pre-planned
//! elastic scale-out events — so a given trace partitions identically on
//! both substrates and their outputs can be compared for chain output
//! equivalence.
//!
//! # Fail-stop failure injection (R1/R6 on the wall-clock path)
//!
//! When [`RuntimeConfig::fault`] schedules failures, the engine additionally
//! runs the paper's replay/failover machinery on real threads:
//!
//! * the root keeps a bounded **packet log** keyed by logical clock
//!   ([`chc_core::PacketLog`]), and every on-path upstream of a killed
//!   non-entry vertex keeps an FTMB-style **egress log** of its own output
//!   ([`chc_core::VertexLogs`]); every chain component publishes a
//!   **commit watermark** to the store after flushing each batch
//!   ([`StoreServer::publish_commit`]), and a **supervisor thread** truncates
//!   each log up to its own commit frontier, bounding replay memory;
//! * each NF instance suppresses duplicate clocks at its input queue
//!   (§5.3), so replayed traffic is idempotent end to end;
//! * a killed instance hands its SPSC wiring to the supervisor, which spawns
//!   a **replacement thread** under a fresh instance id, re-associates the
//!   failed instance's per-flow store state, and **replays** the killed
//!   vertex's replay source — the root log for an entry, the merged upstream
//!   egress logs otherwise — through dedicated replay rings that enter the
//!   chain at the killed vertex's own depth, so upstream duplicate
//!   suppression can never eat a replay; live flows keep their ring order
//!   throughout (see [`crate::replay`]);
//! * every logged egress packet carries a per-packet **XOR delete token**
//!   folded into its envelope ([`chc_core::XorDeleteLedger`], Figure 6); the
//!   sink cancels the tokens on first delivery, which lets a **tail
//!   replacement** bound its re-delivery window (a replayed packet whose
//!   clock the sink confirmed is processed but not re-emitted) and lets the
//!   supervisor delete individual log entries the frontier cannot cover;
//! * a plan may kill the **root** itself: a pre-spawned warm standby thread
//!   shadows the root's clock counter, inherits the live rings on death,
//!   replays the unconfirmed suffix of the root log, and resumes injection
//!   where the root died.
//!
//! The healthy path pays none of this: with an empty plan no log is kept,
//! no watermark is published and no duplicate tracking runs.

use crate::config::{RingWait, RuntimeConfig, ScaleEvent};
use crate::fault::{FaultReport, RootTakeover, ShardRecovery};
use crate::replay::{run_supervisor, ReplacementSeed, ReplaySource};
use crate::report::{RuntimeInstanceReport, RuntimeReport};
use crate::spsc::{ring, Consumer, Producer, RingProbe};
use crate::telemetry::{
    assemble_report, finalize_sentinel, run_monitor, run_sentinel, MonitorTargets, RunTelemetry,
    SentinelInputs, SentinelState, TimedHandle, VertexStageMetrics,
};
use chc_core::dag::DagError;
use chc_core::{
    delete_token, ChainConfig, LogicalDag, NetworkFunction, NfContext, Splitter, StateClient,
    TaggedPacket, VertexLogs, XorDeleteLedger, STANDBY_ROOT_ID,
};
use chc_packet::{flow_sampled, PacketId, Scope, Trace, TraceTag};
use chc_sim::VirtualTime;
use chc_store::{Clock, InstanceId, StateKey, StoreServer, Value, VertexId, SINK_COMMIT_SOURCE};
use chc_telemetry::{
    EventKind, FlowOrderChecker, SpanEvent, SpanKind, StreamingHistogram, TraceLane,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Errors surfaced while planning a real-thread run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The logical DAG failed validation.
    Dag(DagError),
    /// The scale event names a vertex not present in the DAG.
    UnknownScaleVertex(VertexId),
    /// A fault-plan kill names a vertex not present in the DAG.
    UnknownFaultVertex(VertexId),
    /// Legacy rejection, raised only under
    /// [`RuntimeConfig::legacy_entry_only_failover`]: a fault-plan kill
    /// targets a non-entry vertex. The engine now restores any vertex from
    /// its upstream egress logs; this error reproduces the old entry-only
    /// behaviour for comparison runs.
    KillNotAtEntry(VertexId),
    /// Legacy rejection, raised only under
    /// [`RuntimeConfig::legacy_entry_only_failover`]: a fault-plan kill
    /// targets a vertex that delivers directly to the end host. The XOR
    /// delete ledger now bounds a tail replacement's re-delivery window, so
    /// tail kills are accepted by default.
    KillAtChainTail(VertexId),
    /// A fault-plan kill names an instance index the vertex does not have.
    FaultIndexOutOfRange {
        /// The targeted vertex.
        vertex: VertexId,
        /// The requested instance index.
        index: usize,
        /// How many instances the vertex actually has.
        instances: usize,
    },
    /// Two kills target the same instance slot.
    DuplicateKill {
        /// The targeted vertex.
        vertex: VertexId,
        /// The doubly-targeted instance index.
        index: usize,
    },
    /// A kill trigger lies outside the trace, so it could never fire.
    KillOutsideTrace {
        /// The requested trigger counter.
        at_counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// A shard fault names a shard the store does not have.
    ShardOutOfRange {
        /// The requested shard.
        shard: usize,
        /// How many shards the store has.
        shards: usize,
    },
    /// A shard fault trigger (restart or checkpoint) lies outside the trace.
    ShardFaultOutsideTrace {
        /// The requested trigger counter.
        at_counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// A re-injection counter lies outside the trace.
    ReinjectOutsideTrace {
        /// The requested counter.
        counter: u64,
        /// Packets in the trace.
        trace_len: usize,
    },
    /// Instance kills need clock-tagged store updates: duplicate suppression
    /// at the store is what makes replay idempotent.
    FaultNeedsClockTags,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Dag(e) => write!(f, "invalid DAG: {e}"),
            RuntimeError::UnknownScaleVertex(v) => {
                write!(f, "scale event references unknown vertex {v}")
            }
            RuntimeError::UnknownFaultVertex(v) => {
                write!(f, "fault plan references unknown vertex {v}")
            }
            RuntimeError::KillNotAtEntry(v) => {
                write!(
                    f,
                    "fault plan kills vertex {v}, which is not a chain entry; \
                     legacy_entry_only_failover restricts replay to \
                     entry-vertex instances"
                )
            }
            RuntimeError::KillAtChainTail(v) => {
                write!(
                    f,
                    "fault plan kills vertex {v}, which outputs directly to the \
                     end host; legacy_entry_only_failover predates the XOR \
                     delete window that bounds tail re-deliveries"
                )
            }
            RuntimeError::FaultIndexOutOfRange {
                vertex,
                index,
                instances,
            } => write!(
                f,
                "fault plan kills instance {index} of vertex {vertex}, which has {instances}"
            ),
            RuntimeError::DuplicateKill { vertex, index } => write!(
                f,
                "fault plan kills instance {index} of vertex {vertex} more than once"
            ),
            RuntimeError::KillOutsideTrace {
                at_counter,
                trace_len,
            } => write!(
                f,
                "kill trigger {at_counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard fault targets shard {shard} of {shards}")
            }
            RuntimeError::ShardFaultOutsideTrace {
                at_counter,
                trace_len,
            } => write!(
                f,
                "shard fault trigger {at_counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::ReinjectOutsideTrace { counter, trace_len } => write!(
                f,
                "re-injection counter {counter} lies outside the {trace_len}-packet trace"
            ),
            RuntimeError::FaultNeedsClockTags => write!(
                f,
                "instance kills require clock_tag_updates (store-side duplicate \
                 suppression makes replay idempotent)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<DagError> for RuntimeError {
    fn from(e: DagError) -> RuntimeError {
        RuntimeError::Dag(e)
    }
}

/// Identity and wiring of one planned instance.
pub(crate) struct InstancePlan {
    pub(crate) vertex: VertexId,
    pub(crate) instance: InstanceId,
    pub(crate) off_path: bool,
    pub(crate) is_tail: bool,
    /// This vertex is the on-path upstream of some killed non-entry vertex:
    /// every live Forward it emits is tokenized and copied into its egress
    /// log, the replay source for that kill.
    pub(crate) log_egress: bool,
    pub(crate) downstream: Vec<VertexId>,
    pub(crate) nf: Box<dyn NetworkFunction>,
    pub(crate) objects: Vec<chc_core::StateObjectSpec>,
}

/// A buffered outgoing edge to one downstream instance.
pub(crate) struct OutLink {
    pub(crate) producer: Producer<TaggedPacket>,
    pub(crate) buf: Vec<TaggedPacket>,
    /// Conservation-ledger handle, when the sentinel is on. Pushes count at
    /// flush time: copies sitting in an unflushed buffer when an instance
    /// fail-stops die with it and are deliberately never "in the network".
    pub(crate) sentinel: Option<Arc<SentinelState>>,
}

impl OutLink {
    fn new(
        producer: Producer<TaggedPacket>,
        batch: usize,
        sentinel: Option<Arc<SentinelState>>,
    ) -> OutLink {
        OutLink {
            producer,
            buf: Vec::with_capacity(batch),
            sentinel,
        }
    }

    /// Queue one packet; drain the buffer through the ring once it holds a
    /// full batch (spinning on downstream backpressure — the DAG is acyclic
    /// and the sink always drains, so this cannot deadlock).
    pub(crate) fn push(&mut self, tp: TaggedPacket, batch: usize) {
        self.buf.push(tp);
        if self.buf.len() >= batch {
            self.flush();
        }
    }

    /// Queue one packet, draining full batches with a *bounded* flush.
    /// Returns `false` when the flush gave up; the un-pushed remainder stays
    /// buffered (and was never booked as in the network).
    pub(crate) fn push_bounded(
        &mut self,
        tp: TaggedPacket,
        batch: usize,
        max_spins: usize,
    ) -> bool {
        self.buf.push(tp);
        if self.buf.len() >= batch {
            return self.try_flush(max_spins);
        }
        true
    }

    /// Drain the buffer through the ring, yielding on downstream
    /// backpressure for at most `max_spins` consecutive empty pushes.
    /// Returns `false` if the ring stayed full that long — the consumer has
    /// stopped draining and spinning further would hang the caller. Only
    /// packets actually pushed are booked in the conservation ledger.
    pub(crate) fn try_flush(&mut self, max_spins: usize) -> bool {
        let mut spins = 0usize;
        while !self.buf.is_empty() {
            let n = self.producer.push_batch(&mut self.buf);
            if n == 0 {
                spins += 1;
                if spins >= max_spins {
                    return false;
                }
                thread::yield_now();
            } else {
                if let Some(s) = &self.sentinel {
                    s.ledger.ring_pushed.add(n as u64);
                }
                spins = 0;
            }
        }
        true
    }

    /// Unbounded flush: on the packet path the DAG is acyclic and the sink
    /// always drains, so this cannot deadlock.
    pub(crate) fn flush(&mut self) {
        let _ = self.try_flush(usize::MAX);
    }
}

/// One input ring of an instance (or the sink), with the bookkeeping the
/// commit protocol needs: the highest clock counter popped so far, and
/// whether the ring is a replay ring (replay traffic is redundant by
/// construction, so it never holds back a commit watermark).
pub(crate) struct InputRing {
    pub(crate) rx: Consumer<TaggedPacket>,
    pub(crate) last_counter: u64,
    pub(crate) replay: bool,
}

impl InputRing {
    fn live(rx: Consumer<TaggedPacket>) -> InputRing {
        InputRing {
            rx,
            last_counter: 0,
            replay: false,
        }
    }

    fn replay(rx: Consumer<TaggedPacket>) -> InputRing {
        InputRing {
            rx,
            last_counter: 0,
            replay: true,
        }
    }
}

/// Callback notifications (store → instance) for read-heavy cached objects.
/// Unlike the packet path this is many-producers → one-consumer and very low
/// rate, so a mutexed vector is the right tool.
type Inbox = Arc<Mutex<Vec<(StateKey, Value)>>>;

/// Engine state shared by every thread of one run.
pub(crate) struct EngineShared {
    pub(crate) server: Arc<StoreServer>,
    pub(crate) splitters: Arc<HashMap<VertexId, Splitter>>,
    pub(crate) inboxes: Arc<HashMap<InstanceId, Inbox>>,
    pub(crate) config: ChainConfig,
    pub(crate) batch: usize,
    pub(crate) record_logs: bool,
    pub(crate) clock_tags: bool,
    /// True when a fault plan is active: the commit protocol runs and
    /// flushes happen at every batch boundary (commit implies durable).
    pub(crate) fault_mode: bool,
    /// True when instances suppress duplicate clocks at their input queues.
    pub(crate) dedup: bool,
    /// Run-wide telemetry: span stamps, stage histograms, event journal.
    pub(crate) telemetry: Arc<RunTelemetry>,
    /// The root's injection log plus the per-vertex egress logs of every
    /// armed upstream of a killed non-entry vertex.
    pub(crate) logs: Arc<VertexLogs>,
    /// XOR delete ledger bounding replay re-delivery windows; present
    /// whenever the plan kills instances or the root.
    pub(crate) ledger: Option<Arc<XorDeleteLedger>>,
    /// Store fast path: when true every instance client buffers
    /// non-blocking store ops and drains them as one batched apply at ring
    /// batch boundaries (and before every correctness barrier).
    pub(crate) write_behind: bool,
    /// Write-behind buffer cap in ops ([`RuntimeConfig::effective_store_batch`]).
    pub(crate) store_batch: usize,
    /// How instance and sink threads wait on empty rings.
    pub(crate) ring_wait: RingWait,
}

/// What a fail-stopped instance hands to the supervisor: its complete SPSC
/// wiring, ready for a replacement thread to take over. Unflushed output
/// buffers have already been discarded (a crashed process loses them), and
/// in-flight packets still queued in the input rings survive, exactly as
/// packets in the network survive an endpoint crash.
pub(crate) struct DyingInstance {
    pub(crate) slot: usize,
    pub(crate) inputs: Vec<InputRing>,
    pub(crate) outs: HashMap<VertexId, Vec<OutLink>>,
    pub(crate) sink_link: Option<OutLink>,
}

/// Arms one instance thread with its fail-stop trigger.
pub(crate) struct KillSwitch {
    pub(crate) slot: usize,
    /// Replica index within the vertex (for the event journal).
    pub(crate) index: usize,
    pub(crate) at_counter: u64,
    pub(crate) tx: mpsc::Sender<DyingInstance>,
}

/// What an instance thread hands back when it exits.
pub(crate) struct InstanceResult {
    pub(crate) vertex: VertexId,
    pub(crate) instance: InstanceId,
    pub(crate) processed: u64,
    pub(crate) dropped_by_nf: u64,
    pub(crate) suppressed_duplicates: u64,
    pub(crate) alerts: Vec<(Clock, String)>,
    pub(crate) batches_in: u64,
    pub(crate) replay_egress_gated: u64,
    pub(crate) failed: bool,
}

impl InstanceResult {
    fn into_report(self) -> RuntimeInstanceReport {
        RuntimeInstanceReport {
            vertex: self.vertex,
            instance: self.instance,
            processed: self.processed,
            dropped_by_nf: self.dropped_by_nf,
            suppressed_duplicates: self.suppressed_duplicates,
            alerts: self.alerts,
            batches_in: self.batches_in,
            replay_egress_gated: self.replay_egress_gated,
        }
    }
}

/// Execute `dag` over `trace` on real threads. See the module docs.
pub fn run_chain_realtime(
    dag: &LogicalDag,
    config: ChainConfig,
    rt: &RuntimeConfig,
    trace: &Trace,
) -> Result<RuntimeReport, RuntimeError> {
    dag.topo_order()?;
    if let Some(scale) = rt.scale {
        if dag.vertex(scale.vertex).is_none() {
            return Err(RuntimeError::UnknownScaleVertex(scale.vertex));
        }
    }
    let batch = rt.batch_size.max(1);
    let depth = rt.queue_depth.max(batch * 2);
    let fault = rt.fault.clone();
    let fault_mode = !fault.is_empty();
    let dedup = fault_mode && config.duplicate_suppression;
    if (!fault.kills.is_empty() || fault.root_kill.is_some()) && !rt.clock_tag_updates {
        return Err(RuntimeError::FaultNeedsClockTags);
    }

    // ------------------------------------------------------------------
    // Plan: splitters, instance identities, NF code.
    // ------------------------------------------------------------------

    // Same scope choice as ChainController::new: the coarsest partitionable
    // scope minimises shared state; Global cannot spread load, so it is
    // skipped.
    let mut splitters: HashMap<VertexId, Splitter> = HashMap::new();
    for v in dag.vertices() {
        let scope = v
            .scopes()
            .into_iter()
            .filter(|s| *s != Scope::Global)
            .max()
            .unwrap_or(Scope::FiveTuple);
        splitters.insert(v.id, Splitter::new(v.id, scope, v.parallelism));
    }

    // Instance identities in ChainController order (vertex declaration order,
    // then index), with the scale-out instance appended last — ids must match
    // the simulator's so per-flow datastore keys line up across substrates.
    let exits = dag.exits();
    let mut plans: Vec<InstancePlan> = Vec::new();
    // Replica index within its vertex, per plan slot (for the event journal).
    let mut slot_index: Vec<usize> = Vec::new();
    let mut next_instance = 0u32;
    for v in dag.vertices() {
        for idx in 0..v.parallelism {
            let nf = v.build_nf();
            let objects = nf.state_objects();
            plans.push(InstancePlan {
                vertex: v.id,
                instance: InstanceId(next_instance),
                off_path: v.off_path,
                is_tail: exits.contains(&v.id),
                log_egress: false,
                downstream: dag.downstream_of(v.id),
                nf,
                objects,
            });
            slot_index.push(idx);
            next_instance += 1;
        }
    }
    if let Some(scale) = rt.scale {
        let v = dag.vertex(scale.vertex).expect("validated above");
        let nf = v.build_nf();
        let objects = nf.state_objects();
        plans.push(InstancePlan {
            vertex: v.id,
            instance: InstanceId(next_instance),
            off_path: v.off_path,
            is_tail: exits.contains(&v.id),
            log_egress: false,
            downstream: dag.downstream_of(v.id),
            nf,
            objects,
        });
        slot_index.push(v.parallelism);
        let splitter = splitters.get_mut(&scale.vertex).expect("splitter exists");
        splitter.schedule_scale(scale.first_counter, v.parallelism + 1);
        next_instance += 1;
    }
    let splitters = Arc::new(splitters);

    // Instance indices per vertex, in id order (= index order).
    let mut by_vertex: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (i, p) in plans.iter().enumerate() {
        by_vertex.entry(p.vertex).or_default().push(i);
    }
    let entries = dag.entries();

    // ------------------------------------------------------------------
    // Fault plan validation and replacement seeds.
    // ------------------------------------------------------------------

    // Replacement instance ids are assigned in fault-plan order, after every
    // planned instance — the same ids the simulator hands out when the
    // equivalence test calls `failover_instance` in the same order.
    let mut seeds: HashMap<usize, ReplacementSeed> = HashMap::new();
    let mut kill_at_by_slot: Vec<Option<(u64, usize)>> = vec![None; plans.len()];
    for kill in &fault.kills {
        let Some(v) = dag.vertex(kill.vertex) else {
            return Err(RuntimeError::UnknownFaultVertex(kill.vertex));
        };
        if rt.legacy_entry_only_failover {
            // Escape hatch reproducing the pre-egress-log engine: only
            // entry, non-tail vertices were recoverable then.
            if !entries.contains(&kill.vertex) {
                return Err(RuntimeError::KillNotAtEntry(kill.vertex));
            }
            if exits.contains(&kill.vertex) && !v.off_path {
                return Err(RuntimeError::KillAtChainTail(kill.vertex));
            }
        }
        let slots = by_vertex
            .get(&kill.vertex)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let Some(&slot) = slots.get(kill.index) else {
            return Err(RuntimeError::FaultIndexOutOfRange {
                vertex: kill.vertex,
                index: kill.index,
                instances: slots.len(),
            });
        };
        if kill.at_counter == 0 || kill.at_counter > trace.len() as u64 {
            return Err(RuntimeError::KillOutsideTrace {
                at_counter: kill.at_counter,
                trace_len: trace.len(),
            });
        }
        if seeds.contains_key(&slot) {
            return Err(RuntimeError::DuplicateKill {
                vertex: kill.vertex,
                index: kill.index,
            });
        }
        kill_at_by_slot[slot] = Some((kill.at_counter, kill.index));
        let nf = v.build_nf();
        let objects = nf.state_objects();
        seeds.insert(
            slot,
            ReplacementSeed {
                kill: *kill,
                old_instance: plans[slot].instance,
                plan: InstancePlan {
                    vertex: kill.vertex,
                    instance: InstanceId(next_instance),
                    off_path: v.off_path,
                    is_tail: exits.contains(&kill.vertex),
                    log_egress: false,
                    downstream: dag.downstream_of(kill.vertex),
                    nf,
                    objects,
                },
            },
        );
        next_instance += 1;
    }
    if let Some(at) = fault.root_kill {
        if at == 0 || at > trace.len() as u64 {
            return Err(RuntimeError::KillOutsideTrace {
                at_counter: at,
                trace_len: trace.len(),
            });
        }
    }

    // Replay sources: a killed entry is restored from the root's injection
    // log; a killed mid-chain or tail vertex from the egress logs of its
    // on-path upstream vertices (FTMB-style per-vertex output logging), so
    // the replay re-enters the chain at the killed vertex's own depth and
    // upstream duplicate suppression can never eat it. Off-path vertices
    // emit nothing, so they are never a replay source.
    let mut preds: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for v in dag.vertices() {
        if v.off_path {
            continue;
        }
        for d in dag.downstream_of(v.id) {
            preds.entry(d).or_default().push(v.id);
        }
    }
    let mut replay_sources: HashMap<VertexId, ReplaySource> = HashMap::new();
    let mut logging: BTreeSet<VertexId> = BTreeSet::new();
    for kill in &fault.kills {
        if replay_sources.contains_key(&kill.vertex) {
            continue;
        }
        if entries.contains(&kill.vertex) {
            replay_sources.insert(kill.vertex, ReplaySource::Root);
        } else {
            let ups = preds.get(&kill.vertex).cloned().unwrap_or_default();
            logging.extend(ups.iter().copied());
            replay_sources.insert(kill.vertex, ReplaySource::Upstream(ups));
        }
    }
    // Arm egress logging on every instance of a logging vertex — and on its
    // replacement, should the logging vertex itself be killed, so the log
    // keeps covering live traffic across that failover.
    for p in &mut plans {
        p.log_egress = logging.contains(&p.vertex);
    }
    for seed in seeds.values_mut() {
        seed.plan.log_egress = logging.contains(&seed.plan.vertex);
    }

    let shards = rt.store_shards.max(1);
    let mut shard_checkpoints: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut shard_restarts: HashMap<u64, Vec<usize>> = HashMap::new();
    for sf in &fault.shard_faults {
        if sf.shard >= shards {
            return Err(RuntimeError::ShardOutOfRange {
                shard: sf.shard,
                shards,
            });
        }
        for at in std::iter::once(sf.at_counter).chain(sf.checkpoint_at) {
            if at == 0 || at > trace.len() as u64 {
                return Err(RuntimeError::ShardFaultOutsideTrace {
                    at_counter: at,
                    trace_len: trace.len(),
                });
            }
        }
        if let Some(cp) = sf.checkpoint_at {
            shard_checkpoints.entry(cp).or_default().push(sf.shard);
        }
        shard_restarts
            .entry(sf.at_counter)
            .or_default()
            .push(sf.shard);
    }
    let reinject_set: HashSet<u64> = fault.reinject.iter().copied().collect();
    for &counter in &reinject_set {
        if counter == 0 || counter > trace.len() as u64 {
            return Err(RuntimeError::ReinjectOutsideTrace {
                counter,
                trace_len: trace.len(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Wiring: one SPSC ring per (producer, consumer) pair.
    // ------------------------------------------------------------------

    // Sentinel state exists before the wiring because every OutLink carries
    // a handle to the conservation ledger.
    let sentinel_state = rt
        .telemetry
        .sentinel
        .then(|| Arc::new(SentinelState::new()));

    // inputs[i]: consumers feeding instance i; outs[i][vertex][k]: producer
    // from instance i to instance k of the downstream vertex.
    let mut inputs: Vec<Vec<InputRing>> = (0..plans.len()).map(|_| Vec::new()).collect();
    let mut outs: Vec<HashMap<VertexId, Vec<OutLink>>> =
        (0..plans.len()).map(|_| HashMap::new()).collect();

    // Occupancy probes for the gauge monitor, labelled by edge.
    let monitor_on = rt.telemetry.sample_interval.is_some();
    let mut ring_probes: Vec<(String, RingProbe)> = Vec::new();

    // Root → entry instances.
    let mut root_outs: HashMap<VertexId, Vec<OutLink>> = HashMap::new();
    for entry in &entries {
        let mut links = Vec::new();
        for &target in by_vertex.get(entry).map(|v| v.as_slice()).unwrap_or(&[]) {
            let (tx, rx) = ring(depth);
            if monitor_on {
                ring_probes.push((
                    format!("root->v{}.{}", entry.0, links.len()),
                    tx.depth_probe(),
                ));
            }
            inputs[target].push(InputRing::live(rx));
            links.push(OutLink::new(tx, batch, sentinel_state.clone()));
        }
        root_outs.insert(*entry, links);
    }

    // Supervisor → instances of each *killed* vertex: one replay ring per
    // instance, idle until a failover replays that vertex's replay source.
    // Replay traffic never shares a ring with live traffic, so live flows
    // keep their order; and the rings sit at the killed vertex's own depth —
    // its replacement inherits them with the rest of the wiring, so replays
    // enter the chain exactly where the loss happened.
    let mut replay_outs: HashMap<VertexId, Vec<OutLink>> = HashMap::new();
    if !seeds.is_empty() {
        let killed: BTreeSet<VertexId> = fault.kills.iter().map(|k| k.vertex).collect();
        for kv in &killed {
            let mut links = Vec::new();
            for &target in by_vertex.get(kv).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (tx, rx) = ring(depth);
                if monitor_on {
                    ring_probes.push((
                        format!("replay->v{}.{}", kv.0, links.len()),
                        tx.depth_probe(),
                    ));
                }
                inputs[target].push(InputRing::replay(rx));
                links.push(OutLink::new(tx, batch, sentinel_state.clone()));
            }
            replay_outs.insert(*kv, links);
        }
    }

    // Instance → downstream instances (on-path producers only; off-path
    // vertices consume copies and emit nothing, as in the simulator).
    for i in 0..plans.len() {
        if plans[i].off_path {
            continue;
        }
        for d in plans[i].downstream.clone() {
            let mut links = Vec::new();
            for &target in by_vertex.get(&d).map(|v| v.as_slice()).unwrap_or(&[]) {
                let (tx, rx) = ring(depth);
                if monitor_on {
                    ring_probes.push((
                        format!(
                            "v{}.{}->v{}.{}",
                            plans[i].vertex.0,
                            slot_index[i],
                            d.0,
                            links.len()
                        ),
                        tx.depth_probe(),
                    ));
                }
                inputs[target].push(InputRing::live(rx));
                links.push(OutLink::new(tx, batch, sentinel_state.clone()));
            }
            outs[i].insert(d, links);
        }
    }

    // Tail instances → sink.
    let mut sink_inputs: Vec<InputRing> = Vec::new();
    let mut sink_outs: Vec<Option<OutLink>> = (0..plans.len()).map(|_| None).collect();
    for (i, p) in plans.iter().enumerate() {
        if p.is_tail && !p.off_path {
            let (tx, rx) = ring(depth);
            if monitor_on {
                ring_probes.push((
                    format!("v{}.{}->sink", p.vertex.0, slot_index[i]),
                    tx.depth_probe(),
                ));
            }
            sink_inputs.push(InputRing::live(rx));
            sink_outs[i] = Some(OutLink::new(tx, batch, sentinel_state.clone()));
        }
    }

    // Callback inboxes, addressed by instance id (replacements included).
    let mut inbox_map: HashMap<InstanceId, Inbox> = plans
        .iter()
        .map(|p| (p.instance, Arc::new(Mutex::new(Vec::new()))))
        .collect();
    for seed in seeds.values() {
        inbox_map.insert(seed.plan.instance, Arc::new(Mutex::new(Vec::new())));
    }
    let inboxes: Arc<HashMap<InstanceId, Inbox>> = Arc::new(inbox_map);

    // ------------------------------------------------------------------
    // Shared infrastructure: store, latency stamps, packet log.
    // ------------------------------------------------------------------

    let server = StoreServer::with_backend(rt.store_shards, rt.store_backend);
    for sf in &fault.shard_faults {
        server.set_shard_journaling(sf.shard, true);
    }
    let t0 = Instant::now();
    // Root stamp time per clock counter (ns since t0), published to the sink
    // through the rings' release/acquire edges.
    let stamps: Arc<Vec<AtomicU64>> =
        Arc::new((0..trace.len()).map(|_| AtomicU64::new(0)).collect());

    let telemetry = Arc::new(RunTelemetry::new(
        rt.telemetry,
        t0,
        trace.len(),
        dag.vertices().iter().map(|v| v.id),
        sentinel_state,
    ));

    // Packet logs: the root's injection log plus one egress log per armed
    // upstream vertex, all bounded by the same capacity; and the XOR delete
    // ledger that tracks, per clock counter, which logged tokens are still
    // outstanding and whether the sink confirmed delivery.
    let mut vertex_logs = VertexLogs::new(config.root_log_capacity);
    for &v in &logging {
        vertex_logs.arm(v, config.root_log_capacity);
    }
    let logs = Arc::new(vertex_logs);
    let ledger: Option<Arc<XorDeleteLedger>> = (fault_mode
        && (!fault.kills.is_empty() || fault.root_kill.is_some()))
    .then(|| Arc::new(XorDeleteLedger::new(trace.len() as u64)));

    let shared = Arc::new(EngineShared {
        server: Arc::clone(&server),
        splitters: Arc::clone(&splitters),
        inboxes: Arc::clone(&inboxes),
        config,
        batch,
        record_logs: rt.record_recovery_logs,
        clock_tags: rt.clock_tag_updates,
        fault_mode,
        dedup,
        telemetry: Arc::clone(&telemetry),
        logs: Arc::clone(&logs),
        ledger: ledger.clone(),
        write_behind: rt.write_behind,
        store_batch: rt.effective_store_batch(),
        ring_wait: rt.ring_wait,
    });

    // Commit sources bounding the root log: every on-path instance plus the
    // sink must confirm a counter before the supervisor may truncate it.
    let commit_sources: Vec<InstanceId> = plans
        .iter()
        .filter(|p| !p.off_path)
        .map(|p| p.instance)
        .chain(std::iter::once(SINK_COMMIT_SOURCE))
        .collect();
    // Each armed egress log truncates against its *own* scope: the on-path
    // instances strictly downstream of the logging vertex, plus the sink.
    // (The logging vertex's own watermark says nothing about whether its
    // egress has been consumed yet.)
    let vertex_commit_scopes: Vec<(VertexId, Vec<InstanceId>)> = logging
        .iter()
        .map(|&u| {
            let mut below: HashSet<VertexId> = HashSet::new();
            let mut stack = dag.downstream_of(u);
            while let Some(d) = stack.pop() {
                if below.insert(d) {
                    stack.extend(dag.downstream_of(d));
                }
            }
            let srcs: Vec<InstanceId> = plans
                .iter()
                .filter(|p| !p.off_path && below.contains(&p.vertex))
                .map(|p| p.instance)
                .chain(std::iter::once(SINK_COMMIT_SOURCE))
                .collect();
            (u, srcs)
        })
        .collect();
    let done_injecting = Arc::new(AtomicBool::new(false));

    let result =
        thread::scope(|scope| {
            let (fault_tx, fault_rx) = mpsc::channel::<DyingInstance>();

            // ---------------- instance threads ----------------
            let mut handles = Vec::new();
            for (slot, (plan, (ins, out_map), sink_link)) in
                zip3(plans, inputs.into_iter().zip(outs), sink_outs).enumerate()
            {
                let shared = Arc::clone(&shared);
                let kill = kill_at_by_slot[slot].map(|(at_counter, index)| KillSwitch {
                    slot,
                    index,
                    at_counter,
                    tx: fault_tx.clone(),
                });
                telemetry.event(EventKind::InstanceSpawn {
                    vertex: plan.vertex.0,
                    index: slot_index[slot] as u32,
                    instance: plan.instance.0 as u64,
                });
                handles.push(scope.spawn(move || {
                    run_instance(plan, ins, out_map, sink_link, shared, kill, false)
                }));
            }
            drop(fault_tx);

            // ---------------- sink thread ----------------
            let sink_stamps = Arc::clone(&stamps);
            let sink_commit = fault_mode.then(|| Arc::clone(&server));
            let sink_telemetry = Arc::clone(&telemetry);
            // Per-flow delivery-order checking rides the sink thread (one
            // map lookup per live arrival); a pre-planned scale cut exempts
            // cross-cut pairs because the cut re-routes flows.
            let sink_flow_order = telemetry
                .sentinel
                .is_some()
                .then(|| FlowOrderChecker::new(rt.scale.map(|s| s.first_counter)));
            let sink_ledger = ledger.clone();
            let sink_handle = scope.spawn(move || {
                run_sink(
                    sink_inputs,
                    sink_stamps,
                    t0,
                    batch,
                    sink_commit,
                    sink_ledger,
                    sink_telemetry,
                    sink_flow_order,
                    rt.ring_wait,
                )
            });

            // ---------------- sentinel thread ----------------
            // Consumes the event journal while the run is live, so a
            // frontier regression or phase-order break surfaces as a
            // violation event at detection time, not at shutdown.
            let sentinel_stop = Arc::new(AtomicBool::new(false));
            let sentinel_handle = (telemetry.sentinel.is_some() && telemetry.journal.is_some())
                .then(|| {
                    let telemetry = Arc::clone(&telemetry);
                    let stop = Arc::clone(&sentinel_stop);
                    scope.spawn(move || run_sentinel(telemetry, stop))
                });

            // ---------------- monitor thread ----------------
            let monitor_stop = Arc::new(AtomicBool::new(false));
            let monitor_handle = rt.telemetry.sample_interval.map(|interval| {
                let targets = MonitorTargets {
                    rings: std::mem::take(&mut ring_probes),
                    server: Arc::clone(&server),
                    journaled_shards: fault
                        .shard_faults
                        .iter()
                        .map(|sf| sf.shard)
                        .collect::<BTreeSet<usize>>()
                        .into_iter()
                        .collect(),
                    log: fault_mode.then(|| Arc::clone(&logs)),
                };
                let telemetry = Arc::clone(&telemetry);
                let stop = Arc::clone(&monitor_stop);
                scope.spawn(move || run_monitor(targets, telemetry, interval, stop))
            });

            // ---------------- supervisor thread ----------------
            let sup_handle = fault_mode.then(|| {
                let shared = Arc::clone(&shared);
                let logs = Arc::clone(&logs);
                let ledger = ledger.clone();
                let done = Arc::clone(&done_injecting);
                let sources = commit_sources.clone();
                let scopes = vertex_commit_scopes.clone();
                scope.spawn(move || {
                    run_supervisor(
                        scope,
                        fault_rx,
                        seeds,
                        replay_outs,
                        replay_sources,
                        logs,
                        ledger,
                        shared,
                        sources,
                        scopes,
                        done,
                    )
                })
            });

            // ---------------- warm standby root ----------------
            // Pre-spawned before injection starts: it blocks on the handover
            // channel, shadowing the root's clock counter, and wakes only if
            // the plan fail-stops the root mid-trace.
            let root_ctx = RootShared {
                trace,
                entries: &entries,
                splitters: &splitters,
                stamps: &stamps,
                telemetry: &telemetry,
                logs: &logs,
                server: &server,
                scale: rt.scale,
                trace_ppm: rt.telemetry.trace_sample_ppm,
                fault_mode,
                batch,
                t0,
                reinject_set: &reinject_set,
                shard_checkpoints: &shard_checkpoints,
                shard_restarts: &shard_restarts,
                inject_spans: true,
            };
            let (standby_tx, standby_rx) = mpsc::channel::<RootIo>();
            let standby_handle = fault.root_kill.map(|kill_at| {
                let telemetry = Arc::clone(&telemetry);
                let logs = Arc::clone(&logs);
                let ledger = ledger.clone();
                let splitters = Arc::clone(&splitters);
                let stamps = Arc::clone(&stamps);
                let server = Arc::clone(&server);
                let done = Arc::clone(&done_injecting);
                let entries = &entries;
                let reinject_set = &reinject_set;
                let shard_checkpoints = &shard_checkpoints;
                let shard_restarts = &shard_restarts;
                let trace_ppm = rt.telemetry.trace_sample_ppm;
                let scale = rt.scale;
                scope.spawn(
                    move || -> (u64, u64, Vec<ShardRecovery>, Option<RootTakeover>) {
                        let Ok(mut io) = standby_rx.recv() else {
                            // Unsignalled channel drop: the root never died
                            // (cannot happen with a validated root kill).
                            return (0, 0, Vec::new(), None);
                        };
                        let started = Instant::now();
                        let ctx = RootShared {
                            trace,
                            entries,
                            splitters: &splitters,
                            stamps: &stamps,
                            telemetry: &telemetry,
                            logs: &logs,
                            server: &server,
                            scale,
                            trace_ppm,
                            fault_mode: true,
                            batch,
                            t0,
                            reinject_set,
                            shard_checkpoints,
                            shard_restarts,
                            // The Root trace lane is single-writer; the
                            // standby skips Inject spans rather than
                            // interleave with the dead root's lane.
                            inject_spans: false,
                        };
                        // Replay the unconfirmed suffix of the root log
                        // through the inherited live rings, marked as
                        // standby replay. Replayed counters all sit below
                        // the resume point, so per-ring watermarks stay
                        // monotone; entry seen-sets and the sink's replay
                        // window absorb the copies the chain already has —
                        // only the packets that died in the root's buffers
                        // flow through for the first time.
                        let snapshot = {
                            let lg = logs.root();
                            lg.snapshot()
                        };
                        let mut replayed = 0u64;
                        for mut tp in snapshot {
                            if ledger
                                .as_ref()
                                .is_some_and(|l| l.confirmed(tp.clock.counter()))
                            {
                                continue;
                            }
                            tp.replay_for = Some(STANDBY_ROOT_ID);
                            route_to_entries(&ctx, &mut io, &tp);
                            replayed += 1;
                            telemetry.replay_progress.inc();
                        }
                        for links in io.outs.values_mut() {
                            for link in links {
                                link.flush();
                            }
                        }
                        let resumed_at = io.counter + 1;
                        telemetry.event(EventKind::RootTakeover {
                            resumed_at,
                            packets_replayed: replayed,
                        });
                        let mut shard_recs = Vec::new();
                        run_root_injection(&ctx, &mut io, None, &mut shard_recs);
                        let reinjected = finish_injection(&ctx, &mut io);
                        done.store(true, Ordering::Release);
                        let takeover = RootTakeover {
                            killed_at: kill_at,
                            resumed_at,
                            packets_replayed: replayed,
                            recovery_wall: started.elapsed(),
                        };
                        (io.counter, reinjected, shard_recs, Some(takeover))
                    },
                )
            });

            // ---------------- root (this thread) ----------------
            let mut io = RootIo {
                outs: root_outs,
                reinject_buf: Vec::new(),
                counter: 0,
            };
            let mut shard_recoveries: Vec<ShardRecovery> = Vec::new();
            run_root_injection(&root_ctx, &mut io, fault.root_kill, &mut shard_recoveries);
            let mut root_reinjected = 0u64;
            let root_counter;
            if let Some(kill_at) = fault.root_kill {
                // Fail-stop: the root dies just before injecting `kill_at`.
                // Its unflushed output buffers die with it (what a crashed
                // process loses); the live rings themselves survive, exactly
                // like packets in the network, and the warm standby inherits
                // them together with the shadowed counter.
                telemetry.event(EventKind::RootKilled {
                    at_counter: kill_at,
                });
                for links in io.outs.values_mut() {
                    for link in links {
                        link.buf.clear();
                    }
                }
                root_counter = io.counter;
                standby_tx
                    .send(io)
                    .expect("standby thread holds the receiver");
            } else {
                root_reinjected = finish_injection(&root_ctx, &mut io);
                root_counter = io.counter;
                drop(io);
                done_injecting.store(true, Ordering::Release);
            }
            drop(standby_tx);

            // The standby (when armed) finishes injection and sets
            // done_injecting, so it must be joined before the supervisor,
            // which waits on that flag.
            let standby_out = standby_handle.map(|h| h.join().expect("standby thread panicked"));
            let (injected_counter, reinjected, standby_shards, root_takeover) = match standby_out {
                Some((c, r, recs, takeover)) if takeover.is_some() => (c, r, recs, takeover),
                _ => (root_counter, root_reinjected, Vec::new(), None),
            };
            shard_recoveries.extend(standby_shards);

            // The supervisor exits once every planned kill resolved and closes
            // the replay rings; instances drain and exit after it.
            let sup = sup_handle.map(|h| h.join().expect("supervisor thread panicked"));

            let mut instance_results: Vec<InstanceResult> = handles
                .into_iter()
                .map(|h| h.join().expect("instance thread panicked"))
                .collect();
            let (recoveries, aborts, replacement_handles) = match sup {
                Some(outcome) => (outcome.recoveries, outcome.aborts, outcome.replacements),
                None => (Vec::new(), Vec::new(), Vec::new()),
            };
            for h in replacement_handles {
                instance_results.push(h.join().expect("replacement thread panicked"));
            }
            let sink = sink_handle.join().expect("sink thread panicked");
            sentinel_stop.store(true, Ordering::Release);
            if let Some(h) = sentinel_handle {
                h.join().expect("sentinel thread panicked");
            }
            monitor_stop.store(true, Ordering::Release);
            let series = monitor_handle
                .map(|h| h.join().expect("monitor thread panicked"))
                .unwrap_or_default();
            (
                injected_counter,
                reinjected,
                shard_recoveries,
                recoveries,
                aborts,
                root_takeover,
                instance_results,
                sink,
                series,
            )
        });
    let (
        injected,
        reinjected,
        shard_recoveries,
        recoveries,
        aborts,
        root_takeover,
        instance_results,
        sink,
        series,
    ) = result;

    let mut instances = Vec::new();
    let mut failed_instances = Vec::new();
    for r in instance_results {
        if r.failed {
            failed_instances.push(r.into_report());
        } else {
            instances.push(r.into_report());
        }
    }
    instances.sort_by_key(|r| (r.vertex, r.instance));

    // Final frontier pass: every surviving component has published its last
    // watermark by now, so this is the tightest truncation the commit
    // protocol can justify.
    let mut final_frontier = 0u64;
    let fault_report = fault_mode.then(|| {
        let remap = |srcs: &[InstanceId]| -> Vec<InstanceId> {
            let mut srcs = srcs.to_vec();
            for rec in &recoveries {
                for s in srcs.iter_mut() {
                    if *s == rec.failed_instance {
                        *s = rec.replacement;
                    }
                }
            }
            srcs
        };
        let frontier = server.commit_frontier(&remap(&commit_sources));
        final_frontier = frontier;
        let (high_water, truncated, final_len, rejected) = {
            let mut lg = logs.root();
            let dropped = lg.truncate_confirmed(0, frontier);
            if dropped > 0 {
                telemetry.event(EventKind::CommitFrontier {
                    frontier,
                    dropped: dropped as u64,
                });
            }
            (lg.high_water(), lg.truncated(), lg.len(), lg.rejected())
        };
        // Per-vertex egress logs truncate against their own scopes, then an
        // XOR sweep deletes every remaining entry whose clock the ledger
        // proves both delivered and fully cancelled (Figure 6's per-packet
        // deletes, which cover what the frontier cannot).
        for (v, srcs) in &vertex_commit_scopes {
            let vf = server.commit_frontier(&remap(srcs));
            if let Some(mut vl) = logs.vertex(*v) {
                vl.truncate_confirmed(0, vf);
                if let Some(ledger) = &ledger {
                    vl.delete_where(|c| ledger.deletable(c.counter()));
                }
            }
        }
        FaultReport {
            recoveries,
            shard_recoveries,
            log_high_water: high_water,
            log_truncated: truncated,
            log_final_len: final_len,
            log_rejected: rejected,
            reinjected,
            root_takeover,
            aborts,
            vertex_logs: logs.stats(),
        }
    });

    // Shutdown invariant pass — before the telemetry report is assembled,
    // so violation events it journals appear in the report's event list.
    let processed_total: u64 = instances
        .iter()
        .chain(failed_instances.iter())
        .map(|r| r.processed)
        .sum();
    let suppressed_total: u64 = instances
        .iter()
        .chain(failed_instances.iter())
        .map(|r| r.suppressed_duplicates)
        .sum();
    let invariants = finalize_sentinel(
        &telemetry,
        &SentinelInputs {
            injected,
            reinjected,
            duplicates: sink.duplicates,
            sink_arrivals: sink.arrivals,
            processed: processed_total,
            suppressed: suppressed_total,
            fault_mode,
            frontier: final_frontier,
            log_final_len: fault_report.as_ref().map_or(0, |f| f.log_final_len as u64),
            log_high_water: fault_report.as_ref().map_or(0, |f| f.log_high_water as u64),
            log_capacity: config.root_log_capacity as u64,
            vertex_log_high_water: fault_report.as_ref().map_or(0, |f| {
                f.vertex_logs
                    .iter()
                    .map(|s| s.high_water as u64)
                    .max()
                    .unwrap_or(0)
            }),
            xor_dirty: ledger
                .as_ref()
                .map_or(0, |l| l.dirty_confirmed().len() as u64),
        },
    );

    let telemetry_report =
        (!rt.telemetry.is_disabled()).then(|| assemble_report(&telemetry, series));

    Ok(RuntimeReport {
        delivered: sink.delivered_ids.len() - sink.duplicates as usize,
        duplicates: sink.duplicates,
        duplicate_clocks: sink.duplicate_clocks,
        delivered_ids: sink.delivered_ids,
        replay_window_suppressed: sink.replay_window_suppressed,
        delivered_bytes: sink.bytes,
        injected,
        elapsed: sink.finished_at,
        latency: sink.latency,
        instances,
        failed_instances,
        store_ops: server.total_ops(),
        store_ops_per_shard: server.ops_per_shard(),
        final_state: server.dump(),
        fault: fault_report,
        telemetry: telemetry_report,
        invariants,
    })
}

/// Zip three equal-length collections (std has no 3-way zip that keeps
/// by-value iteration readable).
fn zip3<A, B, C>(
    a: Vec<A>,
    b: impl Iterator<Item = B>,
    c: Vec<C>,
) -> impl Iterator<Item = (A, B, C)> {
    a.into_iter().zip(b).zip(c).map(|((a, b), c)| (a, b, c))
}

/// Everything the stamping loop reads, shared between the root (the calling
/// thread) and the warm standby that takes over if the plan kills the root.
struct RootShared<'a> {
    trace: &'a Trace,
    entries: &'a [VertexId],
    splitters: &'a HashMap<VertexId, Splitter>,
    stamps: &'a [AtomicU64],
    telemetry: &'a RunTelemetry,
    logs: &'a VertexLogs,
    server: &'a StoreServer,
    scale: Option<ScaleEvent>,
    trace_ppm: u32,
    fault_mode: bool,
    batch: usize,
    t0: Instant,
    reinject_set: &'a HashSet<u64>,
    shard_checkpoints: &'a HashMap<u64, Vec<usize>>,
    shard_restarts: &'a HashMap<u64, Vec<usize>>,
    /// Only the original root records Inject trace spans: the Root trace
    /// lane is single-writer, and the standby resumes after the dead root's
    /// last span.
    inject_spans: bool,
}

/// The injection state handed from the dead root to the warm standby: the
/// live output rings, the re-injection buffer, and the clock counter the
/// standby shadows — injection resumes exactly where the root died.
struct RootIo {
    outs: HashMap<VertexId, Vec<OutLink>>,
    reinject_buf: Vec<TaggedPacket>,
    counter: u64,
}

/// Stamp and inject the trace from `io.counter` onward, stopping — without
/// injecting — just before `stop_before`, the planned root fail-stop point.
fn run_root_injection(
    ctx: &RootShared<'_>,
    io: &mut RootIo,
    stop_before: Option<u64>,
    shard_recoveries: &mut Vec<ShardRecovery>,
) {
    for pkt in ctx.trace.iter().skip(io.counter as usize) {
        let next = io.counter + 1;
        if stop_before == Some(next) {
            return;
        }
        if ctx.fault_mode {
            if let Some(targets) = ctx.shard_checkpoints.get(&next) {
                for &s in targets {
                    ctx.server.checkpoint_shard(s);
                }
            }
            if let Some(targets) = ctx.shard_restarts.get(&next) {
                for &s in targets {
                    let started = Instant::now();
                    let stats = ctx.server.restart_shard(s);
                    ctx.telemetry.event(EventKind::ShardRestart {
                        shard: s as u32,
                        ops_replayed: stats.replayed_ops as u64,
                    });
                    shard_recoveries.push(ShardRecovery {
                        shard: s,
                        at_counter: next,
                        restored_from_checkpoint: stats.restored_from_checkpoint,
                        replayed_ops: stats.replayed_ops,
                        recovery_wall: started.elapsed(),
                    });
                }
            }
        }
        io.counter += 1;
        let counter = io.counter;
        if let Some(scale) = ctx.scale {
            if counter == scale.first_counter {
                ctx.telemetry.event(EventKind::ScaleCut {
                    vertex: scale.vertex.0,
                    at_counter: counter,
                });
            }
        }
        let clock = Clock::with_root(0, counter);
        let now_ns = ctx.t0.elapsed().as_nanos() as u64;
        ctx.stamps[(counter - 1) as usize].store(now_ns, Ordering::Relaxed);
        // Span epoch: the root "lets go" of the packet at injection.
        if let Some(slot) = ctx.telemetry.hop_slot(counter) {
            slot.store(now_ns, Ordering::Relaxed);
        }
        let mut tp = TaggedPacket::new(pkt.clone(), clock);
        // Flow-sampled causal tracing: tag before the packet-log insert so
        // replayed copies carry the tag too.
        if ctx.telemetry.tracer.is_some() && flow_sampled(pkt.flow_key(), ctx.trace_ppm) {
            tp.trace = Some(TraceTag::new(counter));
            if ctx.inject_spans {
                ctx.telemetry.trace_span(SpanEvent {
                    trace_id: counter,
                    lane: TraceLane::Root,
                    kind: SpanKind::Inject,
                    t_ns: now_ns,
                    dur_ns: 0,
                });
            }
        }
        if ctx.fault_mode {
            if !ctx.logs.root().insert(tp.clone()) {
                // Buffer-bloat guard (§5): a full log rejects the packet
                // instead of queueing without bound.
                continue;
            }
            if ctx.reinject_set.contains(&counter) {
                io.reinject_buf.push(tp.clone());
            }
        }
        route_to_entries(ctx, io, &tp);
    }
}

/// Route one stamped packet to the entry instances through the live rings.
fn route_to_entries(ctx: &RootShared<'_>, io: &mut RootIo, tp: &TaggedPacket) {
    for entry in ctx.entries {
        let idx = ctx.splitters[entry].instance_for(&tp.packet, tp.clock);
        let links = io.outs.get_mut(entry).expect("entry links");
        links[idx].push(tp.clone(), ctx.batch);
    }
}

/// Re-injection drill (saved logged packets sent a second time, unmarked:
/// downstream queue suppression or the sink's duplicate accounting must
/// absorb them) plus the final flush/close of the live rings. Run by
/// whichever thread finishes injection — the root on a healthy run, the
/// standby after a takeover. Returns the number of re-injected packets.
fn finish_injection(ctx: &RootShared<'_>, io: &mut RootIo) -> u64 {
    let mut reinjected = 0u64;
    let buffered: Vec<TaggedPacket> = io.reinject_buf.drain(..).collect();
    for tp in buffered {
        route_to_entries(ctx, io, &tp);
        reinjected += 1;
    }
    for links in io.outs.values_mut() {
        for link in links {
            link.flush();
            link.producer.close();
        }
    }
    reinjected
}

/// Body of one NF instance thread (also used for failover replacements, with
/// `replacement = true`: commit publication is then gated until the replay
/// rings drain, because an inherited watermark only becomes true again once
/// the replayed packets have been re-flushed downstream).
pub(crate) fn run_instance(
    mut plan: InstancePlan,
    mut inputs: Vec<InputRing>,
    mut outs: HashMap<VertexId, Vec<OutLink>>,
    mut sink_link: Option<OutLink>,
    shared: Arc<EngineShared>,
    mut kill: Option<KillSwitch>,
    replacement: bool,
) -> InstanceResult {
    // Span state: on-path instances time queue wait, service and store RTT
    // per packet; the store handle below feeds the same per-vertex
    // histograms. Off-path instances consume copies outside the delivery
    // path, so timing them would break the decomposition's telescoping.
    let spans = shared.telemetry.config.spans && !plan.off_path;
    let stage: Arc<VertexStageMetrics> = shared
        .telemetry
        .stages
        .get(&plan.vertex)
        .cloned()
        .unwrap_or_default();
    let pending_store_ns = Arc::new(AtomicU64::new(0));

    // The client is constructed *inside* the thread: it is deliberately not
    // Send (the simulator backend is single-threaded); only the store handle
    // crosses the thread boundary.
    let handle: Box<dyn chc_core::StateHandle> = if spans {
        Box::new(TimedHandle {
            inner: Arc::clone(&shared.server),
            store_hist: Arc::clone(&stage),
            pending_ns: Arc::clone(&pending_store_ns),
        })
    } else {
        Box::new(Arc::clone(&shared.server))
    };
    let mut client = StateClient::new(
        plan.vertex,
        plan.instance,
        handle,
        shared.config.mode,
        shared.config.costs,
        &plan.objects,
    );
    client.set_recovery_logging(shared.record_logs);
    client.set_clock_tagging(shared.clock_tags);
    if shared.write_behind {
        client.set_write_behind(true, shared.store_batch);
    }

    let my_inbox = Arc::clone(&shared.inboxes[&plan.instance]);
    let mut result = InstanceResult {
        vertex: plan.vertex,
        instance: plan.instance,
        processed: 0,
        dropped_by_nf: 0,
        suppressed_duplicates: 0,
        alerts: Vec::new(),
        batches_in: 0,
        replay_egress_gated: 0,
        failed: false,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(shared.batch);
    let mut seen: HashSet<Clock> = HashSet::new();
    let mut killed_at_clock = 0u64;
    let mut idle_streak = 0u32;
    let tracing = shared.telemetry.tracer.is_some();
    let lane = TraceLane::Vertex {
        vertex: plan.vertex.0,
        instance: plan.instance.0 as u64,
    };

    'run: loop {
        // Store callbacks keep read-heavy cached objects fresh (Table 1); the
        // rate is low, so one drain per wake-up is plenty.
        {
            let mut inbox = my_inbox.lock().unwrap_or_else(|e| e.into_inner());
            for (key, value) in inbox.drain(..) {
                client.handle_callback(&key, value);
            }
        }

        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.rx.pop_batch(&mut work, shared.batch);
            if n == 0 {
                continue;
            }
            if let Some(s) = &shared.telemetry.sentinel {
                s.ledger.ring_popped.add(n as u64);
            }
            moved += n;
            result.batches_in += 1;
            let live = !input.replay;
            // One clock read per packet: the batch pop time serves as the
            // first packet's ingress, and each packet's egress read doubles
            // as the next packet's ingress (the instance starts packet i+1
            // the moment it lets go of packet i, so the chained stamp is
            // exact, not an approximation).
            let mut prev_t = if spans && live {
                shared.telemetry.now_ns()
            } else {
                0
            };
            for (pos, tp) in work.drain(..).enumerate() {
                if live {
                    // Fail-stop trigger: die *before* processing the packet.
                    // Everything still queued (this batch's tail included)
                    // stays in flight for the replacement; the already-popped
                    // remainder of *this* batch dies with the instance and is
                    // booked as kill-lost so conservation still closes.
                    if let Some(k) = &kill {
                        if tp.clock.counter() >= k.at_counter {
                            killed_at_clock = tp.clock.counter();
                            result.failed = true;
                            if let Some(s) = &shared.telemetry.sentinel {
                                s.ledger.kill_lost.add((n - pos) as u64);
                            }
                            // Every packet processed before the kill must
                            // have its store effects applied, exactly as on
                            // the per-op path — the buffer is part of the
                            // process image and would otherwise die here.
                            drain_store_buffer(&mut client, &stage, &shared);
                            break 'run;
                        }
                    }
                    input.last_counter = input.last_counter.max(tp.clock.counter());
                }
                let traced = if tracing {
                    tp.trace.map(|t| t.id)
                } else {
                    None
                };
                // Duplicate suppression at the input queue (§5.3): the clock
                // is unique per input packet, so a repeat is always a replay
                // or re-injection; it is counted, never silently processed.
                if shared.dedup && !seen.insert(tp.clock) {
                    result.suppressed_duplicates += 1;
                    if let Some(id) = traced {
                        // Live suppressions reuse the chained stamp: a fresh
                        // clock read could land past the next service span's
                        // begin and break the lane's timestamp order.
                        let t_ns = if spans && live {
                            prev_t
                        } else {
                            shared.telemetry.now_ns()
                        };
                        shared.telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane,
                            kind: SpanKind::Suppress,
                            t_ns,
                            dur_ns: 0,
                        });
                    }
                    continue;
                }
                // Span timing covers live traffic only: replayed packets'
                // hop stamps are stale, and their processing is recovery
                // work, not steady-state service time.
                let span_slot = if spans && live {
                    shared.telemetry.hop_slot(tp.clock.counter())
                } else {
                    None
                };
                let mut queue_wait = 0u64;
                let t_in = span_slot.map(|slot| {
                    queue_wait = prev_t.saturating_sub(slot.load(Ordering::Relaxed));
                    stage.queue_ns.record(queue_wait);
                    pending_store_ns.store(0, Ordering::Relaxed);
                    prev_t
                });
                // Replayed traced packets still get a service span (marked
                // replay) so a trace shows the killed vertex's packets being
                // re-processed by the replacement; it never feeds the stage
                // histograms.
                let replay_t_in = if traced.is_some() && !live {
                    pending_store_ns.store(0, Ordering::Relaxed);
                    Some(shared.telemetry.now_ns())
                } else {
                    None
                };
                process_packet(
                    tp,
                    &mut plan,
                    &mut client,
                    &shared,
                    &mut outs,
                    &mut sink_link,
                    &mut result,
                );
                if let (Some(slot), Some(t_in)) = (span_slot, t_in) {
                    let t_out = shared.telemetry.now_ns();
                    let store_ns = pending_store_ns.swap(0, Ordering::Relaxed);
                    stage.store_ns.record(store_ns);
                    stage
                        .service_ns
                        .record(t_out.saturating_sub(t_in).saturating_sub(store_ns));
                    if let Some(id) = traced {
                        shared.telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane,
                            kind: SpanKind::Service {
                                queue_wait_ns: queue_wait,
                                store_ns,
                                replay: false,
                            },
                            t_ns: t_in,
                            dur_ns: t_out.saturating_sub(t_in),
                        });
                    }
                    // This stage lets go: the next hop measures its queue
                    // wait from here, and so does this stage's next packet.
                    slot.store(t_out, Ordering::Relaxed);
                    prev_t = t_out;
                } else if let (Some(id), Some(t_in)) = (traced, replay_t_in) {
                    let t_out = shared.telemetry.now_ns();
                    let store_ns = pending_store_ns.swap(0, Ordering::Relaxed);
                    shared.telemetry.trace_span(SpanEvent {
                        trace_id: id,
                        lane,
                        kind: SpanKind::Service {
                            queue_wait_ns: 0,
                            store_ns,
                            replay: true,
                        },
                        t_ns: t_in,
                        dur_ns: t_out.saturating_sub(t_in),
                    });
                }
            }
        }

        if moved > 0 {
            idle_streak = 0;
            // Ring batch boundary: land the batch's buffered store ops as
            // one batched apply. In fault mode this must precede the
            // watermark (commit implies durable — a confirmed packet's
            // store effects survive any later crash); outside fault mode it
            // bounds write-behind latency to one wake-up.
            drain_store_buffer(&mut client, &stage, &shared);
            if shared.fault_mode {
                // Commit implies durable: flush the batched outputs before
                // publishing the watermark, so a crash after publication can
                // never lose a confirmed packet's effects.
                flush_all(&mut outs, &mut sink_link);
                publish_watermark(&shared, &plan, &mut inputs, replacement);
            }
        } else {
            // Idle: release buffered output so downstream instances are not
            // starved by a partially filled batch, then check for shutdown.
            drain_store_buffer(&mut client, &stage, &shared);
            flush_all(&mut outs, &mut sink_link);
            if kill.is_some()
                && inputs
                    .iter_mut()
                    .filter(|r| !r.replay)
                    .all(|r| r.rx.is_exhausted())
            {
                // The live stream ended without reaching the trigger: this
                // kill can no longer fire. Dropping the switch lets the
                // supervisor observe a disconnected channel and wind down.
                kill = None;
            }
            if inputs.iter_mut().all(|r| r.rx.is_exhausted()) {
                break;
            }
            idle_streak += 1;
            idle_wait(shared.ring_wait, idle_streak, &mut inputs);
        }
    }

    if result.failed {
        // Fail-stop: unflushed output batches die with the process; the
        // wiring goes to the supervisor for the replacement thread.
        for links in outs.values_mut() {
            for link in links {
                link.buf.clear();
            }
        }
        if let Some(link) = &mut sink_link {
            link.buf.clear();
        }
        let k = kill.take().expect("fail-stop without a kill switch");
        // Journal the death *before* notifying the supervisor, so the kill
        // event is causally ordered before every failover event.
        shared.telemetry.event(EventKind::InstanceKilled {
            vertex: plan.vertex.0,
            index: k.index as u32,
            instance: plan.instance.0 as u64,
            clock: killed_at_clock,
        });
        let _ = k.tx.send(DyingInstance {
            slot: k.slot,
            inputs,
            outs,
            sink_link,
        });
        return result;
    }

    // Healthy shutdown: whatever the last (partial) batch buffered must
    // reach the store before the streams close and the final watermark.
    drain_store_buffer(&mut client, &stage, &shared);
    for links in outs.values_mut() {
        for link in links {
            link.flush();
            link.producer.close();
        }
    }
    if let Some(link) = &mut sink_link {
        link.flush();
        link.producer.close();
    }
    if shared.fault_mode {
        publish_watermark(&shared, &plan, &mut inputs, replacement);
    }
    result
}

/// One iteration of the idle backoff on a thread whose input rings are all
/// empty. `Spin` and `Yield` are the classic busy policies; `Park` yields a
/// few times (covering the common sub-microsecond gap between batches),
/// then blocks on the first still-open ring until its producer pushes or
/// closes. The park timeout is the safety net for items arriving on *other*
/// rings while parked — the wake only covers the parked ring — and for any
/// protocol bug; on an oversubscribed host a bounded oversleep beats the
/// scheduler churn of thousands of yielding wake-ups per second.
fn idle_wait(policy: RingWait, streak: u32, inputs: &mut [InputRing]) {
    match policy {
        RingWait::Spin => std::hint::spin_loop(),
        RingWait::Yield => thread::yield_now(),
        RingWait::Park => {
            if streak < 4 {
                thread::yield_now();
            } else if let Some(r) = inputs.iter_mut().find(|r| r.rx.has_open_producer()) {
                // `park_if_empty` refuses (returns immediately) if items
                // landed between our empty poll and the arm — the caller
                // just loops and pops them.
                r.rx.park_if_empty(Duration::from_micros(200));
            }
        }
    }
}

/// Drain the client's write-behind buffer (one batched store apply) and
/// forward any callbacks the drained ops produced. Called at ring batch
/// boundaries and before every barrier the buffered ops must not cross —
/// commit-watermark publication, the fail-stop kill point, and shutdown.
/// (Blocking reads/pops, exclusivity loss and per-flow flushes drain inside
/// [`StateClient`] itself.) Records the achieved batch depth so the
/// telemetry report shows how well the fast path coalesces.
fn drain_store_buffer(client: &mut StateClient, stage: &VertexStageMetrics, shared: &EngineShared) {
    let drained = client.drain_write_behind();
    if drained == 0 {
        return;
    }
    stage.flush_depth.record(drained as u64);
    for (other, key, value) in client.take_pending_callbacks() {
        if let Some(inbox) = shared.inboxes.get(&other) {
            inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((key, value));
        }
    }
}

fn flush_all(outs: &mut HashMap<VertexId, Vec<OutLink>>, sink_link: &mut Option<OutLink>) {
    for links in outs.values_mut() {
        for link in links {
            link.flush();
        }
    }
    if let Some(link) = sink_link {
        link.flush();
    }
}

/// Publish this instance's commit watermark: the highest counter such that
/// every live packet with a smaller-or-equal counter routed here has been
/// processed and flushed. Each live ring delivers counters monotonically, so
/// the minimum of the per-ring maxima is exactly that frontier. Replay rings
/// are excluded (their traffic is redundant by construction); a replacement
/// stays silent until its replay ring drains, after which its inherited
/// watermark is true again because every logged packet has been re-flushed.
fn publish_watermark(
    shared: &EngineShared,
    plan: &InstancePlan,
    inputs: &mut [InputRing],
    replacement: bool,
) {
    if plan.off_path {
        return;
    }
    if replacement && inputs.iter_mut().any(|r| r.replay && !r.rx.is_exhausted()) {
        return;
    }
    let wm = inputs
        .iter()
        .filter(|r| !r.replay)
        .map(|r| r.last_counter)
        .min()
        .unwrap_or(0);
    if wm > 0 {
        shared.server.publish_commit(plan.instance, wm);
    }
}

/// Run one packet through the NF and forward the outcome.
fn process_packet(
    mut tp: TaggedPacket,
    plan: &mut InstancePlan,
    client: &mut StateClient,
    shared: &EngineShared,
    outs: &mut HashMap<VertexId, Vec<OutLink>>,
    sink_link: &mut Option<OutLink>,
    result: &mut InstanceResult,
) {
    let now = VirtualTime::from_nanos(tp.packet.arrival_ns);
    let mut ctx = NfContext::new(client, tp.clock, now);
    let action = plan.nf.process(&tp.packet, &mut ctx);
    let alerts = ctx.take_alerts();
    for alert in alerts {
        result.alerts.push((tp.clock, alert));
    }
    result.processed += 1;

    // The virtual cost model does not apply on real threads; wall-clock time
    // *is* the cost. The accumulators still need draining.
    let _ = client.take_charge();
    let _ = client.take_packet_tokens();
    for (other, key, value) in client.take_pending_callbacks() {
        if let Some(inbox) = shared.inboxes.get(&other) {
            inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((key, value));
        }
    }

    match action {
        chc_core::Action::Drop => {
            result.dropped_by_nf += 1;
        }
        chc_core::Action::Forward(out_pkt) => {
            tp.packet = out_pkt;
            if plan.off_path {
                // Off-path NFs consume copies; nothing flows onward.
                return;
            }
            // FTMB-style egress logging: this vertex is the on-path upstream
            // of some killed non-entry vertex, so its live output stream is
            // that kill's replay source. The XOR delete token is folded into
            // the envelope *before* logging and forwarding, so the logged
            // copy and the delivered copy carry identical vectors and the
            // sink's fold cancels the ledger entry exactly (Figure 6).
            // Replayed packets are not re-logged (their tokens are already
            // accounted; re-folding would un-cancel them).
            if plan.log_egress && tp.replay_for.is_none() {
                let token = delete_token(plan.instance, tp.clock.counter());
                tp.absorb_update_token(token);
                if let Some(ledger) = &shared.ledger {
                    ledger.fold(tp.clock.counter(), token);
                }
                if let Some(mut log) = shared.logs.vertex(plan.vertex) {
                    log.insert(tp.clone());
                }
            }
            if plan.is_tail {
                // A tail replacement bounds its re-delivery window with the
                // XOR ledger: a replayed packet whose clock the sink already
                // confirmed is processed for its (store-deduped) state
                // effects but not re-emitted to the end host.
                let gated = tp.replay_for.is_some()
                    && shared
                        .ledger
                        .as_ref()
                        .is_some_and(|l| l.confirmed(tp.clock.counter()));
                if gated {
                    result.replay_egress_gated += 1;
                } else if let Some(link) = sink_link {
                    link.push(tp.clone(), shared.batch);
                }
            }
            for d in &plan.downstream {
                let Some(splitter) = shared.splitters.get(d) else {
                    continue;
                };
                let idx = splitter.instance_for(&tp.packet, tp.clock);
                if let Some(links) = outs.get_mut(d) {
                    links[idx].push(tp.clone(), shared.batch);
                }
            }
        }
    }
}

/// What the sink thread hands back.
struct SinkResult {
    delivered_ids: Vec<PacketId>,
    /// Every packet popped from the sink rings, replay-suppressed included
    /// (the conservation ledger classifies each pop exactly once).
    arrivals: u64,
    duplicates: u64,
    duplicate_clocks: Vec<Clock>,
    /// Replay-marked copies absorbed because their clock already delivered —
    /// the expected, bounded shadow of replay recovery, kept out of the
    /// duplicate accounting entirely.
    replay_window_suppressed: u64,
    bytes: u64,
    latency: StreamingHistogram,
    finished_at: std::time::Duration,
}

/// Body of the sink thread. With `commit` set (fault mode), the sink also
/// publishes its delivery frontier so the root's packet log can be
/// truncated: a packet is confirmed only once the *end host* has it.
#[allow(clippy::too_many_arguments)]
fn run_sink(
    mut inputs: Vec<InputRing>,
    stamps: Arc<Vec<AtomicU64>>,
    t0: Instant,
    batch: usize,
    commit: Option<Arc<StoreServer>>,
    ledger: Option<Arc<XorDeleteLedger>>,
    telemetry: Arc<RunTelemetry>,
    mut flow_order: Option<FlowOrderChecker>,
    ring_wait: RingWait,
) -> SinkResult {
    let spans = telemetry.config.spans;
    let tracing = telemetry.tracer.is_some();
    let mut seen: HashSet<Clock> = HashSet::new();
    let mut out = SinkResult {
        delivered_ids: Vec::new(),
        arrivals: 0,
        duplicates: 0,
        duplicate_clocks: Vec::new(),
        replay_window_suppressed: 0,
        bytes: 0,
        latency: StreamingHistogram::new(),
        finished_at: std::time::Duration::ZERO,
    };
    let mut work: Vec<TaggedPacket> = Vec::with_capacity(batch);
    let mut idle_streak = 0u32;
    loop {
        let mut moved = 0usize;
        for input in &mut inputs {
            work.clear();
            let n = input.rx.pop_batch(&mut work, batch);
            if n == 0 {
                continue;
            }
            if let Some(s) = &telemetry.sentinel {
                s.ledger.ring_popped.add(n as u64);
            }
            moved += n;
            let now_ns = t0.elapsed().as_nanos() as u64;
            for tp in work.drain(..) {
                input.last_counter = input.last_counter.max(tp.clock.counter());
                out.arrivals += 1;
                let traced = if tracing {
                    tp.trace.map(|t| t.id)
                } else {
                    None
                };
                if !seen.insert(tp.clock) {
                    if tp.replay_for.is_some() {
                        // The bounded re-delivery window of replay-based
                        // recovery: an expected shadow copy, absorbed and
                        // counted apart from the duplicate accounting — it
                        // never reaches `duplicate_clocks`.
                        out.replay_window_suppressed += 1;
                    } else {
                        out.delivered_ids.push(tp.packet.id);
                        out.duplicates += 1;
                        out.duplicate_clocks.push(tp.clock);
                    }
                    if let Some(id) = traced {
                        telemetry.trace_span(SpanEvent {
                            trace_id: id,
                            lane: TraceLane::Sink,
                            kind: SpanKind::Deliver {
                                wait_ns: 0,
                                duplicate: true,
                            },
                            t_ns: now_ns,
                            dur_ns: 0,
                        });
                    }
                    continue;
                }
                out.delivered_ids.push(tp.packet.id);
                out.bytes += tp.packet.len as u64;
                let counter = tp.clock.counter();
                if let Some(l) = &ledger {
                    // First (and only) delivery of this clock: cancel every
                    // logged copy's token and mark the counter confirmed —
                    // this is what lets tail replacements gate re-emission
                    // and the supervisor delete individual log entries.
                    l.fold(counter, tp.xor_vector);
                    l.mark_delivered(counter);
                }
                let mut wait_ns = 0u64;
                if counter >= 1 && (counter as usize) <= stamps.len() {
                    let stamped = stamps[(counter - 1) as usize].load(Ordering::Relaxed);
                    out.latency.record(now_ns.saturating_sub(stamped));
                    if spans {
                        // Final hop: last vertex egress → sink arrival,
                        // using the same arrival time as the e2e sample so
                        // the decomposition telescopes exactly.
                        if let Some(slot) = telemetry.hop_slot(counter) {
                            wait_ns = now_ns.saturating_sub(slot.load(Ordering::Relaxed));
                            telemetry.sink_wait.record(wait_ns);
                        }
                    }
                }
                if let Some(id) = traced {
                    telemetry.trace_span(SpanEvent {
                        trace_id: id,
                        lane: TraceLane::Sink,
                        kind: SpanKind::Deliver {
                            wait_ns,
                            duplicate: false,
                        },
                        t_ns: now_ns,
                        dur_ns: 0,
                    });
                }
                // Per-flow clock-order invariant, first-copy live arrivals
                // only: replayed copies are recovery traffic and may
                // legitimately arrive late.
                if let Some(checker) = &mut flow_order {
                    if tp.replay_for.is_none() {
                        if let Some(v) = checker.observe(tp.packet.flow_key().0, counter, now_ns) {
                            telemetry.violation(v);
                        }
                    }
                }
            }
        }
        if moved > 0 {
            idle_streak = 0;
            if let Some(server) = &commit {
                let wm = inputs.iter().map(|r| r.last_counter).min().unwrap_or(0);
                if wm > 0 {
                    server.publish_commit(SINK_COMMIT_SOURCE, wm);
                }
            }
        } else {
            if inputs.iter_mut().all(|r| r.rx.is_exhausted()) {
                break;
            }
            idle_streak += 1;
            idle_wait(ring_wait, idle_streak, &mut inputs);
        }
    }
    if let (Some(checker), Some(state)) = (&flow_order, &telemetry.sentinel) {
        state
            .deliveries_checked
            .store(checker.checked, Ordering::Relaxed);
    }
    out.finished_at = t0.elapsed();
    out
}
