//! Telemetry wiring for the real-thread engine: per-stage span metrics on
//! the packet path, a store-RTT-timing state handle, the gauge monitor
//! thread, and the telemetry section of the final report.
//!
//! ## Span points and the decomposition identity
//!
//! Per-packet timing uses a single shared `last_hop` array indexed by the
//! packet's clock counter, the same idiom as the engine's root-stamp array.
//! The root writes the injection time; each on-path instance reads it as
//! "when the previous stage let go of this packet", measures its own queue
//! wait and service time, and overwrites it with its egress time; the sink
//! reads the last value as its final-hop wait. The hops therefore
//! *telescope*: summed over the chain,
//!
//! ```text
//! mean(e2e) ≈ Σ_vertex (queue + service + store) + sink_wait
//! ```
//!
//! holds exactly in the mean (up to clock-read jitter), which is the
//! consistency check the benchmark and tests assert. Store RTT is measured
//! inside [`TimedHandle`] and *subtracted* from the enclosing service time,
//! so the three per-vertex components are disjoint.
//!
//! Writes to `last_hop` are relaxed: each counter's slot is handed from
//! stage to stage through the SPSC rings' release/acquire edges, exactly
//! like the root-stamp array the sink already reads.

use crate::config::TelemetryConfig;
use crate::spsc::RingProbe;
use chc_core::{StateHandle, VertexLogs};
use chc_store::{Clock, InstanceId, StateKey, StoreServer, Value, VertexId};
use chc_telemetry::{
    ConservationLedger, Counter, Event, EventJournal, EventKind, GaugeSeries, HistSummary,
    Sentinel, SentinelReport, SpanEvent, StreamingHistogram, TelemetrySeries, TraceCollector,
    Violation,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-vertex stage histograms, shared by every instance of the vertex
/// (recording is `&self` and lock-free, so sharing costs nothing).
#[derive(Debug, Default)]
pub(crate) struct VertexStageMetrics {
    /// Wait between the previous stage's egress and this vertex's ingress
    /// (ring residency + batching delay).
    pub(crate) queue_ns: StreamingHistogram,
    /// NF processing time, store round trips excluded.
    pub(crate) service_ns: StreamingHistogram,
    /// Synchronous store RTT accumulated while processing one packet.
    pub(crate) store_ns: StreamingHistogram,
    /// Ops per write-behind drain (the store fast path's batch size as
    /// actually achieved; empty when write-behind is off).
    pub(crate) flush_depth: StreamingHistogram,
}

/// Shared state of the invariant sentinel: the copy-conservation ledger the
/// packet path feeds, the journal checker the sentinel thread polls, and
/// the violations collected from every checker.
pub(crate) struct SentinelState {
    /// Ring push/pop/kill-loss counters (see [`ConservationLedger`]).
    pub(crate) ledger: ConservationLedger,
    /// Every violation detected so far, in detection order.
    pub(crate) violations: Mutex<Vec<Violation>>,
    /// Journal checker plus the next journal sequence number it will poll.
    /// One lock serves the sentinel thread and the shutdown drain.
    pub(crate) checker: Mutex<(Sentinel, u64)>,
    /// Sink arrivals put through the per-flow order checker.
    pub(crate) deliveries_checked: AtomicU64,
}

impl SentinelState {
    pub(crate) fn new() -> SentinelState {
        SentinelState {
            ledger: ConservationLedger::new(),
            violations: Mutex::new(Vec::new()),
            checker: Mutex::new((Sentinel::new(), 0)),
            deliveries_checked: AtomicU64::new(0),
        }
    }
}

/// Run-wide telemetry state shared by every engine thread.
pub(crate) struct RunTelemetry {
    /// Copy of the run's telemetry switches.
    pub(crate) config: TelemetryConfig,
    /// Run epoch; all event and series timestamps are relative to this.
    pub(crate) t0: Instant,
    /// Per-counter "previous stage let go at" stamp (ns since `t0`),
    /// indexed by `clock.counter() - 1`. Empty when spans are off.
    pub(crate) last_hop: Vec<AtomicU64>,
    /// Stage histograms per vertex.
    pub(crate) stages: HashMap<VertexId, Arc<VertexStageMetrics>>,
    /// Final hop: last vertex egress → sink arrival.
    pub(crate) sink_wait: StreamingHistogram,
    /// Control-plane event journal, when enabled.
    pub(crate) journal: Option<EventJournal>,
    /// Packets replayed so far across all failovers (monitor gauge).
    pub(crate) replay_progress: Counter,
    /// Causal-trace span collector, when flow-sampled tracing is on.
    pub(crate) tracer: Option<TraceCollector>,
    /// Invariant-sentinel state, when the sentinel is on. `Arc` so the
    /// ledger can be shared with every [`crate::engine::OutLink`].
    pub(crate) sentinel: Option<Arc<SentinelState>>,
}

impl RunTelemetry {
    pub(crate) fn new(
        config: TelemetryConfig,
        t0: Instant,
        trace_len: usize,
        vertices: impl IntoIterator<Item = VertexId>,
        sentinel: Option<Arc<SentinelState>>,
    ) -> RunTelemetry {
        let slots = if config.spans { trace_len } else { 0 };
        RunTelemetry {
            config,
            t0,
            last_hop: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            stages: vertices
                .into_iter()
                .map(|v| (v, Arc::new(VertexStageMetrics::default())))
                .collect(),
            sink_wait: StreamingHistogram::new(),
            journal: config.journal.then(EventJournal::new),
            replay_progress: Counter::new(),
            tracer: config.tracing_on().then(TraceCollector::new),
            sentinel,
        }
    }

    /// Nanoseconds since the run epoch.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Record a journal event (no-op when the journal is off).
    pub(crate) fn event(&self, kind: EventKind) {
        if let Some(j) = &self.journal {
            j.record(self.now_ns(), kind);
        }
    }

    /// Record a causal-trace span (no-op when tracing is off).
    #[inline]
    pub(crate) fn trace_span(&self, span: SpanEvent) {
        if let Some(t) = &self.tracer {
            t.record(span);
        }
    }

    /// Record an invariant violation: journaled as an `invariant_violation`
    /// event (when the journal is on) and collected for the run report.
    pub(crate) fn violation(&self, v: Violation) {
        if let Some(state) = &self.sentinel {
            self.event(EventKind::InvariantViolation {
                code: v.invariant.code(),
                observed: v.observed,
                expected: v.expected,
            });
            state
                .violations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(v);
        }
    }

    /// The `last_hop` slot for a clock counter, when spans are on and the
    /// counter lies within the trace (replay traffic reuses live counters,
    /// so the bound always holds for live packets).
    #[inline]
    pub(crate) fn hop_slot(&self, counter: u64) -> Option<&AtomicU64> {
        if counter >= 1 {
            self.last_hop.get((counter - 1) as usize)
        } else {
            None
        }
    }
}

/// A [`StateHandle`] that times every synchronous store operation.
///
/// RTT samples go to the owning vertex's `store_ns` histogram; the same
/// nanoseconds also accumulate into `pending_ns`, which the instance thread
/// swaps out per packet to subtract store time from its service time.
pub(crate) struct TimedHandle {
    pub(crate) inner: Arc<StoreServer>,
    pub(crate) store_hist: Arc<VertexStageMetrics>,
    pub(crate) pending_ns: Arc<AtomicU64>,
}

impl StateHandle for TimedHandle {
    fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &chc_store::Operation,
        clock: Option<Clock>,
    ) -> Result<chc_store::store::ApplyResult, chc_store::StoreError> {
        let started = Instant::now();
        let result = self.inner.apply(requester, key, op, clock);
        let ns = started.elapsed().as_nanos() as u64;
        self.store_hist.store_ns.record(ns);
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
        result
    }

    // Without this override the trait's default would fall back to per-op
    // `apply` — timed, but defeating the one-lock-per-shard batching the
    // write-behind drain exists for.
    fn apply_batch(
        &self,
        requester: InstanceId,
        ops: &[(StateKey, chc_store::Operation, Option<Clock>)],
    ) -> Vec<Result<chc_store::store::ApplyResult, chc_store::StoreError>> {
        let started = Instant::now();
        let results = self.inner.apply_batch(requester, ops);
        let ns = started.elapsed().as_nanos() as u64;
        self.store_hist.store_ns.record(ns);
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
        results
    }

    fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        self.inner.register_callback(key, instance);
    }

    fn release_ownership(
        &self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), chc_store::StoreError> {
        StateHandle::release_ownership(&self.inner, key, instance)
    }

    fn acquire_ownership(
        &self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), chc_store::StoreError> {
        StateHandle::acquire_ownership(&self.inner, key, instance)
    }

    fn owner_of(&self, key: &StateKey) -> Option<InstanceId> {
        StateHandle::owner_of(&self.inner, key)
    }

    fn nondet(&self, clock: Clock, slot: u32, candidate: Value) -> Value {
        StateHandle::nondet(&self.inner, clock, slot, candidate)
    }

    fn ts_snapshot(&self) -> chc_store::TsSnapshot {
        StateHandle::ts_snapshot(&self.inner)
    }

    fn is_failed(&self) -> bool {
        StateHandle::is_failed(&self.inner)
    }
}

/// Everything the monitor thread watches. Built at wiring time on the
/// planning thread; consumed by [`run_monitor`].
pub(crate) struct MonitorTargets {
    /// Labelled ring occupancy probes (`ring.<edge>.depth`).
    pub(crate) rings: Vec<(String, RingProbe)>,
    /// The store, for per-shard op counts.
    pub(crate) server: Arc<StoreServer>,
    /// Shards with journaling on (`shard.<i>.wal_depth`).
    pub(crate) journaled_shards: Vec<usize>,
    /// The engine's packet logs, in fault mode (`rootlog.len`, plus
    /// `vertexlog.len` — total across armed vertex egress logs — when any
    /// vertex is armed).
    pub(crate) log: Option<Arc<VertexLogs>>,
}

/// Body of the monitor thread: samples every gauge at `interval`, always
/// taking one initial sample immediately and one final sample when `stop`
/// is raised, so even a very short run yields at least two points per
/// series. Returns the collected time series.
pub(crate) fn run_monitor(
    targets: MonitorTargets,
    telemetry: Arc<RunTelemetry>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> TelemetrySeries {
    let shard_count = targets.server.shard_count();
    let mut out = TelemetrySeries::new();
    for (label, _) in &targets.rings {
        out.series
            .push(GaugeSeries::new(format!("ring.{label}.depth")));
    }
    let shard_base = out.series.len();
    for s in 0..shard_count {
        out.series
            .push(GaugeSeries::new(format!("shard.{s}.ops_per_sec")));
    }
    let wal_base = out.series.len();
    for s in &targets.journaled_shards {
        out.series
            .push(GaugeSeries::new(format!("shard.{s}.wal_depth")));
    }
    let log_idx = targets.log.is_some().then(|| {
        out.series.push(GaugeSeries::new("rootlog.len"));
        out.series.len() - 1
    });
    let vlog_idx = targets
        .log
        .as_ref()
        .is_some_and(|l| l.armed().next().is_some())
        .then(|| {
            out.series.push(GaugeSeries::new("vertexlog.len"));
            out.series.len() - 1
        });
    // Durable-engine gauges: segment files and on-disk bytes across shards.
    // Only meaningful (and only emitted) on the append-only backend.
    let durable_idx =
        (targets.server.backend_kind() == chc_store::BackendKind::AppendOnly).then(|| {
            out.series.push(GaugeSeries::new("store.segments"));
            out.series.push(GaugeSeries::new("store.durable_bytes"));
            out.series.len() - 2
        });
    out.series.push(GaugeSeries::new("replay.packets"));
    let replay_idx = out.series.len() - 1;

    let mut prev_ops: Vec<u64> = vec![0; shard_count];
    let mut prev_t_ns = 0u64;
    let mut first = true;

    let sample = |out: &mut TelemetrySeries,
                  prev_ops: &mut Vec<u64>,
                  prev_t_ns: &mut u64,
                  first: &mut bool| {
        let t_ns = telemetry.now_ns();
        for (i, (_, probe)) in targets.rings.iter().enumerate() {
            out.series[i].push(t_ns, probe.depth() as f64);
        }
        let ops = targets.server.ops_per_shard();
        let dt_s = (t_ns.saturating_sub(*prev_t_ns)) as f64 / 1e9;
        for (s, &now) in ops.iter().enumerate() {
            let rate = if *first || dt_s <= 0.0 {
                0.0
            } else {
                (now.saturating_sub(prev_ops[s])) as f64 / dt_s
            };
            out.series[shard_base + s].push(t_ns, rate);
        }
        *prev_ops = ops;
        *prev_t_ns = t_ns;
        *first = false;
        for (j, &s) in targets.journaled_shards.iter().enumerate() {
            out.series[wal_base + j].push(t_ns, targets.server.shard_journal_len(s) as f64);
        }
        if let (Some(idx), Some(log)) = (log_idx, &targets.log) {
            out.series[idx].push(t_ns, log.root().len() as f64);
        }
        if let (Some(idx), Some(log)) = (vlog_idx, &targets.log) {
            let len: usize = log
                .armed()
                .filter_map(|v| log.vertex(v).map(|l| l.len()))
                .sum();
            out.series[idx].push(t_ns, len as f64);
        }
        if let Some(idx) = durable_idx {
            out.series[idx].push(t_ns, targets.server.durable_segments() as f64);
            out.series[idx + 1].push(t_ns, targets.server.durable_bytes() as f64);
        }
        out.series[replay_idx].push(t_ns, telemetry.replay_progress.get() as f64);
    };

    sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
    let mut last_sample = Instant::now();
    // Cap the nap so a long cadence cannot delay shutdown by more than
    // ~10ms, but never nap *shorter* than the cadence: waking faster than
    // the sampling rate just preempts the pipeline (on a single-core host
    // every spurious wake-up is a context switch on the hot path).
    let nap = interval.min(Duration::from_millis(10));
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(nap);
        if last_sample.elapsed() >= interval {
            sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
            last_sample = Instant::now();
        }
    }
    sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
    out
}

/// Drain new journal events through the sentinel's streaming checker,
/// recording any violations they expose. Safe to call from the sentinel
/// thread and from the shutdown path — one lock serializes them.
pub(crate) fn drain_sentinel_journal(telemetry: &RunTelemetry) {
    let (Some(state), Some(journal)) = (&telemetry.sentinel, &telemetry.journal) else {
        return;
    };
    let mut guard = state.checker.lock().unwrap_or_else(|e| e.into_inner());
    let (checker, next_seq) = &mut *guard;
    for event in journal.events_since(*next_seq) {
        *next_seq = event.seq + 1;
        for v in checker.observe(&event) {
            telemetry.violation(v);
        }
    }
}

/// Body of the sentinel thread: polls the event journal and feeds it to the
/// streaming invariant checker while the engine runs. Control-plane rate —
/// the per-packet checks (flow order, conservation counters) run in-line on
/// the sink and instance threads, not here. Performs one final drain after
/// `stop` is raised so no event recorded before shutdown is missed.
pub(crate) fn run_sentinel(telemetry: Arc<RunTelemetry>, stop: Arc<AtomicBool>) {
    loop {
        let stopping = stop.load(Ordering::Acquire);
        drain_sentinel_journal(&telemetry);
        if stopping {
            break;
        }
        // Journal events are control-plane-rate (spawns, failover phases,
        // frontier advances), so a coarse poll loses nothing — and on an
        // oversubscribed host every extra wakeup preempts a worker thread,
        // which showed up as measurable throughput overhead at 500µs.
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Run totals the shutdown invariant checks need, harvested after every
/// engine thread has joined.
pub(crate) struct SentinelInputs {
    /// Packets the root injected.
    pub(crate) injected: u64,
    /// Packets deliberately re-injected by the duplicate drill.
    pub(crate) reinjected: u64,
    /// Duplicate clocks the sink observed.
    pub(crate) duplicates: u64,
    /// Copies that arrived at the sink (duplicates included).
    pub(crate) sink_arrivals: u64,
    /// Packets processed by NF instances (failed instances included).
    pub(crate) processed: u64,
    /// Duplicate copies suppressed at input queues.
    pub(crate) suppressed: u64,
    /// True when a fault plan ran (root log checks apply only then).
    pub(crate) fault_mode: bool,
    /// Final commit frontier (0 outside fault mode).
    pub(crate) frontier: u64,
    /// Root log depth after the final truncation.
    pub(crate) log_final_len: u64,
    /// Root log high-water mark.
    pub(crate) log_high_water: u64,
    /// Root log configured capacity.
    pub(crate) log_capacity: u64,
    /// Largest high-water mark over the per-vertex egress logs (0 when no
    /// vertex was armed; shares the root log's capacity bound).
    pub(crate) vertex_log_high_water: u64,
    /// Delivered clock counters whose XOR delete-token residue never
    /// cancelled (0 when the ledger was off or the protocol closed).
    pub(crate) xor_dirty: u64,
}

/// Shutdown pass of the invariant sentinel: drain the journal tail (the
/// final frontier truncation happens after the worker scope ends, so the
/// sentinel thread never sees it), then check the whole-run invariants that
/// only close at shutdown — packet conservation, exactly-once delivery, the
/// root-log bound, and failover completion. Returns the sentinel section of
/// the report, or `None` when the sentinel was off.
pub(crate) fn finalize_sentinel(
    telemetry: &RunTelemetry,
    inputs: &SentinelInputs,
) -> Option<SentinelReport> {
    let state = telemetry.sentinel.as_ref()?;
    drain_sentinel_journal(telemetry);
    let t_ns = telemetry.now_ns();

    let (unfinished, root_pending) = {
        let guard = state.checker.lock().unwrap_or_else(|e| e.into_inner());
        (
            guard.0.unfinished_failovers(),
            guard.0.root_handoff_pending(),
        )
    };
    if root_pending {
        telemetry.violation(Violation {
            invariant: chc_telemetry::InvariantKind::RootHandoff,
            t_ns,
            observed: 1,
            expected: 0,
            detail: "root was killed but no standby ever took over injection".into(),
        });
    }
    for (vertex, index) in unfinished {
        telemetry.violation(Violation {
            invariant: chc_telemetry::InvariantKind::FailoverPhase,
            t_ns,
            observed: vertex as u64,
            expected: index as u64,
            detail: format!("vertex {vertex} index {index}: failover never reached failover_end"),
        });
    }

    let pushed = state.ledger.ring_pushed.get();
    let popped = state.ledger.ring_popped.get();
    let kill_lost = state.ledger.kill_lost.get();
    if pushed != popped {
        telemetry.violation(Violation {
            invariant: chc_telemetry::InvariantKind::Conservation,
            t_ns,
            observed: popped,
            expected: pushed,
            detail: format!(
                "{} copies pushed into rings but {popped} popped: {} still in flight at shutdown",
                pushed,
                pushed as i64 - popped as i64
            ),
        });
    }
    let accounted = inputs.processed + inputs.suppressed + kill_lost + inputs.sink_arrivals;
    if popped != accounted {
        telemetry.violation(Violation {
            invariant: chc_telemetry::InvariantKind::Conservation,
            t_ns,
            observed: accounted,
            expected: popped,
            detail: format!(
                "popped copies unaccounted: {popped} popped vs {} processed + {} suppressed \
                 + {kill_lost} kill-lost + {} sink arrivals",
                inputs.processed, inputs.suppressed, inputs.sink_arrivals
            ),
        });
    }

    if inputs.duplicates > 0 && inputs.reinjected == 0 {
        telemetry.violation(Violation {
            invariant: chc_telemetry::InvariantKind::ExactlyOnce,
            t_ns,
            observed: inputs.duplicates,
            expected: 0,
            detail: format!(
                "{} duplicate clocks reached the sink without a re-injection drill",
                inputs.duplicates
            ),
        });
    }

    if inputs.fault_mode {
        let bound = inputs.injected.saturating_sub(inputs.frontier);
        if inputs.log_final_len > bound {
            telemetry.violation(Violation {
                invariant: chc_telemetry::InvariantKind::RootlogBound,
                t_ns,
                observed: inputs.log_final_len,
                expected: bound,
                detail: format!(
                    "root log holds {} entries, above the unconfirmed suffix \
                     injected {} - frontier {}",
                    inputs.log_final_len, inputs.injected, inputs.frontier
                ),
            });
        }
        if inputs.log_high_water > inputs.log_capacity {
            telemetry.violation(Violation {
                invariant: chc_telemetry::InvariantKind::RootlogBound,
                t_ns,
                observed: inputs.log_high_water,
                expected: inputs.log_capacity,
                detail: format!(
                    "root log high-water {} exceeded its capacity {}",
                    inputs.log_high_water, inputs.log_capacity
                ),
            });
        }
        if inputs.vertex_log_high_water > inputs.log_capacity {
            telemetry.violation(Violation {
                invariant: chc_telemetry::InvariantKind::RootlogBound,
                t_ns,
                observed: inputs.vertex_log_high_water,
                expected: inputs.log_capacity,
                detail: format!(
                    "a vertex egress log's high-water {} exceeded the capacity {}",
                    inputs.vertex_log_high_water, inputs.log_capacity
                ),
            });
        }
        if inputs.xor_dirty > 0 {
            telemetry.violation(Violation {
                invariant: chc_telemetry::InvariantKind::XorResidue,
                t_ns,
                observed: inputs.xor_dirty,
                expected: 0,
                detail: format!(
                    "{} delivered clocks finished with nonzero XOR delete-token residue",
                    inputs.xor_dirty
                ),
            });
        }
    }

    let (events_checked, frontier_advances) = {
        let guard = state.checker.lock().unwrap_or_else(|e| e.into_inner());
        (guard.0.events_checked, guard.0.frontier_advances)
    };
    Some(SentinelReport {
        violations: state
            .violations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone(),
        events_checked,
        frontier_advances,
        deliveries_checked: state.deliveries_checked.load(Ordering::Relaxed),
        ring_pushed: pushed,
        ring_popped: popped,
        kill_lost,
        processed: inputs.processed,
        suppressed: inputs.suppressed,
        sink_arrivals: inputs.sink_arrivals,
    })
}

/// Latency decomposition of one chain stage (all instances of one vertex).
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The vertex this stage aggregates.
    pub vertex: VertexId,
    /// Ring residency + batching wait before processing.
    pub queue: HistSummary,
    /// NF processing time, store round trips excluded.
    pub service: HistSummary,
    /// Synchronous store RTT per packet (sum of the packet's store ops).
    pub store: HistSummary,
    /// Ops per write-behind drain at this stage (zero-count when the store
    /// fast path was off).
    pub flush_depth: HistSummary,
}

impl StageReport {
    /// Mean total time a packet spends at this stage.
    pub fn mean_total_ns(&self) -> f64 {
        self.queue.mean_ns + self.service.mean_ns + self.store.mean_ns
    }
}

/// Telemetry section of a [`crate::RuntimeReport`], present when any
/// [`TelemetryConfig`] switch was on.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-vertex latency decomposition, in vertex-id order. Empty when
    /// spans were off.
    pub stages: Vec<StageReport>,
    /// Final hop: last vertex egress → sink arrival. Zero-count when spans
    /// were off.
    pub sink_wait: HistSummary,
    /// Gauge time series from the monitor thread. Empty when no sampling
    /// cadence was configured.
    pub series: TelemetrySeries,
    /// Journal events in global record order. Empty when the journal was
    /// off.
    pub events: Vec<Event>,
    /// Causal-trace spans in record order (per lane, the owning thread's
    /// program order). Empty when tracing was off. Export with
    /// [`chc_telemetry::chrome_trace_json`].
    pub trace_spans: Vec<SpanEvent>,
    /// Spans rejected because the trace collector hit its capacity.
    pub trace_dropped: u64,
}

impl TelemetryReport {
    /// Sum of the per-stage mean components plus the final sink hop — the
    /// spans' reconstruction of the end-to-end mean latency. Packets take
    /// exactly one instance per vertex, and the hop stamps telescope, so
    /// this tracks the e2e histogram's mean up to clock-read jitter.
    pub fn decomposed_mean_ns(&self) -> f64 {
        self.stages
            .iter()
            .map(StageReport::mean_total_ns)
            .sum::<f64>()
            + self.sink_wait.mean_ns
    }

    /// Events of one kind name, in record order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.kind.name() == name)
            .collect()
    }
}

/// Assemble the report section from the shared state (called once, after
/// every engine thread has joined).
pub(crate) fn assemble_report(
    telemetry: &RunTelemetry,
    series: TelemetrySeries,
) -> TelemetryReport {
    let mut stages: Vec<StageReport> = telemetry
        .stages
        .iter()
        .filter(|(_, m)| m.service_ns.count() > 0)
        .map(|(v, m)| StageReport {
            vertex: *v,
            queue: m.queue_ns.summary(),
            service: m.service_ns.summary(),
            store: m.store_ns.summary(),
            flush_depth: m.flush_depth.summary(),
        })
        .collect();
    stages.sort_by_key(|s| s.vertex);
    TelemetryReport {
        stages,
        sink_wait: telemetry.sink_wait.summary(),
        series,
        events: telemetry
            .journal
            .as_ref()
            .map(EventJournal::snapshot)
            .unwrap_or_default(),
        trace_spans: telemetry
            .tracer
            .as_ref()
            .map(TraceCollector::snapshot)
            .unwrap_or_default(),
        trace_dropped: telemetry
            .tracer
            .as_ref()
            .map(TraceCollector::dropped)
            .unwrap_or_default(),
    }
}
