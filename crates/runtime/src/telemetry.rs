//! Telemetry wiring for the real-thread engine: per-stage span metrics on
//! the packet path, a store-RTT-timing state handle, the gauge monitor
//! thread, and the telemetry section of the final report.
//!
//! ## Span points and the decomposition identity
//!
//! Per-packet timing uses a single shared `last_hop` array indexed by the
//! packet's clock counter, the same idiom as the engine's root-stamp array.
//! The root writes the injection time; each on-path instance reads it as
//! "when the previous stage let go of this packet", measures its own queue
//! wait and service time, and overwrites it with its egress time; the sink
//! reads the last value as its final-hop wait. The hops therefore
//! *telescope*: summed over the chain,
//!
//! ```text
//! mean(e2e) ≈ Σ_vertex (queue + service + store) + sink_wait
//! ```
//!
//! holds exactly in the mean (up to clock-read jitter), which is the
//! consistency check the benchmark and tests assert. Store RTT is measured
//! inside [`TimedHandle`] and *subtracted* from the enclosing service time,
//! so the three per-vertex components are disjoint.
//!
//! Writes to `last_hop` are relaxed: each counter's slot is handed from
//! stage to stage through the SPSC rings' release/acquire edges, exactly
//! like the root-stamp array the sink already reads.

use crate::config::TelemetryConfig;
use crate::spsc::RingProbe;
use chc_core::rootlog::PacketLog;
use chc_core::StateHandle;
use chc_store::{Clock, InstanceId, StateKey, StoreServer, Value, VertexId};
use chc_telemetry::{
    Counter, Event, EventJournal, EventKind, GaugeSeries, HistSummary, StreamingHistogram,
    TelemetrySeries,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-vertex stage histograms, shared by every instance of the vertex
/// (recording is `&self` and lock-free, so sharing costs nothing).
#[derive(Debug, Default)]
pub(crate) struct VertexStageMetrics {
    /// Wait between the previous stage's egress and this vertex's ingress
    /// (ring residency + batching delay).
    pub(crate) queue_ns: StreamingHistogram,
    /// NF processing time, store round trips excluded.
    pub(crate) service_ns: StreamingHistogram,
    /// Synchronous store RTT accumulated while processing one packet.
    pub(crate) store_ns: StreamingHistogram,
}

/// Run-wide telemetry state shared by every engine thread.
pub(crate) struct RunTelemetry {
    /// Copy of the run's telemetry switches.
    pub(crate) config: TelemetryConfig,
    /// Run epoch; all event and series timestamps are relative to this.
    pub(crate) t0: Instant,
    /// Per-counter "previous stage let go at" stamp (ns since `t0`),
    /// indexed by `clock.counter() - 1`. Empty when spans are off.
    pub(crate) last_hop: Vec<AtomicU64>,
    /// Stage histograms per vertex.
    pub(crate) stages: HashMap<VertexId, Arc<VertexStageMetrics>>,
    /// Final hop: last vertex egress → sink arrival.
    pub(crate) sink_wait: StreamingHistogram,
    /// Control-plane event journal, when enabled.
    pub(crate) journal: Option<EventJournal>,
    /// Packets replayed so far across all failovers (monitor gauge).
    pub(crate) replay_progress: Counter,
}

impl RunTelemetry {
    pub(crate) fn new(
        config: TelemetryConfig,
        t0: Instant,
        trace_len: usize,
        vertices: impl IntoIterator<Item = VertexId>,
    ) -> RunTelemetry {
        let slots = if config.spans { trace_len } else { 0 };
        RunTelemetry {
            config,
            t0,
            last_hop: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            stages: vertices
                .into_iter()
                .map(|v| (v, Arc::new(VertexStageMetrics::default())))
                .collect(),
            sink_wait: StreamingHistogram::new(),
            journal: config.journal.then(EventJournal::new),
            replay_progress: Counter::new(),
        }
    }

    /// Nanoseconds since the run epoch.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Record a journal event (no-op when the journal is off).
    pub(crate) fn event(&self, kind: EventKind) {
        if let Some(j) = &self.journal {
            j.record(self.now_ns(), kind);
        }
    }

    /// The `last_hop` slot for a clock counter, when spans are on and the
    /// counter lies within the trace (replay traffic reuses live counters,
    /// so the bound always holds for live packets).
    #[inline]
    pub(crate) fn hop_slot(&self, counter: u64) -> Option<&AtomicU64> {
        if counter >= 1 {
            self.last_hop.get((counter - 1) as usize)
        } else {
            None
        }
    }
}

/// A [`StateHandle`] that times every synchronous store operation.
///
/// RTT samples go to the owning vertex's `store_ns` histogram; the same
/// nanoseconds also accumulate into `pending_ns`, which the instance thread
/// swaps out per packet to subtract store time from its service time.
pub(crate) struct TimedHandle {
    pub(crate) inner: Arc<StoreServer>,
    pub(crate) store_hist: Arc<VertexStageMetrics>,
    pub(crate) pending_ns: Arc<AtomicU64>,
}

impl StateHandle for TimedHandle {
    fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &chc_store::Operation,
        clock: Option<Clock>,
    ) -> Result<chc_store::store::ApplyResult, chc_store::StoreError> {
        let started = Instant::now();
        let result = self.inner.apply(requester, key, op, clock);
        let ns = started.elapsed().as_nanos() as u64;
        self.store_hist.store_ns.record(ns);
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
        result
    }

    fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        self.inner.register_callback(key, instance);
    }

    fn release_ownership(
        &self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), chc_store::StoreError> {
        StateHandle::release_ownership(&self.inner, key, instance)
    }

    fn acquire_ownership(
        &self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), chc_store::StoreError> {
        StateHandle::acquire_ownership(&self.inner, key, instance)
    }

    fn owner_of(&self, key: &StateKey) -> Option<InstanceId> {
        StateHandle::owner_of(&self.inner, key)
    }

    fn nondet(&self, clock: Clock, slot: u32, candidate: Value) -> Value {
        StateHandle::nondet(&self.inner, clock, slot, candidate)
    }

    fn ts_snapshot(&self) -> chc_store::TsSnapshot {
        StateHandle::ts_snapshot(&self.inner)
    }

    fn is_failed(&self) -> bool {
        StateHandle::is_failed(&self.inner)
    }
}

/// Everything the monitor thread watches. Built at wiring time on the
/// planning thread; consumed by [`run_monitor`].
pub(crate) struct MonitorTargets {
    /// Labelled ring occupancy probes (`ring.<edge>.depth`).
    pub(crate) rings: Vec<(String, RingProbe)>,
    /// The store, for per-shard op counts.
    pub(crate) server: Arc<StoreServer>,
    /// Shards with journaling on (`shard.<i>.wal_depth`).
    pub(crate) journaled_shards: Vec<usize>,
    /// The root packet log, in fault mode (`rootlog.len`).
    pub(crate) log: Option<Arc<Mutex<PacketLog>>>,
}

/// Body of the monitor thread: samples every gauge at `interval`, always
/// taking one initial sample immediately and one final sample when `stop`
/// is raised, so even a very short run yields at least two points per
/// series. Returns the collected time series.
pub(crate) fn run_monitor(
    targets: MonitorTargets,
    telemetry: Arc<RunTelemetry>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> TelemetrySeries {
    let shard_count = targets.server.shard_count();
    let mut out = TelemetrySeries::new();
    for (label, _) in &targets.rings {
        out.series
            .push(GaugeSeries::new(format!("ring.{label}.depth")));
    }
    let shard_base = out.series.len();
    for s in 0..shard_count {
        out.series
            .push(GaugeSeries::new(format!("shard.{s}.ops_per_sec")));
    }
    let wal_base = out.series.len();
    for s in &targets.journaled_shards {
        out.series
            .push(GaugeSeries::new(format!("shard.{s}.wal_depth")));
    }
    let log_idx = targets.log.is_some().then(|| {
        out.series.push(GaugeSeries::new("rootlog.len"));
        out.series.len() - 1
    });
    out.series.push(GaugeSeries::new("replay.packets"));
    let replay_idx = out.series.len() - 1;

    let mut prev_ops: Vec<u64> = vec![0; shard_count];
    let mut prev_t_ns = 0u64;
    let mut first = true;

    let sample = |out: &mut TelemetrySeries,
                  prev_ops: &mut Vec<u64>,
                  prev_t_ns: &mut u64,
                  first: &mut bool| {
        let t_ns = telemetry.now_ns();
        for (i, (_, probe)) in targets.rings.iter().enumerate() {
            out.series[i].push(t_ns, probe.depth() as f64);
        }
        let ops = targets.server.ops_per_shard();
        let dt_s = (t_ns.saturating_sub(*prev_t_ns)) as f64 / 1e9;
        for (s, &now) in ops.iter().enumerate() {
            let rate = if *first || dt_s <= 0.0 {
                0.0
            } else {
                (now.saturating_sub(prev_ops[s])) as f64 / dt_s
            };
            out.series[shard_base + s].push(t_ns, rate);
        }
        *prev_ops = ops;
        *prev_t_ns = t_ns;
        *first = false;
        for (j, &s) in targets.journaled_shards.iter().enumerate() {
            out.series[wal_base + j].push(t_ns, targets.server.shard_journal_len(s) as f64);
        }
        if let (Some(idx), Some(log)) = (log_idx, &targets.log) {
            let len = log.lock().unwrap_or_else(|e| e.into_inner()).len();
            out.series[idx].push(t_ns, len as f64);
        }
        out.series[replay_idx].push(t_ns, telemetry.replay_progress.get() as f64);
    };

    sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
    let mut last_sample = Instant::now();
    // Cap the nap so a long cadence cannot delay shutdown by more than
    // ~10ms, but never nap *shorter* than the cadence: waking faster than
    // the sampling rate just preempts the pipeline (on a single-core host
    // every spurious wake-up is a context switch on the hot path).
    let nap = interval.min(Duration::from_millis(10));
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(nap);
        if last_sample.elapsed() >= interval {
            sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
            last_sample = Instant::now();
        }
    }
    sample(&mut out, &mut prev_ops, &mut prev_t_ns, &mut first);
    out
}

/// Latency decomposition of one chain stage (all instances of one vertex).
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The vertex this stage aggregates.
    pub vertex: VertexId,
    /// Ring residency + batching wait before processing.
    pub queue: HistSummary,
    /// NF processing time, store round trips excluded.
    pub service: HistSummary,
    /// Synchronous store RTT per packet (sum of the packet's store ops).
    pub store: HistSummary,
}

impl StageReport {
    /// Mean total time a packet spends at this stage.
    pub fn mean_total_ns(&self) -> f64 {
        self.queue.mean_ns + self.service.mean_ns + self.store.mean_ns
    }
}

/// Telemetry section of a [`crate::RuntimeReport`], present when any
/// [`TelemetryConfig`] switch was on.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-vertex latency decomposition, in vertex-id order. Empty when
    /// spans were off.
    pub stages: Vec<StageReport>,
    /// Final hop: last vertex egress → sink arrival. Zero-count when spans
    /// were off.
    pub sink_wait: HistSummary,
    /// Gauge time series from the monitor thread. Empty when no sampling
    /// cadence was configured.
    pub series: TelemetrySeries,
    /// Journal events in global record order. Empty when the journal was
    /// off.
    pub events: Vec<Event>,
}

impl TelemetryReport {
    /// Sum of the per-stage mean components plus the final sink hop — the
    /// spans' reconstruction of the end-to-end mean latency. Packets take
    /// exactly one instance per vertex, and the hop stamps telescope, so
    /// this tracks the e2e histogram's mean up to clock-read jitter.
    pub fn decomposed_mean_ns(&self) -> f64 {
        self.stages
            .iter()
            .map(StageReport::mean_total_ns)
            .sum::<f64>()
            + self.sink_wait.mean_ns
    }

    /// Events of one kind name, in record order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.kind.name() == name)
            .collect()
    }
}

/// Assemble the report section from the shared state (called once, after
/// every engine thread has joined).
pub(crate) fn assemble_report(
    telemetry: &RunTelemetry,
    series: TelemetrySeries,
) -> TelemetryReport {
    let mut stages: Vec<StageReport> = telemetry
        .stages
        .iter()
        .filter(|(_, m)| m.service_ns.count() > 0)
        .map(|(v, m)| StageReport {
            vertex: *v,
            queue: m.queue_ns.summary(),
            service: m.service_ns.summary(),
            store: m.store_ns.summary(),
        })
        .collect();
    stages.sort_by_key(|s| s.vertex);
    TelemetryReport {
        stages,
        sink_wait: telemetry.sink_wait.summary(),
        series,
        events: telemetry
            .journal
            .as_ref()
            .map(EventJournal::snapshot)
            .unwrap_or_default(),
    }
}
