//! Failover supervision and packet replay for the real-thread engine.
//!
//! The supervisor is a dedicated thread that owns everything the hot path
//! must not touch: the fail-stop channel, the replacement seeds, the
//! supervisor-side **replay rings** into every killed vertex's instances,
//! and the commit-frontier truncation of the packet logs.
//!
//! ## Failover (§5.4 "NF instance", on wall clocks)
//!
//! When an armed instance fail-stops, it sends its SPSC wiring through the
//! fault channel and exits. The supervisor then:
//!
//! 1. re-associates the failed instance's per-flow store state with the
//!    pre-assigned replacement id ([`StoreServer::reassign_owner`] — the
//!    store always holds the authoritative copy because cached per-flow
//!    updates are flushed, Theorem B.5.1),
//! 2. spawns the **replacement thread** on the inherited wiring: in-flight
//!    packets still queued in the input rings survive, exactly like packets
//!    sitting in the network across an endpoint crash,
//! 3. **replays** the killed vertex's [`ReplaySource`] — the root's
//!    injection log for an entry vertex, the merged egress logs of its
//!    on-path upstream vertices (FTMB-style output logging) otherwise —
//!    marked `replay_for = replacement`, through the killed vertex's own
//!    replay rings: one ring per instance of that vertex, so live flows
//!    keep their ring order and replay enters the chain at the killed
//!    vertex's depth rather than re-traversing the whole upstream prefix.
//!
//! Replay is idempotent end to end: instances suppress duplicate clocks at
//! their input queues, the store suppresses duplicate clocked updates, tail
//! replacements gate re-emission on the XOR delete ledger, and the sink
//! absorbs the residual re-delivery window into its own (separately
//! counted) suppression — the chain's duplicate accounting stays at zero.
//!
//! **Overlapping failovers**: a second armed instance may die while the
//! first failover's replay is still in flight — and because the dead
//! instance stops draining its own replay ring, the in-flight replay would
//! stall on it. Failover is therefore split into a *begin* phase (state
//! hand-off + replacement spawn, cheap and never blocking) and a *replay*
//! phase: whenever a replay push backs up, the supervisor first begins any
//! newly arrived failover, so the new replacement inherits the stalled ring
//! and drains it, and the push resumes.
//!
//! A failover the supervisor genuinely cannot complete — a replay ring that
//! stays full though no further fail-stop arrived (the consumer stopped
//! draining), or a wiring hand-off with no replacement seed — is
//! **aborted**, not allowed to hang the run: the supervisor journals a
//! `failover_abort` event, records it in [`SupervisorOutcome::aborts`]
//! (surfaced through `RuntimeReport::fault`), and winds down normally.
//!
//! ## Log truncation (Figure 6)
//!
//! Between fault events the supervisor truncates every packet log up to its
//! own commit frontier — for the root log, the minimum watermark published
//! by every on-path instance and the sink; for a vertex egress log, the
//! minimum over the instances *strictly downstream* of the logging vertex
//! plus the sink. Before the first failover every ring delivers counters
//! monotonically, so the frontier proves completion exactly; while further
//! kills are still armed after a failover, truncation pauses (replayed
//! traffic makes ring order non-monotone, so the frontier could briefly
//! overclaim); once the last kill resolved it resumes, where truncation is
//! unconditionally safe because no future replay exists. On top of the
//! frontier, egress logs also run the paper's per-packet XOR deletes
//! (Figure 6): any entry whose clock the ledger proves delivered and fully
//! cancelled is dropped individually, frontier or not.

use crate::engine::{DyingInstance, EngineShared, InstancePlan, InstanceResult, OutLink};
use crate::fault::{FailoverAbort, InstanceKill, InstanceRecovery};
use chc_core::{TaggedPacket, VertexLogs, XorDeleteLedger};
use chc_store::{InstanceId, VertexId};
use chc_telemetry::{EventKind, SpanEvent, SpanKind, TraceLane};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Total consecutive empty push attempts (each one a scheduler yield) the
/// supervisor tolerates on a replay ring — without a new fail-stop arriving
/// to explain the backpressure — before declaring the failover stalled and
/// aborting it. A live consumer drains a ring in microseconds; a million
/// yields is far past any plausible scheduling hiccup.
const REPLAY_MAX_SPINS: usize = 1_000_000;

/// Spin quantum between checks of the fault channel while a replay push is
/// backed up: long enough that a healthy consumer clears the ring within
/// one quantum, short enough that an overlapping fail-stop is begun (and
/// its replacement starts draining) promptly.
const RESCUE_QUANTUM: usize = 20_000;

/// Where the supervisor reads the replay stream for one killed vertex.
pub(crate) enum ReplaySource {
    /// The killed vertex is a chain entry: replay the root's injection log.
    Root,
    /// The killed vertex sits mid-chain or at the tail: replay the merged
    /// egress logs of its on-path upstream vertices, sorted by clock.
    Upstream(Vec<VertexId>),
}

/// Everything prepared ahead of time for one planned failover: the kill it
/// answers, the id being replaced, and the fully-built replacement plan
/// (fresh NF code, pre-assigned instance id). Built on the planning thread
/// because NF builders are `Rc`-based and must not cross threads.
pub(crate) struct ReplacementSeed {
    pub(crate) kill: InstanceKill,
    pub(crate) old_instance: InstanceId,
    pub(crate) plan: InstancePlan,
}

/// What the supervisor hands back when it winds down.
pub(crate) struct SupervisorOutcome<'scope> {
    pub(crate) recoveries: Vec<InstanceRecovery>,
    pub(crate) aborts: Vec<FailoverAbort>,
    pub(crate) replacements: Vec<thread::ScopedJoinHandle<'scope, InstanceResult>>,
}

/// A begun failover whose replay has not run yet: the replacement thread is
/// already up and draining the inherited wiring.
struct ReplayJob {
    kill: InstanceKill,
    old_instance: InstanceId,
    replacement: InstanceId,
    started: Instant,
}

/// Body of the supervisor thread. Exits once the root finished injecting and
/// every armed kill either executed or provably can no longer fire (its
/// instance drained its live rings and dropped the fault channel), then
/// closes the replay rings so the chain can drain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervisor<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    rx: mpsc::Receiver<DyingInstance>,
    mut seeds: HashMap<usize, ReplacementSeed>,
    mut replay_outs: HashMap<VertexId, Vec<OutLink>>,
    replay_sources: HashMap<VertexId, ReplaySource>,
    logs: Arc<VertexLogs>,
    ledger: Option<Arc<XorDeleteLedger>>,
    shared: Arc<EngineShared>,
    mut sources: Vec<InstanceId>,
    mut vertex_scopes: Vec<(VertexId, Vec<InstanceId>)>,
    done_injecting: Arc<AtomicBool>,
) -> SupervisorOutcome<'scope> {
    let mut outcome = SupervisorOutcome {
        recoveries: Vec::new(),
        aborts: Vec::new(),
        replacements: Vec::new(),
    };
    let mut disconnected = false;
    loop {
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(dying) => {
                let mut pending = VecDeque::new();
                if let Some(job) = begin_failover(
                    scope,
                    dying,
                    &mut seeds,
                    &shared,
                    &mut sources,
                    &mut vertex_scopes,
                    &mut outcome,
                ) {
                    pending.push_back(job);
                }
                while let Some(job) = pending.pop_front() {
                    // Begin every failover that is already queued before
                    // replaying: each begun replacement is a live consumer
                    // this replay may need (see the module docs).
                    while begin_next_pending(
                        scope,
                        &rx,
                        &mut seeds,
                        &shared,
                        &mut sources,
                        &mut vertex_scopes,
                        &mut pending,
                        &mut outcome,
                    ) {}
                    run_replay(
                        scope,
                        job,
                        &rx,
                        &mut seeds,
                        &mut replay_outs,
                        &replay_sources,
                        &logs,
                        &shared,
                        &mut sources,
                        &mut vertex_scopes,
                        &mut pending,
                        &mut outcome,
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                disconnected = true;
                // A disconnected channel returns immediately; pace the loop.
                thread::sleep(Duration::from_micros(200));
            }
        }

        // Frontier truncation: exact before the first failover, paused while
        // more kills are armed, harmless after the last one (see module
        // docs). Each log truncates against its own commit scope; egress
        // logs additionally run the per-packet XOR delete sweep.
        if outcome.recoveries.is_empty() || seeds.is_empty() {
            let frontier = shared.server.commit_frontier(&sources);
            let dropped = logs.root().truncate_confirmed(0, frontier);
            if dropped > 0 {
                shared.telemetry.event(EventKind::CommitFrontier {
                    frontier,
                    dropped: dropped as u64,
                });
            }
            for (v, srcs) in &vertex_scopes {
                let vf = shared.server.commit_frontier(srcs);
                if let Some(mut vl) = logs.vertex(*v) {
                    vl.truncate_confirmed(0, vf);
                    if let Some(l) = &ledger {
                        vl.delete_where(|c| l.deletable(c.counter()));
                    }
                }
            }
        }

        if done_injecting.load(Ordering::Acquire) && (seeds.is_empty() || disconnected) {
            break;
        }
    }

    for links in replay_outs.values_mut() {
        for link in links {
            // Bounded: an aborted failover may have left a stalled ring
            // behind, and the wind-down must not hang on it.
            let _ = link.try_flush(REPLAY_MAX_SPINS);
            link.producer.close();
        }
    }
    outcome
}

/// Begin one failover: remove the seed, hand the failed instance's store
/// state to the replacement, and spawn the replacement thread on the
/// inherited wiring. Never blocks. Returns the replay job still to run, or
/// `None` when the hand-off had no seed (recorded as an abort).
fn begin_failover<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    dying: DyingInstance,
    seeds: &mut HashMap<usize, ReplacementSeed>,
    shared: &Arc<EngineShared>,
    sources: &mut [InstanceId],
    vertex_scopes: &mut [(VertexId, Vec<InstanceId>)],
    outcome: &mut SupervisorOutcome<'scope>,
) -> Option<ReplayJob> {
    let started = Instant::now();
    let Some(seed) = seeds.remove(&dying.slot) else {
        // A wiring hand-off without a seed cannot happen (only armed
        // instances hold the channel); if it ever does, surface the lost
        // wiring as an aborted failover instead of silently dropping it.
        shared.telemetry.event(EventKind::FailoverAbort {
            vertex: u32::MAX,
            index: dying.slot as u32,
            instance: u64::MAX,
        });
        outcome.aborts.push(FailoverAbort {
            vertex: VertexId(u32::MAX),
            index: dying.slot,
            reason: "no replacement seed for the failed slot".to_string(),
        });
        return None;
    };
    let replacement = seed.plan.instance;
    shared.telemetry.event(EventKind::FailoverBegin {
        vertex: seed.kill.vertex.0,
        index: seed.kill.index as u32,
        instance: seed.old_instance.0 as u64,
    });

    // 1. The replacement takes over the failed instance's per-flow state.
    shared.server.reassign_owner(seed.old_instance, replacement);
    for s in sources.iter_mut() {
        if *s == seed.old_instance {
            *s = replacement;
        }
    }
    for (_, srcs) in vertex_scopes.iter_mut() {
        for s in srcs.iter_mut() {
            if *s == seed.old_instance {
                *s = replacement;
            }
        }
    }

    // 2. Spawn the replacement thread on the inherited wiring.
    let shared_clone = Arc::clone(shared);
    let kill = seed.kill;
    let old_instance = seed.old_instance;
    let handle = scope.spawn(move || {
        crate::engine::run_instance(
            seed.plan,
            dying.inputs,
            dying.outs,
            dying.sink_link,
            shared_clone,
            None,
            true,
        )
    });
    outcome.replacements.push(handle);
    shared.telemetry.event(EventKind::ReplacementSpawn {
        vertex: kill.vertex.0,
        index: kill.index as u32,
        instance: replacement.0 as u64,
    });
    Some(ReplayJob {
        kill,
        old_instance,
        replacement,
        started,
    })
}

/// Begin the next failover waiting on the fault channel, if any. Returns
/// whether a hand-off was consumed (begun or recorded as an abort).
#[allow(clippy::too_many_arguments)]
fn begin_next_pending<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    rx: &mpsc::Receiver<DyingInstance>,
    seeds: &mut HashMap<usize, ReplacementSeed>,
    shared: &Arc<EngineShared>,
    sources: &mut [InstanceId],
    vertex_scopes: &mut [(VertexId, Vec<InstanceId>)],
    pending: &mut VecDeque<ReplayJob>,
    outcome: &mut SupervisorOutcome<'scope>,
) -> bool {
    match rx.try_recv() {
        Ok(dying) => {
            if let Some(job) =
                begin_failover(scope, dying, seeds, shared, sources, vertex_scopes, outcome)
            {
                pending.push_back(job);
            }
            true
        }
        Err(_) => false,
    }
}

/// Step 3 of one failover: replay the killed vertex's replay source through
/// *its* replay rings. Routing is the same clock-pure splitter logic as
/// live traffic, so replayed packets reach exactly the instances the
/// originals were (or would have been) routed to; survivors suppress them
/// by clock. No ledger filtering here: replaying the full snapshot keeps
/// the stream identical to what the killed instance could have seen, and
/// every already-absorbed copy is suppressed downstream anyway.
#[allow(clippy::too_many_arguments)]
fn run_replay<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    job: ReplayJob,
    rx: &mpsc::Receiver<DyingInstance>,
    seeds: &mut HashMap<usize, ReplacementSeed>,
    replay_outs: &mut HashMap<VertexId, Vec<OutLink>>,
    replay_sources: &HashMap<VertexId, ReplaySource>,
    logs: &Arc<VertexLogs>,
    shared: &Arc<EngineShared>,
    sources: &mut [InstanceId],
    vertex_scopes: &mut [(VertexId, Vec<InstanceId>)],
    pending: &mut VecDeque<ReplayJob>,
    outcome: &mut SupervisorOutcome<'scope>,
) {
    let vertex = job.kill.vertex.0;
    let index = job.kill.index as u32;
    let replacement = job.replacement;
    let snapshot: Vec<TaggedPacket> = match replay_sources.get(&job.kill.vertex) {
        Some(ReplaySource::Upstream(ups)) => {
            let mut merged = Vec::new();
            for u in ups {
                if let Some(log) = logs.vertex(*u) {
                    merged.extend(log.snapshot());
                }
            }
            merged.sort_by_key(|tp| tp.clock);
            merged
        }
        _ => logs.root().snapshot(),
    };
    let mut replayed = 0u64;
    let mut stalled = false;
    if let Some(links) = replay_outs.remove(&job.kill.vertex) {
        let mut links = links;
        for mut tp in snapshot {
            tp.replay_for = Some(replacement);
            if shared.telemetry.tracer.is_some() {
                if let Some(tag) = tp.trace {
                    shared.telemetry.trace_span(SpanEvent {
                        trace_id: tag.id,
                        lane: TraceLane::Supervisor,
                        kind: SpanKind::ReplayInject,
                        t_ns: shared.telemetry.now_ns(),
                        dur_ns: 0,
                    });
                }
            }
            let idx = shared.splitters[&job.kill.vertex].instance_for(&tp.packet, tp.clock);
            let pushed = links[idx].push_bounded(tp, shared.batch, RESCUE_QUANTUM)
                || flush_with_rescue(
                    &mut links[idx],
                    scope,
                    rx,
                    seeds,
                    shared,
                    sources,
                    vertex_scopes,
                    pending,
                    outcome,
                );
            if !pushed {
                stalled = true;
                break;
            }
            replayed += 1;
            shared.telemetry.replay_progress.inc();
        }
        if !stalled {
            for link in links.iter_mut() {
                if !(link.try_flush(RESCUE_QUANTUM)
                    || flush_with_rescue(
                        link,
                        scope,
                        rx,
                        seeds,
                        shared,
                        sources,
                        vertex_scopes,
                        pending,
                        outcome,
                    ))
                {
                    stalled = true;
                    break;
                }
            }
        }
        if stalled {
            // Abandon the replay rather than hang the run: drop whatever is
            // still buffered (unflushed copies are never booked as "in the
            // network") so the wind-down flush stays bounded too.
            for link in links.iter_mut() {
                link.buf.clear();
            }
        }
        replay_outs.insert(job.kill.vertex, links);
    }
    if stalled {
        shared.telemetry.event(EventKind::FailoverAbort {
            vertex,
            index,
            instance: replacement.0 as u64,
        });
        outcome.aborts.push(FailoverAbort {
            vertex: job.kill.vertex,
            index: job.kill.index,
            reason: "replay ring stalled: the replacement stopped draining".to_string(),
        });
        return;
    }
    shared.telemetry.event(EventKind::ReplayComplete {
        vertex,
        index,
        instance: replacement.0 as u64,
        packets_replayed: replayed,
    });

    let recovery_wall = job.started.elapsed();
    shared.telemetry.event(EventKind::FailoverEnd {
        vertex,
        index,
        instance: replacement.0 as u64,
        recovery_ns: recovery_wall.as_nanos() as u64,
    });
    outcome.recoveries.push(InstanceRecovery {
        vertex: job.kill.vertex,
        index: job.kill.index,
        failed_instance: job.old_instance,
        replacement,
        packets_replayed: replayed,
        recovery_wall,
    });
}

/// Keep flushing a backed-up replay link, beginning any overlapping
/// failover that arrives meanwhile (its replacement is the consumer the
/// flush may be waiting on, so each begun failover resets the stall
/// budget). Returns `false` once [`REPLAY_MAX_SPINS`] empty pushes passed
/// with no new fail-stop arriving — the consumer genuinely stopped.
#[allow(clippy::too_many_arguments)]
fn flush_with_rescue<'scope, 'env>(
    link: &mut OutLink,
    scope: &'scope thread::Scope<'scope, 'env>,
    rx: &mpsc::Receiver<DyingInstance>,
    seeds: &mut HashMap<usize, ReplacementSeed>,
    shared: &Arc<EngineShared>,
    sources: &mut [InstanceId],
    vertex_scopes: &mut [(VertexId, Vec<InstanceId>)],
    pending: &mut VecDeque<ReplayJob>,
    outcome: &mut SupervisorOutcome<'scope>,
) -> bool {
    let mut budget = REPLAY_MAX_SPINS;
    loop {
        if begin_next_pending(
            scope,
            rx,
            seeds,
            shared,
            sources,
            vertex_scopes,
            pending,
            outcome,
        ) {
            budget = REPLAY_MAX_SPINS;
        }
        if link.try_flush(RESCUE_QUANTUM) {
            return true;
        }
        budget = budget.saturating_sub(RESCUE_QUANTUM);
        if budget == 0 {
            return false;
        }
    }
}
