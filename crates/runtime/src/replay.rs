//! Failover supervision and packet replay for the real-thread engine.
//!
//! The supervisor is a dedicated thread that owns everything the hot path
//! must not touch: the fail-stop channel, the replacement seeds, the
//! supervisor-side **replay rings** into every entry instance, and the
//! commit-frontier truncation of the root's packet log.
//!
//! ## Failover (§5.4 "NF instance", on wall clocks)
//!
//! When an armed instance fail-stops, it sends its SPSC wiring through the
//! fault channel and exits. The supervisor then:
//!
//! 1. re-associates the failed instance's per-flow store state with the
//!    pre-assigned replacement id ([`StoreServer::reassign_owner`] — the
//!    store always holds the authoritative copy because cached per-flow
//!    updates are flushed, Theorem B.5.1),
//! 2. spawns the **replacement thread** on the inherited wiring: in-flight
//!    packets still queued in the input rings survive, exactly like packets
//!    sitting in the network across an endpoint crash,
//! 3. **replays** a snapshot of the root's packet log, marked
//!    `replay_for = replacement`, through the replay rings — a separate
//!    ring per entry instance, so live flows keep their ring order and
//!    replay can never reorder them.
//!
//! Replay is idempotent end to end: instances suppress duplicate clocks at
//! their input queues and the store suppresses duplicate clocked updates,
//! so packets the chain already absorbed are counted, not re-applied, and
//! the sink observes zero duplicates.
//!
//! ## Log truncation (Figure 6, coarsened)
//!
//! Between fault events the supervisor truncates the packet log up to the
//! commit frontier — the minimum watermark published by every on-path
//! instance and the sink. Before the first failover every ring delivers
//! counters monotonically, so the frontier proves completion exactly; while
//! further kills are still armed after a failover, truncation pauses
//! (replayed traffic makes ring order non-monotone, so the frontier could
//! briefly overclaim); once the last kill resolved it resumes, where
//! truncation is unconditionally safe because no future replay exists.

use crate::engine::{DyingInstance, EngineShared, InstancePlan, InstanceResult, OutLink};
use crate::fault::{InstanceKill, InstanceRecovery};
use chc_core::rootlog::PacketLog;
use chc_store::{InstanceId, VertexId};
use chc_telemetry::{EventKind, SpanEvent, SpanKind, TraceLane};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Everything prepared ahead of time for one planned failover: the kill it
/// answers, the id being replaced, and the fully-built replacement plan
/// (fresh NF code, pre-assigned instance id). Built on the planning thread
/// because NF builders are `Rc`-based and must not cross threads.
pub(crate) struct ReplacementSeed {
    pub(crate) kill: InstanceKill,
    pub(crate) old_instance: InstanceId,
    pub(crate) plan: InstancePlan,
}

/// What the supervisor hands back when it winds down.
pub(crate) struct SupervisorOutcome<'scope> {
    pub(crate) recoveries: Vec<InstanceRecovery>,
    pub(crate) replacements: Vec<thread::ScopedJoinHandle<'scope, InstanceResult>>,
}

/// Body of the supervisor thread. Exits once the root finished injecting and
/// every armed kill either executed or provably can no longer fire (its
/// instance drained its live rings and dropped the fault channel), then
/// closes the replay rings so the chain can drain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervisor<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    rx: mpsc::Receiver<DyingInstance>,
    mut seeds: HashMap<usize, ReplacementSeed>,
    mut replay_outs: HashMap<VertexId, Vec<OutLink>>,
    log: Arc<Mutex<PacketLog>>,
    shared: Arc<EngineShared>,
    mut sources: Vec<InstanceId>,
    done_injecting: Arc<AtomicBool>,
) -> SupervisorOutcome<'scope> {
    let mut outcome = SupervisorOutcome {
        recoveries: Vec::new(),
        replacements: Vec::new(),
    };
    let mut disconnected = false;
    loop {
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(dying) => {
                handle_failover(
                    scope,
                    dying,
                    &mut seeds,
                    &mut replay_outs,
                    &log,
                    &shared,
                    &mut sources,
                    &mut outcome,
                );
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                disconnected = true;
                // A disconnected channel returns immediately; pace the loop.
                thread::sleep(Duration::from_micros(200));
            }
        }

        // Frontier truncation: exact before the first failover, paused while
        // more kills are armed, harmless after the last one (see module docs).
        if outcome.recoveries.is_empty() || seeds.is_empty() {
            let frontier = shared.server.commit_frontier(&sources);
            let dropped = log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .truncate_confirmed(0, frontier);
            if dropped > 0 {
                shared.telemetry.event(EventKind::CommitFrontier {
                    frontier,
                    dropped: dropped as u64,
                });
            }
        }

        if done_injecting.load(Ordering::Acquire) && (seeds.is_empty() || disconnected) {
            break;
        }
    }

    for links in replay_outs.values_mut() {
        for link in links {
            link.flush();
            link.producer.close();
        }
    }
    outcome
}

/// Execute one failover. See the module docs for the three steps.
#[allow(clippy::too_many_arguments)]
fn handle_failover<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    dying: DyingInstance,
    seeds: &mut HashMap<usize, ReplacementSeed>,
    replay_outs: &mut HashMap<VertexId, Vec<OutLink>>,
    log: &Arc<Mutex<PacketLog>>,
    shared: &Arc<EngineShared>,
    sources: &mut [InstanceId],
    outcome: &mut SupervisorOutcome<'scope>,
) {
    let started = Instant::now();
    let Some(seed) = seeds.remove(&dying.slot) else {
        // A wiring hand-off without a seed cannot happen (only armed
        // instances hold the channel), but losing it would deadlock the
        // drain, so close it defensively.
        return;
    };
    let replacement_id = seed.plan.instance;
    let vertex = seed.kill.vertex.0;
    let index = seed.kill.index as u32;
    shared.telemetry.event(EventKind::FailoverBegin {
        vertex,
        index,
        instance: seed.old_instance.0 as u64,
    });

    // 1. The replacement takes over the failed instance's per-flow state.
    shared
        .server
        .reassign_owner(seed.old_instance, replacement_id);
    for s in sources.iter_mut() {
        if *s == seed.old_instance {
            *s = replacement_id;
        }
    }

    // 2. Spawn the replacement thread on the inherited wiring.
    let shared_clone = Arc::clone(shared);
    let handle = scope.spawn(move || {
        crate::engine::run_instance(
            seed.plan,
            dying.inputs,
            dying.outs,
            dying.sink_link,
            shared_clone,
            None,
            true,
        )
    });
    outcome.replacements.push(handle);
    shared.telemetry.event(EventKind::ReplacementSpawn {
        vertex,
        index,
        instance: replacement_id.0 as u64,
    });

    // 3. Replay the packet log through the replay rings. Routing is the
    // same clock-pure splitter logic as live traffic, so replayed packets
    // reach exactly the instances the originals were (or would have been)
    // routed to; survivors suppress them by clock.
    let snapshot = log.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
    let mut replayed = 0u64;
    for mut tp in snapshot {
        tp.replay_for = Some(replacement_id);
        if shared.telemetry.tracer.is_some() {
            if let Some(tag) = tp.trace {
                shared.telemetry.trace_span(SpanEvent {
                    trace_id: tag.id,
                    lane: TraceLane::Supervisor,
                    kind: SpanKind::ReplayInject,
                    t_ns: shared.telemetry.now_ns(),
                    dur_ns: 0,
                });
            }
        }
        for (vertex, links) in replay_outs.iter_mut() {
            let idx = shared.splitters[vertex].instance_for(&tp.packet, tp.clock);
            links[idx].push(tp.clone(), shared.batch);
        }
        replayed += 1;
        shared.telemetry.replay_progress.inc();
    }
    for links in replay_outs.values_mut() {
        for link in links {
            link.flush();
        }
    }
    shared.telemetry.event(EventKind::ReplayComplete {
        vertex,
        index,
        instance: replacement_id.0 as u64,
        packets_replayed: replayed,
    });

    let recovery_wall = started.elapsed();
    shared.telemetry.event(EventKind::FailoverEnd {
        vertex,
        index,
        instance: replacement_id.0 as u64,
        recovery_ns: recovery_wall.as_nanos() as u64,
    });
    outcome.recoveries.push(InstanceRecovery {
        vertex: seed.kill.vertex,
        index: seed.kill.index,
        failed_instance: seed.old_instance,
        replacement: replacement_id,
        packets_replayed: replayed,
        recovery_wall,
    });
}
