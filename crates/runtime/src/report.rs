//! Measurements and state digests produced by a real-thread chain run.

use crate::fault::FaultReport;
use crate::telemetry::TelemetryReport;
use chc_core::root::ROOT_VERTEX;
use chc_sim::{SimDuration, Summary};
use chc_store::{Clock, InstanceId, StateKey, Value, VertexId};
use chc_telemetry::StreamingHistogram;
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-instance counters harvested when an instance thread exits.
#[derive(Debug, Clone)]
pub struct RuntimeInstanceReport {
    /// Vertex the instance belongs to.
    pub vertex: VertexId,
    /// Instance id (matches the id the simulator would assign).
    pub instance: InstanceId,
    /// Packets fully processed.
    pub processed: u64,
    /// Packets the NF decided to drop.
    pub dropped_by_nf: u64,
    /// Duplicate clocks suppressed at the input queue (§5.3; nonzero only
    /// when a fault plan re-sends traffic through replay or re-injection).
    pub suppressed_duplicates: u64,
    /// Alerts raised by the NF, with the packet clock that triggered them.
    pub alerts: Vec<(Clock, String)>,
    /// Ring-transfer batches consumed (shows batching effectiveness:
    /// `processed / batches_in` approaches the configured batch size under
    /// load).
    pub batches_in: u64,
    /// Replayed packets this (tail replacement) instance processed but did
    /// not re-emit to the sink because the XOR delete ledger proved the
    /// clock already delivered — the tail kill's re-delivery window bound.
    /// These packets *are* processed (state effects are idempotent and
    /// clock-deduped at the store), so they sit outside
    /// `suppressed_duplicates`.
    pub replay_egress_gated: u64,
}

/// Result of one [`crate::run_chain_realtime`] run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Distinct packets delivered to the sink.
    pub delivered: usize,
    /// Duplicate packets observed at the sink (same clock twice) — must stay
    /// zero in every healthy run *and* in every failover run (replayed
    /// traffic is suppressed before it can re-reach the end host).
    pub duplicates: u64,
    /// The clock of every duplicate sink arrival, in arrival order: the
    /// sink accounts duplicates exactly rather than silently deduplicating,
    /// so tests can assert the precise expected multiset.
    pub duplicate_clocks: Vec<Clock>,
    /// Trace packet ids delivered, in sink arrival order.
    pub delivered_ids: Vec<chc_packet::PacketId>,
    /// Replay-marked copies the sink absorbed because their clock had
    /// already been delivered — the re-delivery window of mid-chain, tail
    /// and root failovers. Counted separately from `duplicates`: these are
    /// the *expected* shadow of replay-based recovery (bounded by the XOR
    /// delete window), not an exactly-once violation, and they never enter
    /// `duplicate_clocks`.
    pub replay_window_suppressed: u64,
    /// Bytes delivered to the sink.
    pub delivered_bytes: u64,
    /// Packets injected by the root.
    pub injected: u64,
    /// Wall-clock duration from first injection to sink completion.
    pub elapsed: Duration,
    /// Root→sink latency per delivered packet (wall clock). A bounded
    /// streaming histogram: recording is lock-free on the sink's hot path
    /// and summaries need only `&self`; percentiles carry ≤ ~3% bucket
    /// quantization (count/mean/min/max stay exact).
    pub latency: StreamingHistogram,
    /// Per-instance counters of every instance alive at the end of the run
    /// (failover replacements included).
    pub instances: Vec<RuntimeInstanceReport>,
    /// Partial counters of instances that fail-stopped mid-run. Kept out of
    /// [`RuntimeReport::alerts`], matching the simulator, whose metrics
    /// harvest only covers the instances deployed at harvest time.
    pub failed_instances: Vec<RuntimeInstanceReport>,
    /// Total operations the store served.
    pub store_ops: u64,
    /// Operations served by each store shard.
    pub store_ops_per_shard: Vec<u64>,
    /// Final store content as `(canonical key, value, owner)`.
    pub final_state: Vec<(StateKey, Value, Option<InstanceId>)>,
    /// Recovery metrics, present when a fault plan was active: per-failover
    /// packets replayed and recovery wall-clock time, shard restarts, and
    /// the packet log's high-water mark and truncation counters.
    pub fault: Option<FaultReport>,
    /// Telemetry section — per-stage latency decomposition, gauge time
    /// series from the monitor thread, and the control-plane event journal.
    /// Present unless the run disabled every [`crate::TelemetryConfig`]
    /// switch.
    pub telemetry: Option<TelemetryReport>,
    /// Invariant-sentinel section, present when
    /// [`crate::TelemetryConfig::sentinel`] was on: every detected
    /// violation (empty in a correct run) plus the counters proving how
    /// much was checked — journal events, sink deliveries, and the ring
    /// conservation ledger.
    pub invariants: Option<chc_telemetry::SentinelReport>,
}

impl RuntimeReport {
    /// End-to-end throughput in packets per second.
    pub fn pps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.delivered as f64 / s
        } else {
            0.0
        }
    }

    /// End-to-end goodput in Gbit/s.
    pub fn gbps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            (self.delivered_bytes as f64 * 8.0) / s / 1e9
        } else {
            0.0
        }
    }

    /// Five-number summary of the root→sink wall-clock latency. Takes
    /// `&self`: the streaming histogram summarizes from a snapshot of its
    /// atomics, with no sort-on-read (the exact `chc_sim::Histogram`
    /// remains available where tests need exact percentiles).
    pub fn latency_summary(&self) -> Summary {
        let p = |p: f64| SimDuration::from_nanos(self.latency.percentile(p));
        Summary {
            p5: p(5.0),
            p25: p(25.0),
            p50: p(50.0),
            p75: p(75.0),
            p95: p(95.0),
            mean: SimDuration::from_nanos(self.latency.mean() as u64),
            count: self.latency.len(),
        }
    }

    /// All alerts raised anywhere in the chain, sorted by packet clock.
    pub fn alerts(&self) -> Vec<(Clock, String)> {
        let mut alerts: Vec<(Clock, String)> = self
            .instances
            .iter()
            .flat_map(|r| r.alerts.clone())
            .collect();
        alerts.sort();
        alerts
    }

    /// Digest of the final shared state (see [`shared_state_digest`]),
    /// excluding framework metadata persisted under the root's pseudo
    /// vertex — it has no NF-state meaning and differs legitimately across
    /// substrates.
    pub fn shared_digest(&self) -> BTreeMap<String, String> {
        shared_state_digest(
            self.final_state
                .iter()
                .filter(|(k, _, _)| k.vertex != ROOT_VERTEX)
                .cloned(),
        )
    }
}

/// Render a value into a canonical, order-insensitive form.
///
/// List contents are sorted: the store serializes concurrent pops/pushes in
/// arrival order, and arrival order legitimately differs between the
/// simulator's virtual time and real threads — but the *multiset* of, e.g.,
/// remaining free NAT ports must match exactly.
fn canonical_value(v: &Value) -> String {
    match v {
        Value::List(items) => {
            let mut rendered: Vec<String> = items.iter().map(canonical_value).collect();
            rendered.sort();
            format!("list{{{}}}", rendered.join(","))
        }
        Value::Bytes(b) => format!("bytes{b:02x?}"),
        other => other.to_string(),
    }
}

/// Digest the *shared* (cross-flow) objects of a store dump: canonical key →
/// canonical value, in key order.
///
/// Per-flow objects are excluded deliberately: their values may depend on
/// store arrival order (the NAT maps each connection to *a* unique free
/// port, but which one depends on pop order), while shared objects — packet
/// counters, the remaining port pool, blacklists — must be identical across
/// substrates for chain output equivalence to hold.
pub fn shared_state_digest(
    entries: impl IntoIterator<Item = (StateKey, Value, Option<InstanceId>)>,
) -> BTreeMap<String, String> {
    entries
        .into_iter()
        .filter(|(_, _, owner)| owner.is_none())
        .map(|(k, v, _)| (k.to_string(), canonical_value(&v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_store::ObjectKey;

    fn key(name: &str) -> StateKey {
        StateKey::shared(VertexId(1), ObjectKey::named(name))
    }

    #[test]
    fn digest_ignores_list_order_and_per_flow_entries() {
        let a = vec![
            (key("pool"), Value::list_of_ints([3, 1, 2]), None),
            (key("count"), Value::Int(7), None),
            (key("flow"), Value::Int(9), Some(InstanceId(0))),
        ];
        let b = vec![
            (key("count"), Value::Int(7), None),
            (key("pool"), Value::list_of_ints([2, 3, 1]), None),
            (key("flow"), Value::Int(1234), Some(InstanceId(5))),
        ];
        let da = shared_state_digest(a);
        let db = shared_state_digest(b);
        assert_eq!(da, db);
        assert_eq!(da.len(), 2, "per-flow entries excluded");
    }

    #[test]
    fn digest_detects_real_differences() {
        let a = vec![(key("count"), Value::Int(7), None)];
        let b = vec![(key("count"), Value::Int(8), None)];
        assert_ne!(shared_state_digest(a), shared_state_digest(b));
    }
}
