//! Fail-stop fault injection for the real-thread engine.
//!
//! A [`FaultPlan`] describes, ahead of a run, the failures the engine must
//! execute on real threads — the wall-clock counterpart of the simulator's
//! `ChainController::fail_instance` / `failover_instance` drills:
//!
//! * **Instance kills** ([`InstanceKill`]): the target instance's thread
//!   fail-stops the first time it dequeues a *live* packet whose logical
//!   clock counter reaches the trigger. Its unflushed output batches are
//!   lost (exactly what a crashed process would lose); its SPSC wiring is
//!   handed to the supervisor, which spawns a replacement thread under a
//!   fresh instance id, re-associates the failed instance's per-flow store
//!   state, and replays the root's packet log through dedicated replay rings
//!   (see [`crate::replay`]).
//! * **Shard restarts** ([`ShardFault`]): when the root's injection counter
//!   reaches the trigger, the named store shard is crashed and rebuilt from
//!   its durable checkpoint + write-ahead journal
//!   ([`chc_store::StoreServer::restart_shard`]) while concurrent clients
//!   block on the shard lock — an outage visible as latency, never as lost
//!   or phantom state.
//! * **Re-injections** (`reinject`): after the trace, the root re-sends the
//!   listed logged packets unmarked. With duplicate suppression disabled
//!   this drives exactly-counted duplicates into the sink's accounting
//!   (the "no silent dedup" check); with suppression enabled it exercises
//!   the queue-level suppression path.
//!
//! Keying every trigger on the *logical clock* (not wall time) keeps fault
//! schedules reproducible across runs and portable to the simulator, which
//! is what the cross-substrate failure-equivalence tests rely on.

use chc_core::VertexLogStats;
use chc_store::{InstanceId, VertexId};
use std::time::Duration;

/// Kill the `index`-th instance of `vertex` when it first dequeues a live
/// packet with clock counter `>= at_counter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceKill {
    /// The vertex whose instance dies.
    pub vertex: VertexId,
    /// Index of the instance within the vertex (splitter index order).
    pub index: usize,
    /// First logical-clock counter that triggers the fail-stop.
    pub at_counter: u64,
}

/// Crash-and-recover one store shard when the root's injection counter
/// reaches `at_counter`, optionally checkpointing it earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Index of the store shard to restart.
    pub shard: usize,
    /// Injection counter at which the shard is crashed and recovered.
    pub at_counter: u64,
    /// Injection counter at which a checkpoint is taken first (recovery then
    /// replays only the journal suffix; `None` replays the whole journal).
    pub checkpoint_at: Option<u64>,
}

/// A pre-planned schedule of fail-stop failures for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Instance fail-stops, in failover order (replacement instance ids are
    /// assigned in this order, matching the order the simulator test calls
    /// `failover_instance`).
    pub kills: Vec<InstanceKill>,
    /// Store shard restarts.
    pub shard_faults: Vec<ShardFault>,
    /// Clock counters of logged packets the root re-injects after the trace.
    pub reinject: Vec<u64>,
    /// Fail-stop the root stamping thread just before it would inject this
    /// clock counter. A pre-spawned warm standby that shadows the root's
    /// counter takes over: it replays the unconfirmed suffix of the root log
    /// and resumes injection where the root died (§5.4, "root" failover).
    pub root_kill: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no failures).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing (the engine then runs the
    /// zero-overhead healthy path: no packet log, no commit publishing).
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.shard_faults.is_empty()
            && self.reinject.is_empty()
            && self.root_kill.is_none()
    }

    /// Builder-style instance kill.
    pub fn kill(mut self, vertex: VertexId, index: usize, at_counter: u64) -> FaultPlan {
        self.kills.push(InstanceKill {
            vertex,
            index,
            at_counter,
        });
        self
    }

    /// Builder-style shard restart.
    pub fn restart_shard(
        mut self,
        shard: usize,
        at_counter: u64,
        checkpoint_at: Option<u64>,
    ) -> FaultPlan {
        self.shard_faults.push(ShardFault {
            shard,
            at_counter,
            checkpoint_at,
        });
        self
    }

    /// Builder-style re-injection of logged packets after the trace.
    pub fn reinject(mut self, counters: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.reinject.extend(counters);
        self
    }

    /// Builder-style root kill: the stamping thread fail-stops just before
    /// injecting `at_counter` and the warm standby takes over.
    pub fn kill_root(mut self, at_counter: u64) -> FaultPlan {
        self.root_kill = Some(at_counter);
        self
    }
}

/// What one instance failover did (one entry per executed [`InstanceKill`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRecovery {
    /// Vertex of the killed instance.
    pub vertex: VertexId,
    /// Index of the killed instance within the vertex.
    pub index: usize,
    /// Id of the instance that died.
    pub failed_instance: InstanceId,
    /// Id of the replacement instance.
    pub replacement: InstanceId,
    /// Logged packets replayed to bring the replacement up to date.
    pub packets_replayed: u64,
    /// Wall-clock time from fail-stop detection to replay completion (the
    /// replacement is processing live traffic again from this point on).
    pub recovery_wall: Duration,
}

/// What one shard restart did (one entry per executed [`ShardFault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecovery {
    /// The restarted shard.
    pub shard: usize,
    /// Injection counter at which the restart ran.
    pub at_counter: u64,
    /// Objects restored from the checkpoint.
    pub restored_from_checkpoint: usize,
    /// Journal operations re-applied on top of the checkpoint.
    pub replayed_ops: usize,
    /// Wall-clock duration of crash + recovery (clients blocked this long).
    pub recovery_wall: Duration,
}

/// What the warm standby did after the root fail-stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootTakeover {
    /// Counter the root was about to inject when it died.
    pub killed_at: u64,
    /// First counter the standby stamped after taking over.
    pub resumed_at: u64,
    /// Unconfirmed logged packets the standby replayed before resuming.
    pub packets_replayed: u64,
    /// Wall-clock time from handover to live injection resuming.
    pub recovery_wall: Duration,
}

/// A failover the supervisor had to abandon mid-flight instead of letting
/// the run hang or panic: the replay ring stalled (its replacement consumer
/// stopped draining), or no replacement seed existed for the failed slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverAbort {
    /// Vertex of the failed slot (`VertexId(u32::MAX)` when the slot could
    /// not be resolved to a seed).
    pub vertex: VertexId,
    /// Replica index of the failed slot.
    pub index: usize,
    /// Why the failover was abandoned.
    pub reason: String,
}

/// Fault-injection outcome of one run, attached to
/// [`crate::RuntimeReport::fault`] when a [`FaultPlan`] was active.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// One record per executed instance failover.
    pub recoveries: Vec<InstanceRecovery>,
    /// One record per executed shard restart.
    pub shard_recoveries: Vec<ShardRecovery>,
    /// Largest root packet log observed (packets).
    pub log_high_water: usize,
    /// Log entries dropped by commit-frontier truncation.
    pub log_truncated: u64,
    /// Packets still logged when the run ended (unconfirmed by the commit
    /// frontier; a conservative, not an exact, completion measure).
    pub log_final_len: usize,
    /// Packets the root rejected because the log was full.
    pub log_rejected: u64,
    /// Logged packets re-injected after the trace.
    pub reinjected: u64,
    /// The warm standby's takeover record, when the plan killed the root.
    pub root_takeover: Option<RootTakeover>,
    /// Failovers abandoned instead of hanging the run (normally empty).
    pub aborts: Vec<FailoverAbort>,
    /// Per-vertex egress log statistics (one entry per armed upstream of a
    /// killed non-entry vertex; empty when every kill was at an entry).
    pub vertex_logs: Vec<VertexLogStats>,
}

impl FaultReport {
    /// Total packets replayed across all instance failovers.
    pub fn packets_replayed(&self) -> u64 {
        self.recoveries.iter().map(|r| r.packets_replayed).sum()
    }

    /// The longest single recovery (instance failovers, shard restarts and
    /// the root takeover).
    pub fn max_recovery_wall(&self) -> Duration {
        self.recoveries
            .iter()
            .map(|r| r.recovery_wall)
            .chain(self.shard_recoveries.iter().map(|r| r.recovery_wall))
            .chain(self.root_takeover.iter().map(|r| r.recovery_wall))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        let plan = FaultPlan::new()
            .kill(VertexId(1), 0, 500)
            .restart_shard(2, 800, Some(400))
            .reinject([10, 20]);
        assert!(!plan.is_empty());
        assert_eq!(plan.kills.len(), 1);
        assert_eq!(plan.shard_faults[0].checkpoint_at, Some(400));
        assert_eq!(plan.reinject, vec![10, 20]);
        // A root kill alone makes the plan non-empty (the engine must run
        // the fault path to arm the log and the standby).
        let root_only = FaultPlan::new().kill_root(300);
        assert!(!root_only.is_empty());
        assert_eq!(root_only.root_kill, Some(300));
    }

    #[test]
    fn fault_report_aggregates() {
        let report = FaultReport {
            recoveries: vec![InstanceRecovery {
                vertex: VertexId(1),
                index: 0,
                failed_instance: InstanceId(0),
                replacement: InstanceId(2),
                packets_replayed: 40,
                recovery_wall: Duration::from_micros(300),
            }],
            shard_recoveries: vec![ShardRecovery {
                shard: 1,
                at_counter: 700,
                restored_from_checkpoint: 5,
                replayed_ops: 9,
                recovery_wall: Duration::from_micros(900),
            }],
            ..FaultReport::default()
        };
        assert_eq!(report.packets_replayed(), 40);
        assert_eq!(report.max_recovery_wall(), Duration::from_micros(900));
    }
}
