//! Bounded single-producer/single-consumer ring queues.
//!
//! The real-thread chain engine connects every (upstream instance,
//! downstream instance) pair with exactly one of these rings, so each ring
//! has one producer thread and one consumer thread by construction — the
//! classic Lamport queue applies and no lock is ever taken on the packet
//! path. Two details matter for throughput:
//!
//! * **index caching** — the producer caches the consumer's head (and vice
//!   versa) and refreshes it only when the ring looks full/empty, so the
//!   common case touches a single cache line, and
//! * **batched transfer** — [`Producer::push_batch`] writes up to a whole
//!   batch of items with *one* release store of the tail, and
//!   [`Consumer::pop_batch`] mirrors that with one release store of the
//!   head. Batching amortizes the inter-core coherence traffic the same way
//!   the paper's prototype amortizes NIC and store-client overheads.
//!
//! Capacity is rounded up to a power of two; indices grow monotonically and
//! are masked on access, which keeps full/empty disambiguation trivial
//! (`tail - head` is the queue length).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Duration;

/// Pad hot atomics to their own cache line to avoid false sharing between
/// the producer's and consumer's counters.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by the producer only.
    tail: CachePadded<AtomicUsize>,
    /// Set once the producer is done; consumer drains and stops.
    closed: AtomicBool,
    /// True while the consumer is parked (or about to park) waiting for
    /// items. The producer checks it after every tail publication and wakes
    /// the sleeper — Dekker-style: the consumer sets it *before* its final
    /// emptiness re-check, the producer reads it *after* its release store,
    /// with `SeqCst` fences pairing the two (see `park_if_empty` / `wake`).
    waiting: AtomicBool,
    /// The parked consumer thread's handle. Off the packet path: locked
    /// only when arming a park or delivering a wake.
    sleeper: Mutex<Option<Thread>>,
}

// SAFETY: the ring is shared by exactly one producer and one consumer (the
// split constructor hands out one handle of each, neither is Clone). Slots
// between head and tail are owned by the consumer, the rest by the producer;
// the acquire/release pairs on head/tail transfer slot ownership.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Create a ring with room for at least `capacity` items, returning the two
/// endpoint handles.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        waiting: AtomicBool::new(false),
        sleeper: Mutex::new(None),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            ring,
            head: 0,
            tail_cache: 0,
        },
    )
}

/// Read-only occupancy view of a ring, for the telemetry monitor thread.
/// Estimates only: the loads are relaxed and unsynchronized with the
/// endpoints, which is fine for a gauge sampled at millisecond cadence.
pub trait RingDepth: Send + Sync {
    /// Items currently queued (approximate).
    fn depth(&self) -> usize;
    /// Ring capacity in items.
    fn capacity(&self) -> usize;
}

impl<T> Ring<T> {
    /// Wake the consumer if it is parked (or arming a park). Called by the
    /// producer after every tail publication and on close.
    ///
    /// The `SeqCst` fence orders our tail/closed store before the `waiting`
    /// load, pairing with the consumer's `waiting` store → fence → tail
    /// re-check in `park_if_empty`: either we observe `waiting` and unpark,
    /// or the consumer's re-check observes our store and it never parks.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.waiting.swap(false, Ordering::SeqCst) {
            let sleeper = self.sleeper.lock().expect("sleeper lock poisoned").take();
            if let Some(t) = sleeper {
                t.unpark();
            }
        }
    }
}

impl<T: Send> RingDepth for Ring<T> {
    fn depth(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

/// A type-erased occupancy probe, detachable from the ring's endpoints so
/// the monitor thread can watch rings whose handles live on other threads.
pub type RingProbe = Arc<dyn RingDepth>;

/// The writing end of a ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of the tail (only this thread advances it).
    tail: usize,
    /// Last observed head; refreshed only when the ring looks full.
    head_cache: usize,
}

impl<T> Producer<T> {
    /// Free slots available, refreshing the cached head only when the cache
    /// cannot satisfy a request for `want` slots.
    fn free(&mut self, want: usize) -> usize {
        let cap = self.ring.mask + 1;
        let mut free = cap - (self.tail - self.head_cache);
        if free < want {
            self.head_cache = self.ring.head.0.load(Ordering::Acquire);
            free = cap - (self.tail - self.head_cache);
        }
        free
    }

    /// Try to enqueue one item; returns it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.free(1) == 0 {
            return Err(item);
        }
        // SAFETY: the slot at `tail` is outside [head, tail) so the consumer
        // does not touch it until the release store below publishes it.
        unsafe {
            (*self.ring.buf[self.tail & self.ring.mask].get()).write(item);
        }
        self.tail += 1;
        self.ring.tail.0.store(self.tail, Ordering::Release);
        self.ring.wake();
        Ok(())
    }

    /// Enqueue up to `items.len()` items from the front of `items` with a
    /// single tail publication; returns how many were moved (the moved
    /// prefix is drained from the vector).
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        let n = self.free(items.len()).min(items.len());
        if n == 0 {
            return 0;
        }
        for item in items.drain(..n) {
            // SAFETY: as in `push`; all written slots are published together
            // by the single release store below.
            unsafe {
                (*self.ring.buf[self.tail & self.ring.mask].get()).write(item);
            }
            self.tail += 1;
        }
        self.ring.tail.0.store(self.tail, Ordering::Release);
        self.ring.wake();
        n
    }

    /// Mark the stream finished. The consumer drains what is queued and then
    /// observes exhaustion.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
        self.ring.wake();
    }
}

impl<T: Send + 'static> Producer<T> {
    /// Detach an occupancy probe for the telemetry monitor.
    pub fn depth_probe(&self) -> RingProbe {
        Arc::clone(&self.ring) as RingProbe
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The reading end of a ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of the head (only this thread advances it).
    head: usize,
    /// Last observed tail; refreshed only when the ring looks empty.
    tail_cache: usize,
}

impl<T> Consumer<T> {
    /// Items available, refreshing the cached tail only when the cache
    /// cannot satisfy a request for `want` items.
    fn available(&mut self, want: usize) -> usize {
        let mut avail = self.tail_cache - self.head;
        if avail < want {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
            avail = self.tail_cache - self.head;
        }
        avail
    }

    /// Dequeue one item, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.available(1) == 0 {
            return None;
        }
        // SAFETY: the slot at `head` was published by the producer's release
        // store of a tail beyond it, which our acquire load observed.
        let item = unsafe { (*self.ring.buf[self.head & self.ring.mask].get()).assume_init_read() };
        self.head += 1;
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Dequeue up to `max` items into `out` with a single head publication;
    /// returns how many were moved.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.available(max).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for _ in 0..n {
            // SAFETY: as in `pop`; the whole run [head, head+n) was published
            // before the tail value we read.
            let item =
                unsafe { (*self.ring.buf[self.head & self.ring.mask].get()).assume_init_read() };
            out.push(item);
            self.head += 1;
        }
        self.ring.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Park this thread until the producer publishes an item, closes the
    /// ring, or `timeout` elapses — the blocking leg of [`RingWait::Park`]
    /// (callers spin/yield briefly first; see `chc_runtime::config`).
    ///
    /// Returns `false` without parking if items are already available or the
    /// ring is closed. The timeout is a lost-wake safety net only — the
    /// arm/wake fences make a genuine lost wake impossible — and bounds the
    /// latency of any future protocol bug to one timeout period.
    ///
    /// [`RingWait::Park`]: crate::config::RingWait::Park
    pub fn park_if_empty(&mut self, timeout: Duration) -> bool {
        *self.ring.sleeper.lock().expect("sleeper lock poisoned") = Some(thread::current());
        self.ring.waiting.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Fresh re-check after arming: pairs with the producer's
        // store → fence → `waiting` load in `Ring::wake`.
        self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
        if self.tail_cache != self.head || self.ring.closed.load(Ordering::Acquire) {
            self.ring.waiting.store(false, Ordering::SeqCst);
            return false;
        }
        thread::park_timeout(timeout);
        self.ring.waiting.store(false, Ordering::SeqCst);
        true
    }

    /// True while the producer has not closed the ring, i.e. items may
    /// still arrive. A cheap non-mutating probe for choosing a ring worth
    /// parking on.
    pub fn has_open_producer(&self) -> bool {
        !self.ring.closed.load(Ordering::Acquire)
    }

    /// True once the producer closed the ring *and* everything was drained.
    pub fn is_exhausted(&mut self) -> bool {
        // Check closed before re-checking emptiness: the producer publishes
        // items before closing, so "closed then empty" implies exhausted.
        self.ring.closed.load(Ordering::Acquire) && self.available(1) == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(99).is_err(), "ring is full");
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn batched_transfer_moves_prefixes() {
        let (mut tx, mut rx) = ring::<u64>(4);
        let mut pending: Vec<u64> = (0..10).collect();
        assert_eq!(tx.push_batch(&mut pending), 4);
        assert_eq!(pending.len(), 6, "unmoved suffix stays");
        let mut got = Vec::new();
        assert_eq!(rx.pop_batch(&mut got, 3), 3);
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(tx.push_batch(&mut pending), 3);
        rx.pop_batch(&mut got, usize::MAX);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn close_signals_exhaustion_after_drain() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.push(1).unwrap();
        tx.close();
        assert!(!rx.is_exhausted(), "still holds an item");
        assert_eq!(rx.pop(), Some(1));
        assert!(rx.is_exhausted());
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 1_000_000;
        let (mut tx, mut rx) = ring::<u64>(1024);
        let producer = thread::spawn(move || {
            let mut batch = Vec::with_capacity(64);
            let mut next = 0u64;
            while next < N {
                while batch.len() < 64 && next < N {
                    batch.push(next);
                    next += 1;
                }
                while !batch.is_empty() {
                    if tx.push_batch(&mut batch) == 0 {
                        std::hint::spin_loop();
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut buf = Vec::with_capacity(64);
        loop {
            buf.clear();
            if rx.pop_batch(&mut buf, 64) == 0 {
                if rx.is_exhausted() {
                    break;
                }
                std::hint::spin_loop();
                continue;
            }
            for v in &buf {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, N);
    }

    #[test]
    fn depth_probe_tracks_occupancy() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let probe = tx.depth_probe();
        assert_eq!(probe.capacity(), 8);
        assert_eq!(probe.depth(), 0);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(probe.depth(), 5);
        rx.pop();
        rx.pop();
        assert_eq!(probe.depth(), 3);
        drop((tx, rx));
        assert_eq!(probe.depth(), 0, "consumer drop drains the ring");
    }

    #[test]
    fn parked_consumer_wakes_on_push_and_close() {
        let (mut tx, mut rx) = ring::<u64>(8);
        // Items already queued: the arm re-check refuses to park.
        tx.push(7).unwrap();
        assert!(!rx.park_if_empty(Duration::from_secs(5)));
        assert_eq!(rx.pop(), Some(7));

        // A parked consumer is woken by the next push — well before the
        // generous timeout — and by close.
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                if rx.pop_batch(&mut got, 64) == 0 {
                    if rx.is_exhausted() {
                        break;
                    }
                    rx.park_if_empty(Duration::from_secs(60));
                }
            }
            got
        });
        thread::sleep(Duration::from_millis(20));
        for i in 0..100u64 {
            let mut item = i;
            while let Err(back) = tx.push(item) {
                item = back;
                thread::yield_now();
            }
            if i % 10 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        tx.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn drop_runs_destructors_of_queued_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, _rx) = ring::<D>(8);
            for _ in 0..5 {
                tx.push(D).unwrap();
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
