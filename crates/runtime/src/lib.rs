//! # chc-runtime
//!
//! The real-thread execution substrate for CHC chains.
//!
//! The simulator in [`chc_sim`] runs chains deterministically in virtual
//! time; this crate runs the *same* [`chc_core::LogicalDag`] — the same
//! [`chc_core::NetworkFunction`] implementations, the same
//! [`chc_core::StateClient`] caching strategies, the same scope-aware
//! [`chc_core::Splitter`] partitioning — on OS threads against wall clocks,
//! the way the paper's prototype runs on its testbed (§6–§7):
//!
//! * **one thread per NF instance**, connected by bounded lock-free SPSC
//!   rings ([`spsc`]) with **batched** transfer (configurable
//!   [`RuntimeConfig::batch_size`]),
//! * a **root thread** that stamps per-packet logical clocks in trace order
//!   (requirement R4) and feeds the entry splitters,
//! * a **sharded store backend** ([`chc_store::StoreServer`]) in which each
//!   state object is pinned to exactly one shard by key hash, matching the
//!   paper's no-locking datastore design (§4.3), and
//! * a **sink** that de-duplicates by clock and reports delivered packets,
//!   throughput and root→sink latency percentiles.
//!
//! Elastic scale-out is supported as a pre-planned event whose traffic cut
//! is keyed on the logical clock ([`RuntimeConfig::with_scale`]); because the
//! simulator's `ChainController::schedule_scale_up` keys the cut the same
//! way, a given seeded trace partitions identically on both substrates and
//! the outputs can be checked for chain output equivalence
//! ([`report::shared_state_digest`]).
//!
//! **Fail-stop failure injection** runs on the same wall-clock path
//! ([`RuntimeConfig::fault`], [`fault::FaultPlan`]) and covers **every
//! chain position**: the root keeps a bounded packet log keyed by logical
//! clock, upstreams of any killed mid-chain or tail vertex additionally
//! keep per-vertex egress logs (FTMB-style output logging), and chain
//! components publish commit watermarks to the store so every log can be
//! truncated at its own frontier. A supervisor thread executes planned
//! instance kills — spawning a replacement thread on the dead instance's
//! SPSC wiring and replaying the killed vertex's upstream (or root) log
//! through dedicated replay rings at the right chain depth ([`replay`]) —
//! tail re-emission is bounded by the paper's per-packet XOR delete window
//! (Figure 6), a pre-spawned warm standby takes over root stamping when
//! the plan kills the root ([`fault::RootTakeover`]), and store shard
//! restarts replay per-shard write-ahead journals. Failovers that cannot
//! complete are surfaced as [`fault::FailoverAbort`] records instead of
//! hanging the run. Recovery metrics (packets replayed, log high-water
//! marks, recovery wall-clock time) land in [`RuntimeReport::fault`].
//! Straggler cloning remains simulator-only; see `DESIGN.md`.
//!
//! **Observability** ([`TelemetryConfig`]): per-stage latency decomposition
//! via telescoping hop stamps, a control-plane event journal, live gauge
//! sampling, flow-sampled **causal tracing**
//! ([`RuntimeConfig::with_trace_sample_ppm`]) whose per-hop spans export as
//! Perfetto-loadable Chrome trace JSON
//! ([`chc_telemetry::chrome_trace_json`]), and an online **invariant
//! sentinel** ([`RuntimeConfig::with_sentinel`]) that continuously checks
//! commit-frontier monotonicity, per-flow delivery order, packet
//! conservation, exactly-once delivery, the root-log bound and failover
//! phase order, reporting violations in [`RuntimeReport::invariants`].

pub mod config;
pub mod engine;
pub mod fault;
pub mod replay;
pub mod report;
pub mod spsc;
pub mod telemetry;

pub use config::{RingWait, RuntimeConfig, ScaleEvent, TelemetryConfig};
pub use engine::{run_chain_realtime, RuntimeError};
pub use fault::{
    FailoverAbort, FaultPlan, FaultReport, InstanceKill, InstanceRecovery, RootTakeover,
    ShardFault, ShardRecovery,
};
pub use report::{shared_state_digest, RuntimeInstanceReport, RuntimeReport};
pub use telemetry::{StageReport, TelemetryReport};

// Sentinel and tracing vocabulary, re-exported so report consumers need not
// depend on chc-telemetry directly.
pub use chc_telemetry::{
    chrome_trace_json, validate_chrome_trace, InvariantKind, SentinelReport, SpanEvent, SpanKind,
    TraceLane, TraceShape, Violation,
};
