//! Configuration of the real-thread chain engine.

use crate::fault::FaultPlan;
use chc_store::{BackendKind, VertexId};
use std::time::Duration;

/// A pre-planned elastic scale-out event.
///
/// The engine pre-spawns the additional instance's thread at startup and
/// cuts traffic over on the packet's *logical clock*: packets stamped with
/// counter `>= first_counter` hash across the enlarged instance set. Keying
/// the cut on the clock (not wall time) makes the flow→instance history a
/// pure function of the input trace, so the same event on the simulator
/// (`ChainController::schedule_scale_up`) partitions identically — the
/// substrate-equivalence tests depend on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The vertex that gains an instance.
    pub vertex: VertexId,
    /// First logical-clock counter routed across the enlarged instance set.
    pub first_counter: u64,
}

/// What the engine measures beyond the end-to-end latency histogram.
///
/// Everything here is a *runtime* switch, not a compile feature, so one
/// binary can measure its own observation overhead (the benchmark runs the
/// same chain with telemetry on and [`TelemetryConfig::disabled`] and
/// reports the throughput delta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Per-stage span timing on the packet path: per-vertex queue wait,
    /// service time and store RTT, plus the sink's final-hop wait, so the
    /// report carries a latency *decomposition* rather than a single
    /// root→sink number. Costs one clock read per packet per vertex (each
    /// packet's egress stamp doubles as the next packet's ingress stamp),
    /// plus one per ring batch.
    pub spans: bool,
    /// Structured event journal of control-plane moments (instance
    /// spawn/kill, failover phases, commit-frontier advances, scale cuts,
    /// shard restarts). Control-plane rate; negligible cost.
    pub journal: bool,
    /// When set, a monitor thread samples live gauges (SPSC ring occupancy,
    /// per-shard op rates, WAL depth, packet-log level, replay progress) at
    /// this cadence and the report carries the time series.
    pub sample_interval: Option<Duration>,
    /// Causal-trace sampling rate in parts per million of *flows*
    /// (`1_000_000` traces everything, `10_000` is 1%, `0` disables).
    /// Sampled flows' packets carry a [`chc_packet::TraceTag`] and every
    /// hop records a span; the collected spans export as Chrome trace-event
    /// JSON. Requires `spans` (tracing reuses the telescoping hop stamps).
    pub trace_sample_ppm: u32,
    /// Online invariant sentinel: a consumer thread over the event journal
    /// plus in-line checks on the delivery stream and a copy-conservation
    /// ledger on the rings. Violations land in the journal and in
    /// `RuntimeReport::invariants`. On by default — correctness monitoring
    /// is cheap (per-batch counters and one sink-side map lookup per
    /// packet) and every test asserts `violations == 0` for free.
    pub sentinel: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            spans: true,
            journal: true,
            sample_interval: None,
            trace_sample_ppm: 0,
            sentinel: true,
        }
    }
}

impl TelemetryConfig {
    /// Everything off: the engine records only the streaming end-to-end
    /// latency histogram (the baseline for overhead measurements).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            spans: false,
            journal: false,
            sample_interval: None,
            trace_sample_ppm: 0,
            sentinel: false,
        }
    }

    /// True when nothing is enabled.
    pub fn is_disabled(&self) -> bool {
        !self.spans
            && !self.journal
            && self.sample_interval.is_none()
            && self.trace_sample_ppm == 0
            && !self.sentinel
    }

    /// True when causal tracing is effectively on (a nonzero sampling rate
    /// and the hop stamps it needs).
    pub fn tracing_on(&self) -> bool {
        self.trace_sample_ppm > 0 && self.spans
    }
}

/// How a thread waits on an empty (or full) SPSC ring.
///
/// The engine's instance and sink threads outnumber the host's cores in
/// every CI/bench environment this repo targets, so the waiting policy is a
/// first-order throughput knob: a spinning consumer steals the cycles its
/// own producer needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingWait {
    /// Pure `spin_loop` busy-wait. Lowest latency when every thread has a
    /// dedicated core; pathological when threads are oversubscribed.
    Spin,
    /// Brief spin, then `thread::yield_now` — the scheduler decides who
    /// runs. The engine's historical behaviour.
    Yield,
    /// Brief spin, a few yields, then park the thread; the producer wakes
    /// it on the next push. Frees the core for whoever has work.
    Park,
}

/// Tuning knobs of the real-thread engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Packets moved per ring transfer and processed per wake-up. Larger
    /// batches amortize queue and store-client overhead at the cost of
    /// per-packet latency (§7's hardware runs batch at the NIC; here the
    /// batch rides the SPSC rings).
    pub batch_size: usize,
    /// Capacity of each inter-instance ring, in packets (rounded up to a
    /// power of two). Bounds memory and provides backpressure.
    pub queue_depth: usize,
    /// Number of store shards. The paper pins each object to exactly one
    /// store thread; here each shard is an independently locked instance of
    /// the sharded [`chc_store::StoreServer`].
    pub store_shards: usize,
    /// Storage engine the store server runs its shards on. Defaults to the
    /// engine named by the `CHC_STORE_BACKEND` environment variable (the CI
    /// knob), which is the in-memory engine unless overridden. The whole
    /// engine — write-behind fast path, failover supervisor, shard restarts —
    /// runs unmodified on either engine.
    pub store_backend: BackendKind,
    /// Optional pre-planned elastic scale-out event.
    pub scale: Option<ScaleEvent>,
    /// Record client-side WAL / read logs (needed only when a store recovery
    /// drill will run against this chain; they grow with the packet count).
    pub record_recovery_logs: bool,
    /// Tag store operations with packet clocks (duplicate suppression and
    /// `TS` metadata). Disable only for bare-metal throughput measurements.
    pub clock_tag_updates: bool,
    /// Pre-planned fail-stop failures the engine must execute and recover
    /// from (instance kills with replay, store shard restarts, packet
    /// re-injection). An empty plan keeps the zero-overhead healthy path:
    /// no packet log, no commit publishing, no duplicate tracking.
    pub fault: FaultPlan,
    /// What to measure beyond the end-to-end latency histogram (spans,
    /// event journal, gauge sampling). See [`TelemetryConfig`].
    pub telemetry: TelemetryConfig,
    /// Legacy failover validation: reject kills at non-entry vertices
    /// (`KillNotAtEntry`) and at on-path chain tails (`KillAtChainTail`), as
    /// the engine did before per-vertex egress logs and the XOR delete
    /// window made every position recoverable. Off by default; kept as an
    /// escape hatch for reproducing the old entry-only behaviour.
    pub legacy_entry_only_failover: bool,
    /// Write-behind store fast path: each instance's `StateClient` buffers
    /// non-blocking store ops and drains them as one
    /// [`chc_store::StoreServer::apply_batch`] per ring batch (and before
    /// every correctness barrier — commit publish, blocking read/pop,
    /// exclusivity loss, kill). On by default; switch off to reproduce the
    /// per-op submission path (the equivalence tests assert identical
    /// delivery either way).
    pub write_behind: bool,
    /// Cap on the write-behind buffer, in ops. `0` (the default) sizes it
    /// to track `batch_size`: the buffer then drains exactly at ring-batch
    /// boundaries unless an op-heavy batch overflows it first.
    pub store_batch: usize,
    /// Ring waiting policy for instance and sink threads. Defaults to
    /// [`RingWait::Park`]: on the shared-core hosts this repo benches on,
    /// parked consumers stop stealing cycles from their producers (`Spin`
    /// is strictly worse whenever threads exceed cores).
    pub ring_wait: RingWait,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            batch_size: 32,
            queue_depth: 1024,
            store_shards: 4,
            store_backend: BackendKind::from_env(),
            scale: None,
            record_recovery_logs: false,
            clock_tag_updates: true,
            fault: FaultPlan::default(),
            telemetry: TelemetryConfig::default(),
            legacy_entry_only_failover: false,
            write_behind: true,
            store_batch: 0,
            ring_wait: RingWait::Park,
        }
    }
}

impl RuntimeConfig {
    /// A config with the given batch size and defaults elsewhere.
    pub fn with_batch_size(batch_size: usize) -> RuntimeConfig {
        RuntimeConfig {
            batch_size: batch_size.max(1),
            ..Default::default()
        }
    }

    /// Builder-style scale-event setter.
    pub fn with_scale(mut self, vertex: VertexId, first_counter: u64) -> RuntimeConfig {
        self.scale = Some(ScaleEvent {
            vertex,
            first_counter,
        });
        self
    }

    /// Builder-style store-shard setter.
    pub fn with_store_shards(mut self, shards: usize) -> RuntimeConfig {
        self.store_shards = shards.max(1);
        self
    }

    /// Builder-style storage-engine setter (overrides the environment
    /// default).
    pub fn with_store_backend(mut self, kind: BackendKind) -> RuntimeConfig {
        self.store_backend = kind;
        self
    }

    /// Builder-style fault-plan setter.
    pub fn with_fault(mut self, fault: FaultPlan) -> RuntimeConfig {
        self.fault = fault;
        self
    }

    /// Builder-style telemetry setter.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> RuntimeConfig {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style gauge-sampling cadence (implies a monitor thread).
    pub fn with_sample_interval(mut self, interval: Duration) -> RuntimeConfig {
        self.telemetry.sample_interval = Some(interval);
        self
    }

    /// Builder-style causal-trace sampling rate, in parts per million of
    /// flows (`1_000_000` traces everything). Implies spans.
    pub fn with_trace_sample_ppm(mut self, ppm: u32) -> RuntimeConfig {
        self.telemetry.trace_sample_ppm = ppm.min(chc_packet::TRACE_PPM_FULL);
        if ppm > 0 {
            self.telemetry.spans = true;
        }
        self
    }

    /// Builder-style invariant-sentinel switch.
    pub fn with_sentinel(mut self, on: bool) -> RuntimeConfig {
        self.telemetry.sentinel = on;
        self
    }

    /// Builder-style switch back to the legacy entry-only failover
    /// validation (rejects non-entry and tail kills).
    pub fn with_legacy_entry_only_failover(mut self, on: bool) -> RuntimeConfig {
        self.legacy_entry_only_failover = on;
        self
    }

    /// Builder-style write-behind switch.
    pub fn with_write_behind(mut self, on: bool) -> RuntimeConfig {
        self.write_behind = on;
        self
    }

    /// Builder-style write-behind buffer cap (`0` tracks `batch_size`).
    pub fn with_store_batch(mut self, cap: usize) -> RuntimeConfig {
        self.store_batch = cap;
        self
    }

    /// Builder-style ring-wait policy setter.
    pub fn with_ring_wait(mut self, wait: RingWait) -> RuntimeConfig {
        self.ring_wait = wait;
        self
    }

    /// The write-behind buffer cap an instance client should use: the
    /// explicit `store_batch` if set, otherwise the ring batch size (drain
    /// at batch boundaries, never later).
    pub fn effective_store_batch(&self) -> usize {
        if self.store_batch > 0 {
            self.store_batch
        } else {
            self.batch_size.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let cfg = RuntimeConfig::default();
        assert!(cfg.batch_size > 0 && cfg.queue_depth >= cfg.batch_size);
        assert!(cfg.clock_tag_updates && !cfg.record_recovery_logs);
        let cfg = RuntimeConfig::with_batch_size(0);
        assert_eq!(cfg.batch_size, 1);
        let cfg = cfg.with_scale(VertexId(2), 500).with_store_shards(0);
        assert_eq!(
            cfg.scale,
            Some(ScaleEvent {
                vertex: VertexId(2),
                first_counter: 500
            })
        );
        assert_eq!(cfg.store_shards, 1);
        assert!(cfg.fault.is_empty());
        let cfg = cfg.with_fault(FaultPlan::new().kill(VertexId(1), 0, 100));
        assert_eq!(cfg.fault.kills.len(), 1);
    }

    #[test]
    fn store_backend_knob() {
        // The default follows CHC_STORE_BACKEND (the CI knob), so assert
        // only the explicit override — the suite must pass under either
        // environment value.
        let cfg = RuntimeConfig::default().with_store_backend(BackendKind::AppendOnly);
        assert_eq!(cfg.store_backend, BackendKind::AppendOnly);
        let cfg = cfg.with_store_backend(BackendKind::Memory);
        assert_eq!(cfg.store_backend, BackendKind::Memory);
    }

    #[test]
    fn store_fast_path_knobs() {
        let cfg = RuntimeConfig::default();
        assert!(cfg.write_behind);
        assert_eq!(cfg.ring_wait, RingWait::Park);
        // store_batch = 0 tracks the ring batch size.
        assert_eq!(cfg.effective_store_batch(), cfg.batch_size);
        let cfg = RuntimeConfig::with_batch_size(64)
            .with_store_batch(256)
            .with_ring_wait(RingWait::Spin)
            .with_write_behind(false);
        assert_eq!(cfg.effective_store_batch(), 256);
        assert_eq!(cfg.ring_wait, RingWait::Spin);
        assert!(!cfg.write_behind);
    }

    #[test]
    fn trace_and_sentinel_knobs() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.trace_sample_ppm, 0);
        assert!(cfg.sentinel && !cfg.tracing_on());
        let off = TelemetryConfig::disabled();
        assert!(off.is_disabled() && !off.sentinel);

        let cfg = RuntimeConfig::default()
            .with_trace_sample_ppm(2_000_000)
            .with_sentinel(false);
        assert_eq!(cfg.telemetry.trace_sample_ppm, chc_packet::TRACE_PPM_FULL);
        assert!(cfg.telemetry.tracing_on());
        assert!(!cfg.telemetry.sentinel);

        // Tracing implies spans even from a disabled base.
        let base = RuntimeConfig {
            telemetry: TelemetryConfig::disabled(),
            ..Default::default()
        };
        let traced = base.with_trace_sample_ppm(10_000);
        assert!(traced.telemetry.spans && traced.telemetry.tracing_on());
    }
}
