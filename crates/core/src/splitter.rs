//! Scope-aware traffic partitioning (§4.1).
//!
//! CHC inserts a splitter after every NF instance (and a special root
//! splitter at the chain entry). The splitter partitions the upstream
//! output across the instances of the downstream vertex such that
//! (1) each flow is processed by a single instance, (2) flows that share
//! state land on the same instance whenever the chosen scope allows it, and
//! (3) load stays balanced. The scope is chosen per downstream vertex from
//! the vertex's `.scope()` list, coarse → fine, stopping at the coarsest
//! scope that still balances load ([`choose_partition_scope`]).
//!
//! In this reproduction the partitioning decision is held in a
//! [`PartitionTable`] shared by all upstream senders of a vertex (the paper
//! pushes the same "final scope" to all upstream splitters), so routing is
//! consistent chain-wide and reallocation decisions are made in one place.

use crate::message::PacketMark;
use chc_packet::{Packet, Scope, ScopeKey};
use chc_store::{Clock, VertexId};
use std::collections::HashMap;

/// The routing decision for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index of the chosen downstream instance (into the vertex's instance
    /// list held by the chain controller).
    pub instance_index: usize,
    /// Marks the splitter attached for an ongoing flow move (Figure 4).
    pub mark: PacketMark,
    /// Index of an instance that must receive a *copy* of the packet
    /// (straggler clone replication, §5.3).
    pub mirror_index: Option<usize>,
}

/// Per-downstream-vertex splitter state.
#[derive(Debug, Clone)]
pub struct Splitter {
    /// Downstream vertex this splitter feeds.
    pub vertex: VertexId,
    /// Scope used to partition traffic.
    pub scope: Scope,
    /// Number of downstream instances.
    instances: usize,
    /// Explicit overrides installed by reallocation (scope key → instance).
    overrides: HashMap<ScopeKey, usize>,
    /// Scope keys whose next routed packet must carry the `first_of_move`
    /// mark (the flow was just reallocated to a new instance).
    pending_first_mark: HashMap<ScopeKey, usize>,
    /// Replicate packets routed to `.0` also to `.1` (straggler clone).
    mirror: Option<(usize, usize)>,
    /// Scheduled elastic scale events as `(first_counter, instance_count)`:
    /// packets whose logical-clock counter is `>= first_counter` are hashed
    /// across `instance_count` instances. Keying the cut on the *logical
    /// clock* instead of wall/virtual time makes the flow→instance history a
    /// pure function of the input trace, so the simulator and the real-thread
    /// runtime partition identically and their outputs stay COE-comparable.
    scale_plan: Vec<(u64, usize)>,
}

impl Splitter {
    /// Create a splitter for `vertex` with `instances` downstream instances,
    /// partitioning on `scope`.
    pub fn new(vertex: VertexId, scope: Scope, instances: usize) -> Splitter {
        Splitter {
            vertex,
            scope,
            instances: instances.max(1),
            overrides: HashMap::new(),
            pending_first_mark: HashMap::new(),
            mirror: None,
            scale_plan: Vec::new(),
        }
    }

    /// Schedule an elastic scale event: packets with clock counter
    /// `>= first_counter` are partitioned across `instances` instances.
    /// Events may be scheduled in any order; the one with the largest
    /// matching `first_counter` wins.
    pub fn schedule_scale(&mut self, first_counter: u64, instances: usize) {
        self.scale_plan.push((first_counter, instances.max(1)));
        self.scale_plan.sort_unstable();
    }

    /// The instance count in force for a packet stamped with `clock`.
    pub fn instances_at(&self, clock: Clock) -> usize {
        let mut n = self.instances;
        for (first, count) in &self.scale_plan {
            if clock.counter() >= *first {
                n = *count;
            }
        }
        n
    }

    /// Number of downstream instances.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Grow the downstream instance set (elastic scale-up).
    pub fn set_instance_count(&mut self, n: usize) {
        self.instances = n.max(1);
    }

    /// The scope key a packet maps to under this splitter's scope.
    pub fn scope_key(&self, pkt: &Packet) -> ScopeKey {
        self.scope.key_of(pkt)
    }

    /// Default (hash-based) instance for a scope key, before overrides.
    pub fn default_instance(&self, key: &ScopeKey) -> usize {
        (key.stable_hash() % self.instances as u64) as usize
    }

    /// Current instance for a scope key (overrides included).
    pub fn instance_for_key(&self, key: &ScopeKey) -> usize {
        self.overrides
            .get(key)
            .copied()
            .unwrap_or_else(|| self.default_instance(key))
    }

    /// The instance a packet stamped with `clock` routes to, honoring both
    /// explicit overrides and scheduled scale events. Pure (no mark state),
    /// so the real-thread runtime can route from a shared immutable splitter.
    pub fn instance_for(&self, pkt: &Packet, clock: Clock) -> usize {
        let key = self.scope_key(pkt);
        match self.overrides.get(&key) {
            Some(idx) => *idx,
            None => (key.stable_hash() % self.instances_at(clock) as u64) as usize,
        }
    }

    /// Route a packet carrying a logical clock: like [`Splitter::route`] but
    /// the hash spread honors scale events scheduled for that clock.
    pub fn route_clocked(&mut self, pkt: &Packet, clock: Clock) -> Route {
        let key = self.scope_key(pkt);
        let idx = self.instance_for(pkt, clock);
        let mut mark = PacketMark::default();
        if let Some(target) = self.pending_first_mark.get(&key).copied() {
            if target == idx {
                mark.first_of_move = true;
            }
            self.pending_first_mark.remove(&key);
        }
        let mirror_index = match self.mirror {
            Some((of, to)) if of == idx => Some(to),
            _ => None,
        };
        Route {
            instance_index: idx,
            mark,
            mirror_index,
        }
    }

    /// Route a packet: pick the instance, attach any pending move mark, and
    /// report the mirror target if replication is active.
    pub fn route(&mut self, pkt: &Packet) -> Route {
        let key = self.scope_key(pkt);
        let idx = self.instance_for_key(&key);
        let mut mark = PacketMark::default();
        if let Some(target) = self.pending_first_mark.get(&key).copied() {
            if target == idx {
                mark.first_of_move = true;
            }
            self.pending_first_mark.remove(&key);
        }
        let mirror_index = match self.mirror {
            Some((of, to)) if of == idx => Some(to),
            _ => None,
        };
        Route {
            instance_index: idx,
            mark,
            mirror_index,
        }
    }

    /// Reallocate the given scope keys to `new_instance`. Subsequent packets
    /// of those keys route to the new instance; the first of each carries the
    /// `first_of_move` mark (Figure 4 step 2). Returns the previous instance
    /// of each key so the controller can tell the old instances to flush and
    /// release state (step 1/5).
    pub fn reallocate(&mut self, keys: &[ScopeKey], new_instance: usize) -> Vec<(ScopeKey, usize)> {
        let mut previous = Vec::new();
        for key in keys {
            let old = self.instance_for_key(key);
            if old != new_instance {
                previous.push((*key, old));
                self.overrides.insert(*key, new_instance);
                self.pending_first_mark.insert(*key, new_instance);
            }
        }
        previous
    }

    /// All scope keys currently assigned (by override) to `instance`.
    pub fn keys_assigned_to(&self, instance: usize) -> Vec<ScopeKey> {
        self.overrides
            .iter()
            .filter(|(_, i)| **i == instance)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Start replicating packets routed to instance `of` also to `to`
    /// (straggler clone). Stops any previous replication.
    pub fn set_mirror(&mut self, of: usize, to: usize) {
        self.mirror = Some((of, to));
    }

    /// Stop replication.
    pub fn clear_mirror(&mut self) {
        self.mirror = None;
    }
}

/// The chain-wide partitioning state: one [`Splitter`] per vertex, shared by
/// every upstream sender of that vertex.
#[derive(Debug, Default)]
pub struct PartitionTable {
    splitters: HashMap<VertexId, Splitter>,
}

impl PartitionTable {
    /// Create an empty table.
    pub fn new() -> PartitionTable {
        PartitionTable::default()
    }

    /// Install (or replace) the splitter for a vertex.
    pub fn insert(&mut self, splitter: Splitter) {
        self.splitters.insert(splitter.vertex, splitter);
    }

    /// The splitter feeding `vertex`.
    pub fn splitter(&self, vertex: VertexId) -> Option<&Splitter> {
        self.splitters.get(&vertex)
    }

    /// Mutable access to the splitter feeding `vertex`.
    pub fn splitter_mut(&mut self, vertex: VertexId) -> Option<&mut Splitter> {
        self.splitters.get_mut(&vertex)
    }

    /// Route a packet towards `vertex`.
    pub fn route(&mut self, vertex: VertexId, pkt: &Packet) -> Option<Route> {
        self.splitters.get_mut(&vertex).map(|s| s.route(pkt))
    }

    /// Route a clock-stamped packet towards `vertex` (scale-plan aware).
    pub fn route_clocked(&mut self, vertex: VertexId, pkt: &Packet, clock: Clock) -> Option<Route> {
        self.splitters
            .get_mut(&vertex)
            .map(|s| s.route_clocked(pkt, clock))
    }

    /// Vertices with installed splitters.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.splitters.keys().copied().collect()
    }
}

/// Choose the partitioning scope for a downstream vertex (§4.1).
///
/// `scopes` is the vertex's `.scope()` list ordered fine → coarse (see
/// [`crate::dag::VertexSpec::scopes`]); `sample` is a sample of recent
/// packets (the vertex manager's statistics); `instances` the number of
/// downstream instances; `imbalance_threshold` the tolerated ratio between
/// the most-loaded instance and the average (e.g. 1.5).
///
/// The algorithm walks the list from the *coarsest* scope towards finer ones
/// and returns the first scope whose hash assignment keeps the load within
/// the threshold — coarser scopes minimise cross-instance state sharing, so
/// they are preferred whenever they balance load.
pub fn choose_partition_scope(
    scopes: &[Scope],
    sample: &[Packet],
    instances: usize,
    imbalance_threshold: f64,
) -> Scope {
    if scopes.is_empty() {
        return Scope::FiveTuple;
    }
    if instances <= 1 || sample.is_empty() {
        // A single instance is trivially balanced; use the coarsest scope.
        return *scopes.iter().max().unwrap();
    }
    let mut ordered: Vec<Scope> = scopes.to_vec();
    ordered.sort();
    // coarse → fine
    for scope in ordered.iter().rev() {
        let mut load = vec![0usize; instances];
        for pkt in sample {
            let key = scope.key_of(pkt);
            load[(key.stable_hash() % instances as u64) as usize] += 1;
        }
        let max = *load.iter().max().unwrap() as f64;
        let avg = sample.len() as f64 / instances as f64;
        if max <= avg * imbalance_threshold {
            return *scope;
        }
    }
    // Nothing balanced: fall back to the finest scope (most keys, best
    // balance, most sharing).
    ordered[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::{TraceConfig, TraceGenerator};
    use std::collections::HashSet;

    fn sample(n: usize) -> Vec<Packet> {
        let trace = TraceGenerator::new(TraceConfig::small(3)).generate();
        trace.packets.into_iter().take(n).collect()
    }

    #[test]
    fn flows_stick_to_one_instance() {
        let mut s = Splitter::new(VertexId(1), Scope::FiveTuple, 4);
        let pkts = sample(500);
        let mut seen: HashMap<ScopeKey, usize> = HashMap::new();
        for p in &pkts {
            let r = s.route(p);
            let key = s.scope_key(p);
            let prev = seen.insert(key, r.instance_index);
            if let Some(prev) = prev {
                assert_eq!(prev, r.instance_index, "flow migrated without reallocation");
            }
            assert!(r.instance_index < 4);
            assert!(r.mirror_index.is_none());
        }
    }

    #[test]
    fn reallocation_marks_first_packet_only() {
        let mut s = Splitter::new(VertexId(1), Scope::SrcIp, 2);
        let pkts = sample(50);
        let key = s.scope_key(&pkts[0]);
        let old = s.instance_for_key(&key);
        let new = 1 - old;
        let prev = s.reallocate(&[key], new);
        assert_eq!(prev, vec![(key, old)]);
        // First packet of the moved group carries the mark; later ones do not.
        let matching: Vec<&Packet> = pkts.iter().filter(|p| s.scope_key(p) == key).collect();
        assert!(!matching.is_empty());
        let r1 = s.route(matching[0]);
        assert_eq!(r1.instance_index, new);
        assert!(r1.mark.first_of_move);
        if matching.len() > 1 {
            let r2 = s.route(matching[1]);
            assert!(!r2.mark.first_of_move);
            assert_eq!(r2.instance_index, new);
        }
        assert_eq!(s.keys_assigned_to(new), vec![key]);
        // Reallocating to where it already lives is a no-op.
        assert!(s.reallocate(&[key], new).is_empty());
    }

    #[test]
    fn mirroring_replicates_to_clone() {
        let mut s = Splitter::new(VertexId(1), Scope::FiveTuple, 3);
        // add a clone as instance 2's mirror (index 3 after scale-up)
        s.set_instance_count(4);
        s.set_mirror(2, 3);
        let pkts = sample(200);
        let mut mirrored = 0;
        for p in &pkts {
            let r = s.route(p);
            if r.instance_index == 2 {
                assert_eq!(r.mirror_index, Some(3));
                mirrored += 1;
            } else {
                assert_eq!(r.mirror_index, None);
            }
        }
        assert!(mirrored > 0);
        s.clear_mirror();
        for p in &pkts {
            assert!(s.route(p).mirror_index.is_none());
        }
    }

    #[test]
    fn scale_plan_cuts_on_the_logical_clock() {
        let mut s = Splitter::new(VertexId(1), Scope::FiveTuple, 1);
        s.schedule_scale(100, 2);
        let pkts = sample(300);
        // Before the cut every packet routes to instance 0; after it the
        // spread uses both instances — and the decision depends only on the
        // packet's clock, so re-routing the same packet is deterministic.
        let mut post_spread = HashSet::new();
        for (i, p) in pkts.iter().enumerate() {
            let clock = Clock::with_root(0, i as u64 + 1);
            let idx = s.instance_for(p, clock);
            if clock.counter() < 100 {
                assert_eq!(idx, 0, "pre-scale packets stay on the single instance");
            } else {
                post_spread.insert(idx);
            }
            assert_eq!(idx, s.instance_for(p, clock), "routing is pure");
            assert_eq!(s.route_clocked(p, clock).instance_index, idx);
        }
        assert_eq!(
            post_spread.len(),
            2,
            "post-scale traffic uses both instances"
        );
        assert_eq!(s.instances_at(Clock::with_root(0, 99)), 1);
        assert_eq!(s.instances_at(Clock::with_root(0, 100)), 2);
    }

    #[test]
    fn partition_table_routes_per_vertex() {
        let mut t = PartitionTable::new();
        t.insert(Splitter::new(VertexId(1), Scope::SrcIp, 2));
        t.insert(Splitter::new(VertexId(2), Scope::FiveTuple, 3));
        let pkts = sample(10);
        assert!(t.route(VertexId(1), &pkts[0]).is_some());
        assert!(t.route(VertexId(9), &pkts[0]).is_none());
        assert_eq!(t.vertices().len(), 2);
        assert!(t.splitter(VertexId(2)).is_some());
        t.splitter_mut(VertexId(2)).unwrap().set_instance_count(5);
        assert_eq!(t.splitter(VertexId(2)).unwrap().instance_count(), 5);
    }

    #[test]
    fn scope_choice_prefers_coarse_when_balanced() {
        let pkts = sample(2_000);
        // With many client hosts, src-ip hashing balances well across 2
        // instances, so the coarser scope should win over 5-tuple.
        let scope = choose_partition_scope(&[Scope::FiveTuple, Scope::SrcIp], &pkts, 2, 1.5);
        assert_eq!(scope, Scope::SrcIp);
        // A single instance always takes the coarsest scope.
        assert_eq!(
            choose_partition_scope(&[Scope::FiveTuple, Scope::Global], &pkts, 1, 1.5),
            Scope::Global
        );
        // Global scope can never balance two instances: fall back to finer.
        let scope = choose_partition_scope(&[Scope::FiveTuple, Scope::Global], &pkts, 2, 1.2);
        assert_eq!(scope, Scope::FiveTuple);
        // Defaults for degenerate inputs.
        assert_eq!(choose_partition_scope(&[], &pkts, 2, 1.5), Scope::FiveTuple);
    }
}
