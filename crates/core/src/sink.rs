//! The end-host sink: receives the chain's output traffic.
//!
//! The sink stands in for the receiving end host of the paper's testbed. It
//! records which packets arrived (by logical clock and trace packet id),
//! counts duplicates (the receiver-visible symptom that R5/R6 protect
//! against) and accumulates throughput.

use crate::message::{Msg, TaggedPacket};
use chc_packet::PacketId;
use chc_sim::{Actor, ActorId, Ctx, Throughput, VirtualTime};
use chc_store::Clock;
use std::collections::HashSet;

/// Collects everything that leaves the chain towards the end host.
#[derive(Default)]
pub struct SinkActor {
    /// Packets received, in arrival order: (virtual time, clock, trace id).
    pub received: Vec<(VirtualTime, Clock, PacketId)>,
    /// Clocks seen so far (for duplicate detection).
    seen: HashSet<Clock>,
    /// Number of duplicate packets received (same logical clock twice).
    pub duplicates: u64,
    /// The clock of every duplicate arrival, in arrival order. Duplicates
    /// are *accounted*, not silently deduplicated: tests assert the exact
    /// expected multiset, turning "zero duplicates in a healthy run" (and
    /// "exactly the re-injected packets after a replay") into checked facts.
    pub duplicate_clocks: Vec<Clock>,
    /// Goodput accounting.
    pub throughput: Throughput,
}

impl SinkActor {
    /// Create an empty sink.
    pub fn new() -> SinkActor {
        SinkActor::default()
    }

    /// Number of distinct packets delivered.
    pub fn delivered(&self) -> usize {
        self.seen.len()
    }

    /// The trace packet ids delivered, in arrival order (with duplicates).
    pub fn delivered_ids(&self) -> Vec<PacketId> {
        self.received.iter().map(|(_, _, id)| *id).collect()
    }

    fn accept(&mut self, tp: &TaggedPacket, now: VirtualTime) {
        if !self.seen.insert(tp.clock) {
            self.duplicates += 1;
            self.duplicate_clocks.push(tp.clock);
        }
        self.received.push((now, tp.clock, tp.packet.id));
        self.throughput.record(now, tp.packet.len as u64);
    }
}

impl Actor<Msg> for SinkActor {
    fn on_message(&mut self, _from: Option<ActorId>, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Delivered(tp) | Msg::Data(tp) => self.accept(&tp, ctx.now()),
            _ => {}
        }
    }

    fn name(&self) -> String {
        "sink".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::Packet;
    use chc_sim::Simulation;

    #[test]
    fn counts_deliveries_and_duplicates() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let sink = sim.add_actor(Box::new(SinkActor::new()));
        let pkt = Packet::builder().id(5).len(1000).build();
        let tp = TaggedPacket::new(pkt, Clock::with_root(0, 1));
        sim.inject_at(
            VirtualTime::from_micros(1),
            sink,
            Msg::Delivered(tp.clone()),
        );
        sim.inject_at(
            VirtualTime::from_micros(2),
            sink,
            Msg::Delivered(tp.clone()),
        );
        let pkt2 = Packet::builder().id(6).len(500).build();
        sim.inject_at(
            VirtualTime::from_micros(3),
            sink,
            Msg::Delivered(TaggedPacket::new(pkt2, Clock::with_root(0, 2))),
        );
        sim.run();
        let s = sim.actor::<SinkActor>(sink).unwrap();
        assert_eq!(s.received.len(), 3);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.duplicate_clocks, vec![Clock::with_root(0, 1)]);
        assert_eq!(
            s.delivered_ids(),
            vec![PacketId(5), PacketId(5), PacketId(6)]
        );
        assert_eq!(s.throughput.packets(), 3);
    }
}
