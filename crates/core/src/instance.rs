//! The NF instance runtime.
//!
//! [`NfInstanceActor`] hosts one NF instance: it owns the operator-supplied
//! [`NetworkFunction`] code and its [`StateClient`], pulls packets from its
//! input queue, runs the NF, accounts processing time (multi-worker capacity
//! model), forwards outputs through the downstream splitters, and implements
//! the per-instance halves of the CHC protocols:
//!
//! * duplicate suppression at the input queue for replayed / replicated
//!   packets (§5.3),
//! * buffering and lazy ownership acquisition during per-flow state handover
//!   (Figure 4 steps 3–8),
//! * replay gating for clones and failover instances (process replayed
//!   traffic first, buffer live traffic until the replay ends),
//! * commit-signal emission for the root's XOR delete protocol (Figure 6),
//! * callback delivery for read-heavy cached objects, and
//! * chain-tail duties: the "delete-before-output" rule of §5.4.

use crate::chain::Topology;
use crate::config::ChainConfig;
use crate::message::{Msg, TaggedPacket};
use crate::nf::{Action, NetworkFunction, NfContext};
use crate::splitter::PartitionTable;
use crate::state::StateClient;
use chc_packet::ScopeKey;
use chc_sim::{Actor, ActorId, Ctx, Histogram, SimDuration, Throughput, TimeSeries, VirtualTime};
use chc_store::{Clock, InstanceId, VertexId};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Static parameters of one instance (separated out to keep construction
/// readable).
#[derive(Clone)]
pub struct InstanceParams {
    /// Logical vertex this instance belongs to.
    pub vertex: VertexId,
    /// This instance's id.
    pub instance: InstanceId,
    /// Downstream vertices (on-path and off-path) to forward to.
    pub downstream: Vec<VertexId>,
    /// True if this vertex is an exit of the chain (sends output to the end
    /// host and issues delete requests).
    pub is_tail: bool,
    /// True if the vertex is off-path (receives copies, emits no chain
    /// output).
    pub off_path: bool,
    /// Number of processing workers (threads) in the instance; bounds the
    /// instance's throughput.
    pub workers: usize,
    /// True when the instance starts as a straggler clone or failover target:
    /// it processes replayed traffic first and buffers live traffic until the
    /// packet marked "last of replay" has been processed (§5.3).
    pub awaiting_replay: bool,
}

/// Per-instance measurements read back by benches and tests.
#[derive(Default)]
pub struct InstanceMetrics {
    /// Packets fully processed (including replays and duplicates).
    pub processed: u64,
    /// Packets the NF decided to drop.
    pub dropped_by_nf: u64,
    /// Duplicate packets suppressed at the input queue.
    pub suppressed_duplicates: u64,
    /// Duplicate packets that were *processed* (suppression disabled or the
    /// duplicate was not marked as replay/replicated).
    pub duplicate_packets: u64,
    /// State updates issued while processing duplicate packets.
    pub duplicate_state_updates: u64,
    /// Per-packet processing time (service time only).
    pub proc_time: Histogram,
    /// Per-packet time in the instance including queueing for a worker.
    pub total_time: Histogram,
    /// Processing-time time series (for Figures 9 and 13).
    pub series: TimeSeries,
    /// Bytes/packets completed over time.
    pub throughput: Throughput,
    /// Alerts raised by the NF, with the packet clock that triggered them.
    pub alerts: Vec<(Clock, String)>,
}

/// The actor hosting one NF instance. See the module documentation.
pub struct NfInstanceActor {
    params: InstanceParams,
    nf: Box<dyn NetworkFunction>,
    /// Client-side datastore library (public so the chain controller can
    /// harvest write-ahead logs, read logs and cached per-flow state during
    /// datastore recovery).
    pub client: StateClient,
    config: ChainConfig,
    partition: Rc<RefCell<PartitionTable>>,
    topology: Rc<RefCell<Topology>>,
    root: ActorId,
    sink: ActorId,
    /// Worker occupancy: each entry is the time the worker becomes free.
    workers: Vec<VirtualTime>,
    /// Artificial extra per-packet delay (straggler emulation).
    extra_delay: SimDuration,
    /// Clocks already seen at this instance (duplicate detection).
    seen_clocks: HashSet<Clock>,
    /// Scope keys whose per-flow state is still owned by the old instance;
    /// their packets are buffered until `HandoverComplete` (Figure 4 step 4).
    awaiting_handover: HashSet<ScopeKey>,
    /// True while a clone/failover instance waits for the end of replay.
    awaiting_replay: bool,
    /// Packets buffered by the two mechanisms above, in arrival order.
    buffer: Vec<TaggedPacket>,
    /// When the most recent handover completed (used by the R2 experiment).
    pub handover_completed_at: Option<VirtualTime>,
    /// Measurements.
    pub metrics: InstanceMetrics,
}

impl NfInstanceActor {
    /// Create an instance actor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: InstanceParams,
        nf: Box<dyn NetworkFunction>,
        client: StateClient,
        config: ChainConfig,
        partition: Rc<RefCell<PartitionTable>>,
        topology: Rc<RefCell<Topology>>,
        root: ActorId,
        sink: ActorId,
    ) -> NfInstanceActor {
        let awaiting_replay = params.awaiting_replay;
        let workers = vec![VirtualTime::ZERO; params.workers.max(1)];
        NfInstanceActor {
            params,
            nf,
            client,
            config,
            partition,
            topology,
            root,
            sink,
            workers,
            extra_delay: SimDuration::ZERO,
            seen_clocks: HashSet::new(),
            awaiting_handover: HashSet::new(),
            awaiting_replay,
            buffer: Vec::new(),
            handover_completed_at: None,
            metrics: InstanceMetrics::default(),
        }
    }

    /// This instance's id.
    pub fn instance_id(&self) -> InstanceId {
        self.params.instance
    }

    /// The vertex this instance belongs to.
    pub fn vertex(&self) -> VertexId {
        self.params.vertex
    }

    /// Number of packets currently buffered (handover / replay gating).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The scope key of a packet under this vertex's partitioning scope.
    fn own_scope_key(&self, tp: &TaggedPacket) -> Option<ScopeKey> {
        self.partition
            .borrow()
            .splitter(self.params.vertex)
            .map(|s| s.scope_key(&tp.packet))
    }

    fn handle_data(&mut self, tp: TaggedPacket, ctx: &mut Ctx<'_, Msg>) {
        // Replay gating for clones / failover instances: live (non-replay)
        // traffic is buffered until the replay burst has been consumed.
        if self.awaiting_replay && tp.replay_for != Some(self.params.instance) {
            self.buffer.push(tp);
            return;
        }
        // Handover buffering (Figure 4 steps 3–4): when the first packet of a
        // reallocated flow group arrives, check whether the per-flow state is
        // still associated with the old instance; if so, buffer this group's
        // packets until the store's handover notification arrives. If the old
        // instance already flushed and released (the notification raced ahead
        // of the traffic), processing continues immediately.
        if let Some(key) = self.own_scope_key(&tp) {
            if tp.mark.first_of_move {
                let conn = ScopeKey::Flow(tp.packet.connection_key());
                if self.client.per_flow_owned_elsewhere(conn) {
                    self.awaiting_handover.insert(key);
                }
            }
            if self.awaiting_handover.contains(&key) {
                self.buffer.push(tp);
                return;
            }
        }
        let end_of_replay = tp.replay_for == Some(self.params.instance) && tp.mark.last_of_replay;
        self.process_packet(tp, ctx);
        if end_of_replay && self.awaiting_replay {
            self.awaiting_replay = false;
            self.drain_buffer(ctx);
        }
    }

    fn drain_buffer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let buffered = std::mem::take(&mut self.buffer);
        for tp in buffered {
            // Re-run the gating checks: a drained packet may still belong to
            // a different flow group that is waiting for its own handover.
            self.handle_data(tp, ctx);
        }
    }

    /// Process one packet through the NF (all gating already done).
    fn process_packet(&mut self, mut tp: TaggedPacket, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();

        // Duplicate handling (§5.3): the logical clock is unique per input
        // packet, so seeing a clock twice always means a replayed or
        // replicated copy (one of the two copies may be the unmarked
        // original when it was still in flight at replay time). With
        // suppression enabled the duplicate is dropped at the queue.
        let duplicate = !self.seen_clocks.insert(tp.clock);
        if duplicate {
            if self.config.duplicate_suppression {
                self.metrics.suppressed_duplicates += 1;
                return;
            }
            self.metrics.duplicate_packets += 1;
        }

        // Worker capacity model: the packet is served by the earliest-free
        // worker; service starts when both the packet and the worker are
        // ready.
        let (widx, free_at) = self
            .workers
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, t)| *t)
            .expect("at least one worker");
        let start = now.max(free_at);

        // Run the NF.
        let mut nf_ctx = NfContext::new(&mut self.client, tp.clock, now);
        let action = self.nf.process(&tp.packet, &mut nf_ctx);
        let alerts = nf_ctx.take_alerts();
        for alert in alerts {
            self.metrics.alerts.push((tp.clock, alert));
        }

        // Assemble the packet's processing time: base cost + state-access
        // charges + any artificial straggler delay + (for the chain tail) the
        // synchronous delete round trip.
        let mut proc = self.config.costs.base_processing + self.extra_delay;
        proc += self.client.take_charge();
        let is_chain_output = self.params.is_tail && !self.params.off_path;
        if is_chain_output && self.config.delete_before_output {
            proc += self.config.costs.delete_roundtrip;
        }
        let finish = start + proc;
        self.workers[widx] = finish;

        // Metrics.
        self.metrics.processed += 1;
        self.metrics.proc_time.record(proc);
        self.metrics.total_time.record(finish - now);
        // The time series records the *total* per-packet time (queueing +
        // service): that is what Figures 9 and 13 plot — blocking-op spikes
        // and the post-recovery backlog drain both show up in it.
        self.metrics
            .series
            .push(now, (finish - now).as_micros_f64());
        self.metrics.throughput.record(finish, tp.packet.len as u64);

        // Commit tokens: fold into the packet's XOR vector and signal the
        // root (the store signals commits; one store→root hop of latency).
        // Off-path NFs process *copies* whose vectors never reach the chain
        // tail, so they do not participate in the delete protocol.
        let tokens = self.client.take_packet_tokens();
        if duplicate {
            self.metrics.duplicate_state_updates += tokens.len() as u64;
        }
        if !self.params.off_path {
            for (_key, token) in &tokens {
                tp.absorb_update_token(*token);
                ctx.send_with_extra_delay(
                    self.root,
                    Msg::CommitSignal {
                        clock: tp.clock,
                        token: *token,
                    },
                    (finish - now) + self.config.costs.store_one_way,
                );
            }
        }

        // Callbacks produced by our updates to read-heavy shared objects.
        for (other, key, value) in self.client.take_pending_callbacks() {
            if let Some(actor) = self.topology.borrow().actor_of_instance(other) {
                ctx.send_with_extra_delay(
                    actor,
                    Msg::CallbackUpdate { key, value },
                    (finish - now) + self.config.costs.store_one_way,
                );
            }
        }

        // Forwarding.
        let delay = finish - now;
        match action {
            Action::Drop => {
                self.metrics.dropped_by_nf += 1;
                if !self.params.off_path {
                    // The packet's journey through the chain ends here (even
                    // if this is not the chain tail); let the root unlog it.
                    ctx.send_with_extra_delay(
                        self.root,
                        Msg::DeleteRequest {
                            clock: tp.clock,
                            xor_vector: tp.xor_vector,
                        },
                        delay,
                    );
                }
            }
            Action::Forward(out_pkt) => {
                tp.packet = out_pkt;
                if self.params.off_path {
                    // Off-path NFs consume copies; nothing flows onward.
                    return;
                }
                if is_chain_output {
                    // §5.4: the delete request is sent before the output
                    // packet is released towards the end host.
                    ctx.send_with_extra_delay(
                        self.root,
                        Msg::DeleteRequest {
                            clock: tp.clock,
                            xor_vector: tp.xor_vector,
                        },
                        delay,
                    );
                    ctx.send_with_extra_delay(self.sink, Msg::Delivered(tp.clone()), delay);
                }
                for vertex in self.params.downstream.clone() {
                    self.forward_to_vertex(vertex, &tp, delay, ctx);
                }
            }
        }
    }

    fn forward_to_vertex(
        &mut self,
        vertex: VertexId,
        tp: &TaggedPacket,
        delay: SimDuration,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let route = self
            .partition
            .borrow_mut()
            .route_clocked(vertex, &tp.packet, tp.clock);
        let Some(route) = route else { return };
        let target = self
            .topology
            .borrow()
            .actor_of(vertex, route.instance_index);
        if let Some(actor) = target {
            let mut copy = tp.clone();
            copy.mark.first_of_move = route.mark.first_of_move;
            copy.mark.last_of_move = route.mark.last_of_move;
            ctx.send_with_extra_delay(actor, Msg::Data(copy), delay);
        }
        if let Some(mirror) = route.mirror_index {
            if let Some(actor) = self.topology.borrow().actor_of(vertex, mirror) {
                let mut copy = tp.clone();
                copy.replicated = true;
                ctx.send_with_extra_delay(actor, Msg::Data(copy), delay);
            }
        }
    }

    fn handle_flush(
        &mut self,
        object_names: Vec<String>,
        release_ownership: bool,
        notify: Option<InstanceId>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let clock = Clock::with_root(0, 0);
        self.client.flush_per_flow(release_ownership, clock);
        for name in &object_names {
            self.client.set_exclusive(name, false, clock);
        }
        if let Some(new_owner) = notify {
            if let Some(actor) = self.topology.borrow().actor_of_instance(new_owner) {
                // The datastore notifies the new instance of the handover
                // (Figure 4 step 6): one hop to the store plus one hop to the
                // new instance.
                let key = chc_store::StateKey::shared(
                    self.params.vertex,
                    chc_store::ObjectKey::named("handover"),
                );
                ctx.send_with_extra_delay(
                    actor,
                    Msg::HandoverComplete { key },
                    self.config.costs.store_one_way.times(2),
                );
            }
        }
    }

    fn handle_handover_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Ownership is acquired lazily on the first state access (the store
        // records the new instance as owner once the old one released it);
        // here we only need to release the buffered packets, in order.
        self.awaiting_handover.clear();
        self.handover_completed_at = Some(ctx.now());
        self.drain_buffer(ctx);
    }
}

impl Actor<Msg> for NfInstanceActor {
    fn on_message(&mut self, _from: Option<ActorId>, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Data(tp) => self.handle_data(tp, ctx),
            Msg::CallbackUpdate { key, value } => self.client.handle_callback(&key, value),
            Msg::HandoverComplete { .. } => self.handle_handover_complete(ctx),
            Msg::FlushRequest {
                object_names,
                release_ownership,
                notify,
            } => self.handle_flush(object_names, release_ownership, notify, ctx),
            Msg::SetExclusive { object, exclusive } => {
                self.client
                    .set_exclusive(&object, exclusive, Clock::with_root(0, 0));
            }
            Msg::SetProcessingDelay { extra_nanos } => {
                self.extra_delay = SimDuration::from_nanos(extra_nanos);
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("{}/{}", self.params.vertex, self.params.instance)
    }
}
