//! # chc-core
//!
//! The CHC NFV framework — the primary contribution of *"Correctness and
//! Performance for Stateful Chained Network Functions"* (NSDI'19).
//!
//! CHC runs operator-defined chains of network functions while guaranteeing
//! **chain output equivalence (COE)**: the collective action of all NF
//! instances equals that of an ideal chain of infinite-capacity single NFs,
//! even under elastic scaling, straggler mitigation, NF/root/store failures
//! and traffic reallocation. It does so with three building blocks:
//!
//! 1. **State externalization** — all NF state lives in the external store of
//!    [`chc_store`], accessed through the client-side library in
//!    [`state`], which implements the scope/access-pattern-aware caching and
//!    non-blocking update strategies of Table 1 and offloads operations so the
//!    store serializes shared-state updates (R1, R2, R3).
//! 2. **Metadata** — per-packet logical clocks stamped by the chain [`root`],
//!    root-side packet logs with the XOR commit-vector protocol of §5.4,
//!    store-side clock-tagged update logs, and per-NF operation/read logs
//!    (R4, R5, R6).
//! 3. **Protocols** — scope-aware traffic partitioning ([`splitter`]), the
//!    state-handover protocol of Figure 4 (elastic scaling), straggler
//!    mitigation by clone-and-replay with three-way duplicate suppression
//!    (§5.3), and failover procedures for NF instances, the root and store
//!    instances (§5.4) orchestrated by [`chain::ChainController`].
//!
//! The framework executes on the deterministic discrete-event substrate of
//! [`chc_sim`]; see `DESIGN.md` at the repository root for the execution
//! model and the mapping from paper experiments to benchmark harnesses.

pub mod cache;
pub mod chain;
pub mod coe;
pub mod config;
pub mod dag;
pub mod instance;
pub mod message;
pub mod nf;
pub mod root;
pub mod rootlog;
pub mod sink;
pub mod splitter;
pub mod state;
pub mod vertexlog;

pub use cache::CacheStrategy;
pub use chain::{ChainController, ChainHandles, ChainMetrics};
pub use config::{ChainConfig, CostModel, ExternalizationMode};
pub use dag::{LogicalDag, StateObjectSpec, VertexSpec};
pub use instance::NfInstanceActor;
pub use message::{Msg, PacketMark, TaggedPacket};
pub use nf::{Action, NetworkFunction, NfContext, ProcessResult};
pub use root::RootActor;
pub use rootlog::PacketLog;
pub use sink::SinkActor;
pub use splitter::{PartitionTable, Splitter};
pub use state::{SharedStore, StateClient, StateHandle};
pub use vertexlog::{delete_token, VertexLogStats, VertexLogs, XorDeleteLedger, STANDBY_ROOT_ID};

// Re-export the identifiers shared with the store crate so NF authors only
// need `chc_core` in scope.
pub use chc_store::{AccessPattern, Clock, InstanceId, StateScope, VertexId};
