//! The chain root: logical clocks, packet logging, the delete/commit
//! protocol, replay, and root failover (§5, §5.4).
//!
//! The root is a special splitter at the chain entry. For every input packet
//! it (1) stamps a unique logical clock (root instance id in the high bits),
//! (2) logs the packet until the chain tail confirms that processing — and
//! every state update the packet induced — has finished, and (3) forwards it
//! to the entry vertex chosen by scope-aware partitioning. Logged packets are
//! replayed when an NF instance fails over or a straggler clone is
//! initialised. Deletion follows the XOR commit-vector protocol of Figure 6
//! so that a packet is never un-logged while some non-blocking state update
//! it induced is still uncommitted.

use crate::chain::Topology;
use crate::config::ChainConfig;
use crate::message::{Msg, TaggedPacket};
use crate::rootlog::PacketLog;
use crate::splitter::PartitionTable;
use crate::state::SharedStore;
use chc_sim::{Actor, ActorId, Ctx, SimDuration};
use chc_store::{Clock, InstanceId, ObjectKey, Operation, StateKey, Value, VertexId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Pseudo vertex id under which the root stores its own durable metadata
/// (the persisted logical clock).
pub const ROOT_VERTEX: VertexId = VertexId(u32::MAX);

/// Counters exposed by the root for experiments and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RootStats {
    /// Packets accepted and stamped.
    pub packets_in: u64,
    /// Packets dropped because the log exceeded its capacity.
    pub dropped: u64,
    /// Log entries deleted after chain-tail confirmation.
    pub deleted: u64,
    /// Packets replayed (for failover / clone initialisation).
    pub replayed: u64,
    /// Largest log size observed.
    pub log_high_water: usize,
}

/// The root actor. See the module documentation.
pub struct RootActor {
    root_id: u8,
    config: ChainConfig,
    counter: u64,
    entry_vertices: Vec<VertexId>,
    partition: Rc<RefCell<PartitionTable>>,
    topology: Rc<RefCell<Topology>>,
    store: SharedStore,
    /// Logged packets still being processed somewhere in the chain (shared
    /// with the real-thread engine via [`crate::rootlog::PacketLog`]).
    log: PacketLog,
    /// XOR of commit signals received for packets not yet deleted.
    commits: HashMap<Clock, u32>,
    /// Packets whose delete request arrived while updates were outstanding:
    /// remaining XOR vector to cancel.
    awaiting_delete: HashMap<Clock, u32>,
    /// Whether this root is a failover instance that must recover its clock
    /// from the datastore on start (§5.4 "Root").
    recover_on_start: bool,
    /// Public counters.
    pub stats: RootStats,
}

impl RootActor {
    /// Create a fresh root (chain bring-up).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        root_id: u8,
        config: ChainConfig,
        entry_vertices: Vec<VertexId>,
        partition: Rc<RefCell<PartitionTable>>,
        topology: Rc<RefCell<Topology>>,
        store: SharedStore,
    ) -> RootActor {
        RootActor {
            root_id,
            config,
            counter: 0,
            entry_vertices,
            partition,
            topology,
            store,
            log: PacketLog::new(config.root_log_capacity),
            commits: HashMap::new(),
            awaiting_delete: HashMap::new(),
            recover_on_start: false,
            stats: RootStats::default(),
        }
    }

    /// Create a failover root that recovers the logical clock from the store
    /// when it starts (its packet log starts empty: packets logged locally by
    /// the failed root are lost, which the chain tolerates as network drops —
    /// Theorem B.3.1).
    #[allow(clippy::too_many_arguments)]
    pub fn recovered(
        root_id: u8,
        config: ChainConfig,
        entry_vertices: Vec<VertexId>,
        partition: Rc<RefCell<PartitionTable>>,
        topology: Rc<RefCell<Topology>>,
        store: SharedStore,
    ) -> RootActor {
        let mut root = RootActor::new(root_id, config, entry_vertices, partition, topology, store);
        root.recover_on_start = true;
        root
    }

    /// Key under which the root persists its clock.
    pub fn clock_key(root_id: u8) -> StateKey {
        StateKey::shared(
            ROOT_VERTEX,
            ObjectKey::named(&format!("root_clock_{root_id}")),
        )
    }

    /// Number of packets currently logged.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The logical clock value that will be assigned to the next packet.
    pub fn next_clock(&self) -> Clock {
        Clock::with_root(self.root_id, self.counter + 1)
    }

    fn persist_clock(&self) {
        let key = RootActor::clock_key(self.root_id);
        let _ = self.store.with(|s| {
            s.apply(
                InstanceId(u32::MAX),
                &key,
                &Operation::Set(Value::Int(self.counter as i64)),
                None,
            )
        });
    }

    /// Per-packet root overhead: local (or store) logging plus the amortized
    /// clock persistence cost (§7.2).
    fn per_packet_overhead(&self) -> SimDuration {
        let log_cost = if self.config.log_packets_locally {
            self.config.costs.root_local_log
        } else {
            self.config.costs.root_local_log + self.config.costs.store_log_extra
        };
        let persist = SimDuration::from_nanos(
            self.config.costs.clock_persist.as_nanos() / self.config.clock_persist_period.max(1),
        );
        log_cost + persist
    }

    fn forward(&mut self, tp: TaggedPacket, ctx: &mut Ctx<'_, Msg>, extra_delay: SimDuration) {
        let entries = self.entry_vertices.clone();
        for vertex in entries {
            let route = self
                .partition
                .borrow_mut()
                .route_clocked(vertex, &tp.packet, tp.clock);
            let Some(route) = route else { continue };
            let target = self
                .topology
                .borrow()
                .actor_of(vertex, route.instance_index);
            if let Some(actor) = target {
                let mut copy = tp.clone();
                copy.mark.first_of_move |= route.mark.first_of_move;
                copy.mark.last_of_move |= route.mark.last_of_move;
                ctx.send_with_extra_delay(actor, Msg::Data(copy), extra_delay);
            }
            if let Some(mirror) = route.mirror_index {
                if let Some(actor) = self.topology.borrow().actor_of(vertex, mirror) {
                    let mut copy = tp.clone();
                    copy.replicated = true;
                    ctx.send_with_extra_delay(actor, Msg::Data(copy), extra_delay);
                }
            }
        }
    }

    fn handle_input(&mut self, mut tp: TaggedPacket, ctx: &mut Ctx<'_, Msg>) {
        if self.log.is_full() {
            // Buffer-bloat guard: drop rather than queue without bound (§5).
            self.stats.dropped += 1;
            return;
        }
        self.counter += 1;
        self.stats.packets_in += 1;
        tp.clock = Clock::with_root(self.root_id, self.counter);
        if self
            .counter
            .is_multiple_of(self.config.clock_persist_period.max(1))
        {
            self.persist_clock();
        }
        self.log.insert(tp.clone());
        self.stats.log_high_water = self.log.high_water();
        let overhead = self.per_packet_overhead();
        self.forward(tp, ctx, overhead);
    }

    fn try_delete(&mut self, clock: Clock, remaining: u32) {
        if remaining == 0 {
            self.log.remove(&clock);
            self.commits.remove(&clock);
            self.awaiting_delete.remove(&clock);
            self.store.with(|s| s.forget_clock(clock));
            self.stats.deleted += 1;
        } else {
            self.awaiting_delete.insert(clock, remaining);
        }
    }

    fn handle_delete(&mut self, clock: Clock, xor_vector: u32) {
        let committed = self.commits.remove(&clock).unwrap_or(0);
        self.try_delete(clock, xor_vector ^ committed);
    }

    fn handle_commit(&mut self, clock: Clock, token: u32) {
        if let Some(pending) = self.awaiting_delete.get(&clock).copied() {
            self.try_delete(clock, pending ^ token);
        } else {
            *self.commits.entry(clock).or_insert(0) ^= token;
        }
    }

    fn handle_replay(&mut self, target: InstanceId, ctx: &mut Ctx<'_, Msg>) {
        let logged = self.log.snapshot();
        let n = logged.len();
        for (i, mut tp) in logged.into_iter().enumerate() {
            tp.replay_for = Some(target);
            tp.mark.last_of_replay = i + 1 == n;
            self.stats.replayed += 1;
            // Replay is paced: packets leave back-to-back at a small fixed
            // spacing so they do not arrive as one burst at time zero.
            let pacing = SimDuration::from_nanos(200 * (i as u64 + 1));
            self.forward(tp, ctx, pacing);
        }
    }
}

impl Actor<Msg> for RootActor {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {
        if self.recover_on_start {
            // §5.4: the failover root reads the last persisted clock value and
            // resumes at `persisted + persist period` so it never reuses a
            // clock the failed root may already have handed out (footnote 5).
            let key = RootActor::clock_key(self.root_id);
            let persisted = self.store.with(|s| s.peek(&key)).as_int().max(0) as u64;
            self.counter = persisted + self.config.clock_persist_period;
        }
    }

    fn on_message(&mut self, _from: Option<ActorId>, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Data(tp) => self.handle_input(tp, ctx),
            Msg::DeleteRequest { clock, xor_vector } => self.handle_delete(clock, xor_vector),
            Msg::CommitSignal { clock, token } => self.handle_commit(clock, token),
            Msg::ReplayRequest { target } => self.handle_replay(target, ctx),
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("root{}", self.root_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_key_is_per_root() {
        assert_ne!(RootActor::clock_key(0), RootActor::clock_key(1));
        assert_eq!(RootActor::clock_key(3).vertex, ROOT_VERTEX);
    }
}
