//! The NF programming interface.
//!
//! Network functions in CHC are written against a small synchronous API:
//! [`NetworkFunction::process`] receives each packet together with an
//! [`NfContext`] through which all state is accessed. The context is backed
//! by the client-side datastore library ([`crate::state::StateClient`]), so
//! an NF never knows whether a given object was served from a local cache,
//! a non-blocking offloaded operation, or a blocking store round trip — that
//! is decided by the per-object strategy of Table 1 and by the configured
//! externalization mode.

use crate::dag::StateObjectSpec;
use crate::state::StateClient;
use chc_packet::{Packet, ScopeKey};
use chc_sim::VirtualTime;
use chc_store::{Clock, Operation, StateKey, Value};

/// What an NF asks the framework to do with the packet it just processed.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Forward the (possibly rewritten) packet to the downstream vertex
    /// (or to the end host if this is the chain tail).
    Forward(Packet),
    /// Drop the packet (e.g. a firewall or scan blocker decision).
    Drop,
}

impl Action {
    /// True if the action forwards a packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, Action::Forward(_))
    }
}

/// Result assembled by the instance runtime after calling an NF: the action
/// plus any alerts the NF raised through the context.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessResult {
    /// The forwarding decision.
    pub action: Action,
    /// Alerts raised while processing (e.g. "Trojan detected at host X").
    pub alerts: Vec<String>,
}

/// A stateful network function.
///
/// Implementations declare their state objects (name, scope, access pattern —
/// Table 4 of the paper lists the objects of the four evaluated NFs) and
/// process one packet at a time. All state access goes through the context.
pub trait NetworkFunction: Send {
    /// Human-readable NF type name ("nat", "portscan-detector", ...).
    fn name(&self) -> &str;

    /// The state objects this NF maintains. The framework uses the scopes to
    /// partition traffic (§4.1) and the access patterns to pick caching
    /// strategies (Table 1).
    fn state_objects(&self) -> Vec<StateObjectSpec>;

    /// Process one packet.
    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action;
}

/// Per-packet context handed to [`NetworkFunction::process`].
pub struct NfContext<'a> {
    state: &'a mut StateClient,
    clock: Clock,
    now: VirtualTime,
    alerts: Vec<String>,
}

impl<'a> NfContext<'a> {
    /// Create a context for one packet (called by the instance runtime).
    pub fn new(state: &'a mut StateClient, clock: Clock, now: VirtualTime) -> NfContext<'a> {
        NfContext {
            state,
            clock,
            now,
            alerts: Vec::new(),
        }
    }

    /// The packet's chain-wide logical clock (requirement R4: NFs can reason
    /// about the true arrival order at the chain entry regardless of what
    /// upstream instances did).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Raise an operator-visible alert (blocked host, detected Trojan, ...).
    pub fn alert(&mut self, message: impl Into<String>) {
        self.alerts.push(message.into());
    }

    /// Alerts raised so far (consumed by the runtime).
    pub fn take_alerts(&mut self) -> Vec<String> {
        std::mem::take(&mut self.alerts)
    }

    // --------------------------------------------------------------
    // State access. All methods are keyed by the object *name* declared in
    // `state_objects()` plus an optional scope key; the client library turns
    // that into a full datastore key with vertex/instance metadata.
    // --------------------------------------------------------------

    /// Read the current value of an object.
    pub fn read(&mut self, object: &str, key: Option<ScopeKey>) -> Value {
        self.state.read(object, key, self.clock)
    }

    /// Apply an arbitrary offloaded operation and return its result.
    pub fn update(&mut self, object: &str, key: Option<ScopeKey>, op: Operation) -> Value {
        self.state.update(object, key, op, self.clock)
    }

    /// Increment a counter object.
    pub fn increment(&mut self, object: &str, key: Option<ScopeKey>, delta: i64) -> Value {
        self.update(object, key, Operation::Increment(delta))
    }

    /// Decrement a counter object.
    pub fn decrement(&mut self, object: &str, key: Option<ScopeKey>, delta: i64) -> Value {
        self.update(object, key, Operation::Decrement(delta))
    }

    /// Add to both halves of a pair-valued object.
    pub fn add_pair(&mut self, object: &str, key: Option<ScopeKey>, a: i64, b: i64) -> Value {
        self.update(object, key, Operation::AddPair(a, b))
    }

    /// Overwrite an object.
    pub fn set(&mut self, object: &str, key: Option<ScopeKey>, value: Value) -> Value {
        self.update(object, key, Operation::Set(value))
    }

    /// Push a value onto a list object.
    pub fn push_back(&mut self, object: &str, key: Option<ScopeKey>, value: Value) -> Value {
        self.update(object, key, Operation::PushBack(value))
    }

    /// Pop a value from a list object (blocking: the NF needs the result).
    pub fn pop_front(&mut self, object: &str, key: Option<ScopeKey>) -> Value {
        self.update(object, key, Operation::PopFront)
    }

    /// A store-computed non-deterministic value (Appendix A): the store logs
    /// the value per (packet clock, slot) so replayed packets observe exactly
    /// the same value. `candidate` is the locally computed proposal used on
    /// first request.
    pub fn nondet(&mut self, slot: u32, candidate: Value) -> Value {
        self.state.nondet(self.clock, slot, candidate)
    }

    /// The fully qualified datastore key the client library would use for an
    /// object (exposed for NFs that need to reason about identity, mostly in
    /// tests).
    pub fn state_key(&self, object: &str, key: Option<ScopeKey>) -> StateKey {
        self.state.state_key(object, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_predicates() {
        let p = Packet::builder().build();
        assert!(Action::Forward(p).is_forward());
        assert!(!Action::Drop.is_forward());
    }
}
