//! The operator-facing DAG API (§3 of the paper).
//!
//! Operators define a *logical* chain: each vertex is an NF type with its
//! code (a [`NetworkFunction`] factory), configuration, state objects and a
//! default parallelism; edges represent the flow of packets (or, for off-path
//! NFs such as the Trojan detector, copies of packets). The framework
//! compiles the logical DAG into a physical DAG with one or more instances
//! per vertex ([`crate::chain::ChainController`]).

use crate::nf::NetworkFunction;
use chc_packet::Scope;
use chc_store::{AccessPattern, StateScope, VertexId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Declaration of one state object an NF maintains (name, scope, access
/// pattern) — the rows of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateObjectSpec {
    /// Object name used by the NF when accessing it.
    pub name: String,
    /// Per-flow or cross-flow, and at which header granularity.
    pub scope: StateScope,
    /// How the NF accesses it (drives the Table 1 strategy).
    pub access: AccessPattern,
}

impl StateObjectSpec {
    /// Declare a per-flow object.
    pub fn per_flow(name: &str, access: AccessPattern) -> StateObjectSpec {
        StateObjectSpec {
            name: name.to_string(),
            scope: StateScope::PerFlow,
            access,
        }
    }

    /// Declare a cross-flow object keyed at `scope`.
    pub fn cross_flow(name: &str, scope: Scope, access: AccessPattern) -> StateObjectSpec {
        StateObjectSpec {
            name: name.to_string(),
            scope: StateScope::CrossFlow(scope),
            access,
        }
    }
}

/// Factory that builds a fresh NF instance for a vertex.
pub type NfFactory = Rc<dyn Fn() -> Box<dyn NetworkFunction>>;

/// A vertex of the logical DAG: an NF type plus its deployment parameters.
#[derive(Clone)]
pub struct VertexSpec {
    /// Stable identifier (also used in datastore keys).
    pub id: VertexId,
    /// Human-readable name.
    pub name: String,
    /// Number of instances to deploy initially (the operator's default
    /// parallelism; scaling logic may change it at run time).
    pub parallelism: usize,
    /// True for off-path NFs (they receive a *copy* of traffic and their
    /// output does not continue down the chain), like the Trojan detector.
    pub off_path: bool,
    /// Factory producing the NF code for each instance.
    pub factory: NfFactory,
}

impl VertexSpec {
    /// Create a vertex with parallelism 1.
    pub fn new(id: u32, name: &str, factory: NfFactory) -> VertexSpec {
        VertexSpec {
            id: VertexId(id),
            name: name.to_string(),
            parallelism: 1,
            off_path: false,
            factory,
        }
    }

    /// Set the initial parallelism.
    pub fn with_parallelism(mut self, n: usize) -> VertexSpec {
        self.parallelism = n.max(1);
        self
    }

    /// Mark the vertex as off-path.
    pub fn off_path(mut self) -> VertexSpec {
        self.off_path = true;
        self
    }

    /// Instantiate the NF code once (used to interrogate state objects).
    pub fn build_nf(&self) -> Box<dyn NetworkFunction> {
        (self.factory)()
    }

    /// The state-object declarations of this vertex's NF.
    pub fn state_objects(&self) -> Vec<StateObjectSpec> {
        self.build_nf().state_objects()
    }

    /// The vertex's `.scope()` list (§4.1): the packet-header scopes of its
    /// state objects ordered from most to least fine grained.
    pub fn scopes(&self) -> Vec<Scope> {
        // `Scope` orders fine → coarse and BTreeSet iterates in that order,
        // matching the paper's ordering of the `.scope()` list.
        let scopes: BTreeSet<Scope> = self
            .state_objects()
            .iter()
            .map(|o| o.scope.packet_scope())
            .collect();
        scopes.into_iter().collect()
    }
}

impl fmt::Debug for VertexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VertexSpec")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("parallelism", &self.parallelism)
            .field("off_path", &self.off_path)
            .finish()
    }
}

/// Errors produced when validating a logical DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two vertices share an id.
    DuplicateVertex(VertexId),
    /// An edge references an unknown vertex.
    UnknownVertex(VertexId),
    /// The graph contains a cycle.
    Cyclic,
    /// The DAG has no entry vertex (every vertex has predecessors).
    NoEntry,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateVertex(v) => write!(f, "duplicate vertex id {v}"),
            DagError::UnknownVertex(v) => write!(f, "edge references unknown vertex {v}"),
            DagError::Cyclic => write!(f, "the NF graph contains a cycle"),
            DagError::NoEntry => write!(f, "the NF graph has no entry vertex"),
        }
    }
}

impl std::error::Error for DagError {}

/// The operator-defined logical NF chain.
#[derive(Clone, Default)]
pub struct LogicalDag {
    vertices: Vec<VertexSpec>,
    edges: Vec<(VertexId, VertexId)>,
}

impl LogicalDag {
    /// Create an empty DAG.
    pub fn new() -> LogicalDag {
        LogicalDag::default()
    }

    /// Add a vertex and return its id.
    pub fn add_vertex(&mut self, vertex: VertexSpec) -> VertexId {
        let id = vertex.id;
        self.vertices.push(vertex);
        id
    }

    /// Add a directed edge `from → to`.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) {
        self.edges.push((from, to));
    }

    /// All vertices.
    pub fn vertices(&self) -> &[VertexSpec] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Look up a vertex by id.
    pub fn vertex(&self, id: VertexId) -> Option<&VertexSpec> {
        self.vertices.iter().find(|v| v.id == id)
    }

    /// Ids of vertices immediately downstream of `id`.
    pub fn downstream_of(&self, id: VertexId) -> Vec<VertexId> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Ids of vertices immediately upstream of `id`.
    pub fn upstream_of(&self, id: VertexId) -> Vec<VertexId> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == id)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Entry vertices (no predecessors): where the root splitter sends
    /// incoming traffic.
    pub fn entries(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .map(|v| v.id)
            .filter(|id| self.upstream_of(*id).is_empty())
            .collect()
    }

    /// Exit vertices (no on-path successors): their output goes to the end
    /// host and they issue the chain-tail "delete" requests.
    pub fn exits(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .filter(|v| !v.off_path)
            .map(|v| v.id)
            .filter(|id| {
                self.downstream_of(*id)
                    .into_iter()
                    .filter(|d| self.vertex(*d).map(|v| !v.off_path).unwrap_or(false))
                    .count()
                    == 0
            })
            .collect()
    }

    /// Validate the graph and return a topological order of vertex ids.
    pub fn topo_order(&self) -> Result<Vec<VertexId>, DagError> {
        // Unique ids.
        let mut seen = BTreeSet::new();
        for v in &self.vertices {
            if !seen.insert(v.id) {
                return Err(DagError::DuplicateVertex(v.id));
            }
        }
        // Edges reference known vertices.
        for (f, t) in &self.edges {
            if !seen.contains(f) {
                return Err(DagError::UnknownVertex(*f));
            }
            if !seen.contains(t) {
                return Err(DagError::UnknownVertex(*t));
            }
        }
        if self.vertices.is_empty() {
            return Ok(Vec::new());
        }
        if self.entries().is_empty() {
            return Err(DagError::NoEntry);
        }
        // Kahn's algorithm.
        let mut in_deg: BTreeMap<VertexId, usize> =
            self.vertices.iter().map(|v| (v.id, 0)).collect();
        for (_, t) in &self.edges {
            *in_deg.get_mut(t).unwrap() += 1;
        }
        let mut ready: Vec<VertexId> = in_deg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(v, _)| *v)
            .collect();
        let mut order = Vec::new();
        while let Some(v) = ready.pop() {
            order.push(v);
            for d in self.downstream_of(v) {
                let e = in_deg.get_mut(&d).unwrap();
                *e -= 1;
                if *e == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() != self.vertices.len() {
            return Err(DagError::Cyclic);
        }
        Ok(order)
    }

    /// Convenience constructor: a linear chain of the given vertices (each
    /// forwarding to the next), the common deployment in the paper.
    pub fn linear(vertices: Vec<VertexSpec>) -> LogicalDag {
        let mut dag = LogicalDag::new();
        let ids: Vec<VertexId> = vertices.into_iter().map(|v| dag.add_vertex(v)).collect();
        for pair in ids.windows(2) {
            dag.add_edge(pair[0], pair[1]);
        }
        dag
    }
}

impl fmt::Debug for LogicalDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogicalDag")
            .field("vertices", &self.vertices)
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::{Action, NfContext};
    use chc_packet::Packet;

    struct NoopNf;
    impl NetworkFunction for NoopNf {
        fn name(&self) -> &str {
            "noop"
        }
        fn state_objects(&self) -> Vec<StateObjectSpec> {
            vec![
                StateObjectSpec::per_flow("flow_bytes", AccessPattern::WriteMostlyReadRarely),
                StateObjectSpec::cross_flow(
                    "host_conns",
                    Scope::SrcIp,
                    AccessPattern::ReadWriteOften,
                ),
            ]
        }
        fn process(&mut self, packet: &Packet, _ctx: &mut NfContext<'_>) -> Action {
            Action::Forward(packet.clone())
        }
    }

    fn vertex(id: u32, name: &str) -> VertexSpec {
        VertexSpec::new(id, name, Rc::new(|| Box::new(NoopNf)))
    }

    #[test]
    fn linear_chain_structure() {
        let dag = LogicalDag::linear(vec![vertex(1, "a"), vertex(2, "b"), vertex(3, "c")]);
        assert_eq!(dag.entries(), vec![VertexId(1)]);
        assert_eq!(dag.exits(), vec![VertexId(3)]);
        assert_eq!(dag.downstream_of(VertexId(1)), vec![VertexId(2)]);
        assert_eq!(dag.upstream_of(VertexId(3)), vec![VertexId(2)]);
        assert_eq!(dag.topo_order().unwrap().len(), 3);
    }

    #[test]
    fn off_path_vertices_are_not_exits() {
        let mut dag = LogicalDag::linear(vec![vertex(1, "nat"), vertex(2, "lb")]);
        let trojan = dag.add_vertex(vertex(3, "trojan").off_path());
        dag.add_edge(VertexId(1), trojan);
        // The LB is still the only exit; the off-path Trojan detector is not.
        assert_eq!(dag.exits(), vec![VertexId(2)]);
        assert_eq!(
            dag.downstream_of(VertexId(1)),
            vec![VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn cycle_and_duplicate_detection() {
        let mut dag = LogicalDag::new();
        dag.add_vertex(vertex(1, "a"));
        dag.add_vertex(vertex(2, "b"));
        dag.add_edge(VertexId(1), VertexId(2));
        dag.add_edge(VertexId(2), VertexId(1));
        assert!(matches!(
            dag.topo_order(),
            Err(DagError::NoEntry) | Err(DagError::Cyclic)
        ));

        let mut dup = LogicalDag::new();
        dup.add_vertex(vertex(1, "a"));
        dup.add_vertex(vertex(1, "again"));
        assert_eq!(
            dup.topo_order(),
            Err(DagError::DuplicateVertex(VertexId(1)))
        );

        let mut unknown = LogicalDag::new();
        unknown.add_vertex(vertex(1, "a"));
        unknown.add_edge(VertexId(1), VertexId(9));
        assert_eq!(
            unknown.topo_order(),
            Err(DagError::UnknownVertex(VertexId(9)))
        );
    }

    #[test]
    fn scopes_are_ordered_fine_to_coarse() {
        let v = vertex(1, "noop");
        let scopes = v.scopes();
        assert_eq!(scopes, vec![Scope::FiveTuple, Scope::SrcIp]);
        assert_eq!(v.state_objects().len(), 2);
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn parallelism_and_builders() {
        let v = vertex(4, "ids").with_parallelism(3);
        assert_eq!(v.parallelism, 3);
        assert_eq!(vertex(5, "x").with_parallelism(0).parallelism, 1);
        let nf = v.build_nf();
        assert_eq!(nf.name(), "noop");
    }
}
