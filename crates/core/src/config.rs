//! Framework configuration: externalization modes, cost model and feature
//! toggles used by the evaluation.

use chc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which of the paper's state-management models an NF instance runs under.
///
/// These correspond to the bars of Figures 8 and 10:
/// * `Traditional` — all state is NF-local (the baseline "T"),
/// * `Externalized` — every state access goes to the store, blocking ("EO"),
/// * `ExternalizedCached` — plus scope/access-pattern-aware caching ("EO+C"),
/// * `ExternalizedCachedNonBlocking` — plus not waiting for ACKs of
///   non-blocking operations ("EO+C+NA", the full CHC design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExternalizationMode {
    /// All state NF-local; no externalization (no R1–R6 guarantees).
    Traditional,
    /// Externalized state, blocking operations, no caching.
    Externalized,
    /// Externalized state with caching.
    ExternalizedCached,
    /// Externalized state with caching and non-blocking updates (full CHC).
    ExternalizedCachedNonBlocking,
}

impl ExternalizationMode {
    /// Label used in benchmark output (matches the paper's figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            ExternalizationMode::Traditional => "T",
            ExternalizationMode::Externalized => "EO",
            ExternalizationMode::ExternalizedCached => "EO+C",
            ExternalizationMode::ExternalizedCachedNonBlocking => "EO+C+NA",
        }
    }

    /// True if state lives in the external store.
    pub fn externalized(&self) -> bool {
        !matches!(self, ExternalizationMode::Traditional)
    }

    /// True if the client-side library may cache state (Table 1).
    pub fn caching(&self) -> bool {
        matches!(
            self,
            ExternalizationMode::ExternalizedCached
                | ExternalizationMode::ExternalizedCachedNonBlocking
        )
    }

    /// True if non-blocking operations skip waiting for the ACK.
    pub fn skip_acks(&self) -> bool {
        matches!(self, ExternalizationMode::ExternalizedCachedNonBlocking)
    }

    /// All modes, in the order the paper plots them.
    pub fn all() -> [ExternalizationMode; 4] {
        [
            ExternalizationMode::Traditional,
            ExternalizationMode::Externalized,
            ExternalizationMode::ExternalizedCached,
            ExternalizationMode::ExternalizedCachedNonBlocking,
        ]
    }
}

/// Virtual-time cost model for packet processing and state access.
///
/// The absolute values default to what the paper's evaluation implies for its
/// testbed: ≈2 µs of local processing per packet for a simple NF and a
/// ≈28 µs round trip to the datastore (the NAT's +190 µs at three RTTs per
/// packet and +0.54 µs with all optimizations back these out). Benchmarks can
/// override any of them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Base per-packet processing cost of an NF instance (header parsing,
    /// table lookups) excluding state access.
    pub base_processing: SimDuration,
    /// One-way latency between an NF instance and its datastore instance.
    /// A blocking operation costs two of these (one RTT).
    pub store_one_way: SimDuration,
    /// Local cache hit cost (applied per cached state access).
    pub cache_hit: SimDuration,
    /// CPU cost of issuing a non-blocking operation without waiting.
    pub async_issue: SimDuration,
    /// Per-hop link latency between chained NF instances.
    pub inter_nf_link: SimDuration,
    /// Cost for the root to stamp and log one packet locally.
    pub root_local_log: SimDuration,
    /// Cost for the root to persist its clock to the datastore (charged every
    /// `clock_persist_period` packets, §7.2).
    pub clock_persist: SimDuration,
    /// Extra latency of logging the packet in the datastore instead of
    /// locally at the root (§7.2: 1 µs local vs 34.2 µs datastore).
    pub store_log_extra: SimDuration,
    /// Cost of the synchronous "delete-before-output" round trip at the chain
    /// tail (§7.2 reports a 7.9 µs median overhead).
    pub delete_roundtrip: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_processing: SimDuration::from_nanos(2_000),
            store_one_way: SimDuration::from_nanos(14_000),
            cache_hit: SimDuration::from_nanos(60),
            async_issue: SimDuration::from_nanos(150),
            inter_nf_link: SimDuration::from_nanos(2_000),
            root_local_log: SimDuration::from_nanos(1_000),
            clock_persist: SimDuration::from_nanos(29_000),
            store_log_extra: SimDuration::from_nanos(33_200),
            delete_roundtrip: SimDuration::from_nanos(7_900),
        }
    }
}

impl CostModel {
    /// Round-trip time to the datastore.
    pub fn store_rtt(&self) -> SimDuration {
        self.store_one_way.times(2)
    }
}

/// Chain-wide configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// State-management model applied to every instance (benchmarks sweep it).
    pub mode: ExternalizationMode,
    /// Virtual-time cost model.
    pub costs: CostModel,
    /// Persist the root's logical clock to the store every `n` packets
    /// (§7.2; `1` persists on every packet, larger values amortize the cost).
    pub clock_persist_period: u64,
    /// Log packets at the root locally (`true`, 1 µs) or in the datastore
    /// (`false`, 34.2 µs but tolerant to simultaneous root+NF failure).
    pub log_packets_locally: bool,
    /// Send the chain-tail "delete" request before emitting the output packet
    /// (required for exactly-once delivery to the receiver, §5.4); turning it
    /// off models the asynchronous variant the paper also measures.
    pub delete_before_output: bool,
    /// Suppress duplicate outputs / state updates during replay and cloning
    /// (R5). Disabled only for the Table 5 ablation.
    pub duplicate_suppression: bool,
    /// Maximum number of packets the root may hold in its log before it
    /// starts dropping new arrivals (buffer-bloat guard, §5).
    pub root_log_capacity: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            mode: ExternalizationMode::ExternalizedCachedNonBlocking,
            costs: CostModel::default(),
            clock_persist_period: 100,
            log_packets_locally: true,
            delete_before_output: true,
            duplicate_suppression: true,
            root_log_capacity: 1_000_000,
        }
    }
}

impl ChainConfig {
    /// Configuration for one of the paper's externalization models with the
    /// default cost model.
    pub fn with_mode(mode: ExternalizationMode) -> ChainConfig {
        ChainConfig {
            mode,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags_follow_the_paper() {
        use ExternalizationMode::*;
        assert!(!Traditional.externalized());
        assert!(Externalized.externalized() && !Externalized.caching());
        assert!(ExternalizedCached.caching() && !ExternalizedCached.skip_acks());
        assert!(ExternalizedCachedNonBlocking.skip_acks());
        assert_eq!(Traditional.label(), "T");
        assert_eq!(ExternalizedCachedNonBlocking.label(), "EO+C+NA");
        assert_eq!(ExternalizationMode::all().len(), 4);
    }

    #[test]
    fn default_costs_reflect_testbed() {
        let c = CostModel::default();
        assert_eq!(c.store_rtt(), SimDuration::from_micros(28));
        assert!(c.cache_hit < c.store_one_way);
        let cfg = ChainConfig::default();
        assert!(cfg.duplicate_suppression);
        assert!(cfg.delete_before_output);
        assert_eq!(
            ChainConfig::with_mode(ExternalizationMode::Externalized)
                .mode
                .label(),
            "EO"
        );
    }
}
