//! Per-vertex output logging and the runtime port of the per-packet XOR
//! delete protocol (§5, Figure 6; FTMB-style output logging per PAPERS.md).
//!
//! The root's [`crate::PacketLog`] can only restore packets at the chain
//! *entry*; a replay injected there is eaten by upstream duplicate
//! suppression before it reaches a mid-chain or tail replacement. Closing
//! that gap needs two things, both of which live here:
//!
//! - [`VertexLogs`]: every *armed* vertex (an upstream of some vertex the
//!   fault plan may kill) logs its egress stream into its own bounded
//!   [`crate::PacketLog`]. The supervisor then replays from the log of the
//!   killed vertex's upstream, so replayed packets enter the chain at the
//!   right depth.
//! - [`XorDeleteLedger`]: the runtime's commit-vector. Each logging vertex
//!   folds a per-packet [`delete_token`] into both the packet envelope
//!   (`TaggedPacket::xor_vector`) and the ledger slot of the packet's clock
//!   counter; the sink folds the envelope's accumulated vector back and marks
//!   the counter delivered. A slot that is *delivered with zero residue* is
//!   confirmed end-to-end: the logging vertex may delete it, and a tail
//!   replacement may skip re-emitting it — bounding the re-delivery window of
//!   a tail kill to the unconfirmed suffix.

use crate::rootlog::PacketLog;
use chc_store::{InstanceId, VertexId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Reserved instance id the warm-standby root stamps onto the packets it
/// replays after taking over injection (`TaggedPacket::replay_for`). Distinct
/// from `chc_store::SINK_COMMIT_SOURCE` (`u32::MAX`).
pub const STANDBY_ROOT_ID: InstanceId = InstanceId(u32::MAX - 1);

/// A nonzero XOR delete token for one logged egress packet.
///
/// The simulator's [`crate::message::xor_token`] keys tokens by state object;
/// the runtime protocol tokens the *logged packet itself*, so the token mixes
/// the logging instance with the packet's clock counter. Bit 15 is forced so
/// the token can never be zero (a zero token would make the fold a no-op and
/// a forged "confirmed" indistinguishable from a real one).
pub fn delete_token(instance: InstanceId, counter: u64) -> u32 {
    let low = ((counter as u32) ^ (counter >> 32) as u32) & 0x7fff;
    ((instance.0 & 0xffff) << 16) | low | 0x8000
}

const DELIVERED: u64 = 1 << 63;
const RESIDUE_MASK: u64 = 0xffff_ffff;

/// One atomic slot per clock counter: bit 63 records first-copy delivery at
/// the sink, the low 32 bits accumulate XOR delete tokens. A counter is
/// *confirmed* once delivered; it is *deletable* once delivered with zero
/// residue (every token folded in by a logging vertex was folded back out by
/// the sink). A delivered slot with nonzero residue at shutdown means a
/// token was folded exactly once — a protocol violation the sentinel reports.
#[derive(Debug, Default)]
pub struct XorDeleteLedger {
    slots: Vec<AtomicU64>,
}

impl XorDeleteLedger {
    /// A ledger covering clock counters `1..=max_counter` (slot 0 unused so
    /// counters index directly).
    pub fn new(max_counter: u64) -> XorDeleteLedger {
        let mut slots = Vec::with_capacity(max_counter as usize + 1);
        slots.resize_with(max_counter as usize + 1, AtomicU64::default);
        XorDeleteLedger { slots }
    }

    fn slot(&self, counter: u64) -> Option<&AtomicU64> {
        self.slots.get(counter as usize)
    }

    /// Fold `token` into the counter's accumulator (used by both sides of
    /// the protocol: the logging vertex folds its token in, the sink folds
    /// the envelope's accumulated vector back out).
    pub fn fold(&self, counter: u64, token: u32) {
        if let Some(s) = self.slot(counter) {
            s.fetch_xor(token as u64, Ordering::AcqRel);
        }
    }

    /// Record first-copy delivery of the counter at the sink.
    pub fn mark_delivered(&self, counter: u64) {
        if let Some(s) = self.slot(counter) {
            s.fetch_or(DELIVERED, Ordering::AcqRel);
        }
    }

    /// Whether the sink has delivered the counter's first copy.
    pub fn confirmed(&self, counter: u64) -> bool {
        self.slot(counter)
            .is_some_and(|s| s.load(Ordering::Acquire) & DELIVERED != 0)
    }

    /// The counter's current XOR accumulator (zero once every folded token
    /// cancelled out).
    pub fn residue(&self, counter: u64) -> u32 {
        self.slot(counter)
            .map_or(0, |s| (s.load(Ordering::Acquire) & RESIDUE_MASK) as u32)
    }

    /// Delivered with zero residue: safe to delete from every vertex log.
    pub fn deletable(&self, counter: u64) -> bool {
        self.slot(counter).is_some_and(|s| {
            let v = s.load(Ordering::Acquire);
            v & DELIVERED != 0 && v & RESIDUE_MASK == 0
        })
    }

    /// Counters delivered but with nonzero residue — each is a violation of
    /// the delete protocol (a token folded in but never folded back out, or
    /// vice versa). Scanned at shutdown by the sentinel.
    pub fn dirty_confirmed(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let v = s.load(Ordering::Relaxed);
                v & DELIVERED != 0 && v & RESIDUE_MASK != 0
            })
            .map(|(c, _)| c as u64)
            .collect()
    }

    /// Number of addressable counters (excluding the unused slot 0).
    pub fn len(&self) -> usize {
        self.slots.len().saturating_sub(1)
    }

    /// True when the ledger covers no counters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-log statistics snapshot, surfaced through `FaultReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexLogStats {
    pub vertex: VertexId,
    pub high_water: usize,
    pub truncated: u64,
    pub deleted: u64,
    pub final_len: usize,
    pub rejected: u64,
}

/// The engine's packet logs: the root's (always present) plus one bounded
/// egress log per armed vertex. Armed vertices are fixed before the run
/// starts; each log has its own lock so logging vertices never contend with
/// the root or with each other.
#[derive(Debug, Default)]
pub struct VertexLogs {
    root: Mutex<PacketLog>,
    vertices: BTreeMap<VertexId, Mutex<PacketLog>>,
}

impl VertexLogs {
    /// Container with a root log of `root_capacity` and no armed vertices.
    pub fn new(root_capacity: usize) -> VertexLogs {
        VertexLogs {
            root: Mutex::new(PacketLog::new(root_capacity)),
            vertices: BTreeMap::new(),
        }
    }

    /// Arm `vertex` with its own egress log. Call before sharing the
    /// container; arming is not possible once the run starts.
    pub fn arm(&mut self, vertex: VertexId, capacity: usize) {
        self.vertices
            .entry(vertex)
            .or_insert_with(|| Mutex::new(PacketLog::new(capacity)));
    }

    /// The root's log.
    pub fn root(&self) -> MutexGuard<'_, PacketLog> {
        self.root.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The egress log of `vertex`, if armed.
    pub fn vertex(&self, vertex: VertexId) -> Option<MutexGuard<'_, PacketLog>> {
        self.vertices
            .get(&vertex)
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Whether `vertex` logs its egress.
    pub fn is_armed(&self, vertex: VertexId) -> bool {
        self.vertices.contains_key(&vertex)
    }

    /// The armed vertices, in id order.
    pub fn armed(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.keys().copied()
    }

    /// Statistics for every armed vertex log, in id order.
    pub fn stats(&self) -> Vec<VertexLogStats> {
        self.vertices
            .iter()
            .map(|(v, m)| {
                let l = m.lock().unwrap_or_else(|p| p.into_inner());
                VertexLogStats {
                    vertex: *v,
                    high_water: l.high_water(),
                    truncated: l.truncated(),
                    deleted: l.deleted(),
                    final_len: l.len(),
                    rejected: l.rejected(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TaggedPacket;
    use chc_packet::Packet;
    use chc_store::Clock;

    fn tp(counter: u64) -> TaggedPacket {
        TaggedPacket::new(
            Packet::builder().id(counter).build(),
            Clock::with_root(0, counter),
        )
    }

    #[test]
    fn delete_tokens_are_nonzero_and_distinguish_instances() {
        for counter in [0u64, 1, 0x7fff, 0x8000, u64::MAX] {
            for inst in [0u32, 1, 0xffff, u32::MAX] {
                assert_ne!(delete_token(InstanceId(inst), counter), 0);
            }
        }
        assert_ne!(
            delete_token(InstanceId(1), 5),
            delete_token(InstanceId(2), 5)
        );
    }

    #[test]
    fn ledger_confirms_and_cancels() {
        let ledger = XorDeleteLedger::new(10);
        let t = delete_token(InstanceId(3), 7);
        ledger.fold(7, t);
        assert!(!ledger.confirmed(7));
        assert_eq!(ledger.residue(7), t);
        // Sink delivers the first copy and folds the envelope vector back.
        ledger.mark_delivered(7);
        assert!(ledger.confirmed(7));
        assert!(!ledger.deletable(7), "delivered but residue outstanding");
        assert_eq!(ledger.dirty_confirmed(), vec![7]);
        ledger.fold(7, t);
        assert!(ledger.deletable(7));
        assert!(ledger.dirty_confirmed().is_empty());
        // Out-of-range counters are ignored, not a panic.
        ledger.fold(999, t);
        ledger.mark_delivered(999);
        assert!(!ledger.confirmed(999));
        assert_eq!(ledger.len(), 10);
    }

    #[test]
    fn two_logging_vertices_cancel_through_one_envelope() {
        // The envelope accumulates both vertices' tokens; the sink folds the
        // accumulated vector once and the slot still cancels to zero.
        let ledger = XorDeleteLedger::new(4);
        let a = delete_token(InstanceId(1), 2);
        let b = delete_token(InstanceId(2), 2);
        ledger.fold(2, a);
        ledger.fold(2, b);
        let envelope = a ^ b;
        ledger.fold(2, envelope);
        ledger.mark_delivered(2);
        assert!(ledger.deletable(2));
    }

    #[test]
    fn vertex_logs_arm_and_delete_confirmed() {
        let mut logs = VertexLogs::new(8);
        logs.arm(VertexId(2), 4);
        assert!(logs.is_armed(VertexId(2)));
        assert!(!logs.is_armed(VertexId(3)));
        assert!(logs.vertex(VertexId(3)).is_none());
        logs.root().insert(tp(1));
        {
            let mut l = logs.vertex(VertexId(2)).unwrap();
            for c in 1..=3 {
                l.insert(tp(c));
            }
        }
        let ledger = XorDeleteLedger::new(8);
        for c in [1, 2] {
            ledger.mark_delivered(c);
        }
        let dropped = logs
            .vertex(VertexId(2))
            .unwrap()
            .delete_where(|c| ledger.deletable(c.counter()));
        assert_eq!(dropped, 2);
        let stats = logs.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].vertex, VertexId(2));
        assert_eq!(stats[0].deleted, 2);
        assert_eq!(stats[0].final_len, 1);
        assert_eq!(stats[0].high_water, 3);
        assert_eq!(logs.armed().collect::<Vec<_>>(), vec![VertexId(2)]);
        assert_eq!(logs.root().len(), 1, "root log untouched");
    }
}
