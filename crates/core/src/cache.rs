//! Caching-strategy selection (Table 1 of the paper).
//!
//! The client-side datastore library picks a state-management strategy per
//! state object from its **scope** (per-flow vs. cross-flow) and **access
//! pattern** (write-mostly, read-heavy, read/write often):
//!
//! | Scope      | Access pattern           | Strategy                                  |
//! |------------|--------------------------|-------------------------------------------|
//! | any        | write mostly, read rarely| non-blocking ops, no caching               |
//! | per-flow   | any                      | cache, periodic non-blocking flush          |
//! | cross-flow | write rarely (read heavy)| cache with store callbacks                  |
//! | cross-flow | write/read often         | cache only while the traffic split gives the instance exclusive access; otherwise flush and operate on the store |

use chc_store::{AccessPattern, StateScope};
use serde::{Deserialize, Serialize};

/// How the client-side library manages one state object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheStrategy {
    /// Offload updates with non-blocking semantics; never cache. Reads (rare)
    /// are served by the store after applying outstanding updates.
    NonBlockingNoCache,
    /// Cache at the owning instance; flush updates to the store with
    /// non-blocking semantics for fault tolerance (per-flow objects).
    CacheWithPeriodicFlush,
    /// Cache read-only copies; the store pushes callbacks on every update
    /// (read-heavy cross-flow objects).
    CacheWithCallbacks,
    /// Cache only while the upstream traffic split gives this instance
    /// exclusive access to the object; flush and fall back to store-side
    /// operations when sharing begins (write/read-often cross-flow objects).
    CacheIfExclusive,
}

impl CacheStrategy {
    /// Select the strategy for an object as per Table 1.
    pub fn select(scope: StateScope, access: AccessPattern) -> CacheStrategy {
        match (scope, access) {
            // Row 1: write-mostly / read-rarely objects of any scope.
            (_, AccessPattern::WriteMostlyReadRarely) => CacheStrategy::NonBlockingNoCache,
            // Row 2: per-flow objects.
            (StateScope::PerFlow, _) => CacheStrategy::CacheWithPeriodicFlush,
            // Row 3: read-heavy cross-flow objects.
            (StateScope::CrossFlow(_), AccessPattern::ReadMostly) => {
                CacheStrategy::CacheWithCallbacks
            }
            // Row 4: write/read-often cross-flow objects.
            (StateScope::CrossFlow(_), AccessPattern::ReadWriteOften) => {
                CacheStrategy::CacheIfExclusive
            }
        }
    }

    /// True if the strategy ever keeps a locally cached copy.
    pub fn caches(&self) -> bool {
        !matches!(self, CacheStrategy::NonBlockingNoCache)
    }

    /// True if updates to the object may be issued without waiting for the
    /// store's reply.
    pub fn non_blocking_updates(&self) -> bool {
        matches!(
            self,
            CacheStrategy::NonBlockingNoCache | CacheStrategy::CacheWithPeriodicFlush
        )
    }

    /// True if the strategy relies on store callbacks to keep caches fresh.
    pub fn uses_callbacks(&self) -> bool {
        matches!(self, CacheStrategy::CacheWithCallbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::Scope;

    #[test]
    fn table1_mapping() {
        use AccessPattern::*;
        use CacheStrategy::*;
        // Row 1: any scope, write mostly.
        assert_eq!(
            CacheStrategy::select(StateScope::PerFlow, WriteMostlyReadRarely),
            NonBlockingNoCache
        );
        assert_eq!(
            CacheStrategy::select(StateScope::CrossFlow(Scope::Global), WriteMostlyReadRarely),
            NonBlockingNoCache
        );
        // Row 2: per-flow, any other pattern.
        assert_eq!(
            CacheStrategy::select(StateScope::PerFlow, ReadMostly),
            CacheWithPeriodicFlush
        );
        assert_eq!(
            CacheStrategy::select(StateScope::PerFlow, ReadWriteOften),
            CacheWithPeriodicFlush
        );
        // Row 3: cross-flow read-heavy.
        assert_eq!(
            CacheStrategy::select(StateScope::CrossFlow(Scope::SrcIp), ReadMostly),
            CacheWithCallbacks
        );
        // Row 4: cross-flow write/read often.
        assert_eq!(
            CacheStrategy::select(StateScope::CrossFlow(Scope::SrcIp), ReadWriteOften),
            CacheIfExclusive
        );
    }

    #[test]
    fn strategy_properties() {
        assert!(!CacheStrategy::NonBlockingNoCache.caches());
        assert!(CacheStrategy::CacheWithPeriodicFlush.caches());
        assert!(CacheStrategy::CacheWithPeriodicFlush.non_blocking_updates());
        assert!(!CacheStrategy::CacheWithCallbacks.non_blocking_updates());
        assert!(CacheStrategy::CacheWithCallbacks.uses_callbacks());
        assert!(!CacheStrategy::CacheIfExclusive.uses_callbacks());
    }
}
