//! Chain deployment and orchestration.
//!
//! [`ChainController`] compiles a [`LogicalDag`] into a physical chain on the
//! discrete-event simulator: a root, per-vertex NF instances, the shared
//! datastore and the end-host sink. It is also the "framework manager" of the
//! paper's §3/§6: it performs elastic scaling (with the Figure 4 handover),
//! straggler mitigation (clone + replay, §5.3), NF/root/store failover
//! (§5.4), and collects the measurements the evaluation harness reports.

use crate::config::ChainConfig;
use crate::dag::{DagError, LogicalDag, VertexSpec};
use crate::instance::{InstanceParams, NfInstanceActor};
use crate::message::{Msg, TaggedPacket};
use crate::root::{RootActor, RootStats};
use crate::sink::SinkActor;
use crate::splitter::{PartitionTable, Splitter};
use crate::state::{SharedStore, StateClient};
use chc_packet::{PacketId, Scope, ScopeKey, Trace};
use chc_sim::{
    ActorId, LinkConfig, SimDuration, Simulation, SimulationReport, Summary, VirtualTime,
};
use chc_store::{
    recover_shared_state, Checkpoint, Clock, InstanceId, RecoveryInput, RecoveryReport, VertexId,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Deployment map: which actors host which instances of which vertex.
#[derive(Debug, Default)]
pub struct Topology {
    actors: HashMap<VertexId, Vec<ActorId>>,
    instance_ids: HashMap<VertexId, Vec<InstanceId>>,
    directory: HashMap<InstanceId, ActorId>,
}

impl Topology {
    /// Register an instance (appended at the next index of the vertex).
    pub fn add_instance(
        &mut self,
        vertex: VertexId,
        instance: InstanceId,
        actor: ActorId,
    ) -> usize {
        self.actors.entry(vertex).or_default().push(actor);
        self.instance_ids.entry(vertex).or_default().push(instance);
        self.directory.insert(instance, actor);
        self.actors[&vertex].len() - 1
    }

    /// Replace the instance at `index` of `vertex` (failover keeps the same
    /// actor slot so routing indices stay valid).
    pub fn replace_instance(
        &mut self,
        vertex: VertexId,
        index: usize,
        instance: InstanceId,
        actor: ActorId,
    ) {
        if let Some(ids) = self.instance_ids.get_mut(&vertex) {
            if let Some(old) = ids.get(index).copied() {
                self.directory.remove(&old);
            }
            ids[index] = instance;
        }
        if let Some(actors) = self.actors.get_mut(&vertex) {
            actors[index] = actor;
        }
        self.directory.insert(instance, actor);
    }

    /// The actor hosting instance `index` of `vertex`.
    pub fn actor_of(&self, vertex: VertexId, index: usize) -> Option<ActorId> {
        self.actors.get(&vertex).and_then(|v| v.get(index)).copied()
    }

    /// The actor hosting `instance`.
    pub fn actor_of_instance(&self, instance: InstanceId) -> Option<ActorId> {
        self.directory.get(&instance).copied()
    }

    /// Instance ids of a vertex in index order.
    pub fn instances_of(&self, vertex: VertexId) -> Vec<InstanceId> {
        self.instance_ids.get(&vertex).cloned().unwrap_or_default()
    }

    /// Index of `instance` within its vertex.
    pub fn index_of(&self, vertex: VertexId, instance: InstanceId) -> Option<usize> {
        self.instance_ids
            .get(&vertex)?
            .iter()
            .position(|i| *i == instance)
    }

    /// Every deployed instance as `(vertex, instance, actor)`.
    pub fn all_instances(&self) -> Vec<(VertexId, InstanceId, ActorId)> {
        let mut out = Vec::new();
        for (vertex, ids) in &self.instance_ids {
            for (idx, id) in ids.iter().enumerate() {
                out.push((*vertex, *id, self.actors[vertex][idx]));
            }
        }
        out
    }
}

/// Identifiers of the fixed chain components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainHandles {
    /// The root actor.
    pub root: ActorId,
    /// The end-host sink actor.
    pub sink: ActorId,
}

/// Per-instance measurement snapshot.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Vertex the instance belongs to.
    pub vertex: VertexId,
    /// Instance id.
    pub instance: InstanceId,
    /// Packets processed.
    pub processed: u64,
    /// Packets dropped by the NF's own decision.
    pub dropped_by_nf: u64,
    /// Duplicates suppressed at the input queue.
    pub suppressed_duplicates: u64,
    /// Duplicate packets processed (suppression off).
    pub duplicate_packets: u64,
    /// State updates issued by duplicate packets.
    pub duplicate_state_updates: u64,
    /// Five-number summary of per-packet processing time.
    pub proc_time: Summary,
    /// Five-number summary of per-packet time including worker queueing.
    pub total_time: Summary,
    /// Goodput of this instance in Gbps.
    pub throughput_gbps: f64,
    /// Alerts raised by the NF.
    pub alerts: Vec<(Clock, String)>,
}

/// Chain-wide measurement snapshot.
#[derive(Debug, Clone)]
pub struct ChainMetrics {
    /// One report per deployed instance.
    pub instances: Vec<InstanceReport>,
    /// Distinct packets delivered to the end host.
    pub sink_delivered: usize,
    /// Duplicate packets observed by the end host.
    pub sink_duplicates: u64,
    /// End-host goodput in Gbps.
    pub sink_gbps: f64,
    /// Root counters.
    pub root: RootStats,
}

impl ChainMetrics {
    /// The report of a specific instance, if present.
    pub fn instance(&self, vertex: VertexId, instance: InstanceId) -> Option<&InstanceReport> {
        self.instances
            .iter()
            .find(|r| r.vertex == vertex && r.instance == instance)
    }

    /// All reports of a vertex.
    pub fn vertex(&self, vertex: VertexId) -> Vec<&InstanceReport> {
        self.instances
            .iter()
            .filter(|r| r.vertex == vertex)
            .collect()
    }

    /// All alerts raised anywhere in the chain, in (clock, message) form.
    pub fn alerts(&self) -> Vec<(Clock, String)> {
        let mut alerts: Vec<(Clock, String)> = self
            .instances
            .iter()
            .flat_map(|r| r.alerts.clone())
            .collect();
        alerts.sort_by_key(|(c, _)| *c);
        alerts
    }
}

/// The chain controller / framework manager. See the module documentation.
pub struct ChainController {
    /// The underlying simulation (exposed for advanced experiments).
    pub sim: Simulation<Msg>,
    /// The shared datastore.
    pub store: SharedStore,
    config: ChainConfig,
    dag: LogicalDag,
    partition: Rc<RefCell<PartitionTable>>,
    topology: Rc<RefCell<Topology>>,
    handles: ChainHandles,
    root_id: u8,
    next_instance: u32,
    workers_per_instance: usize,
    last_checkpoint: Option<Checkpoint>,
}

impl ChainController {
    /// Compile and deploy a logical DAG.
    pub fn new(
        dag: LogicalDag,
        config: ChainConfig,
        seed: u64,
    ) -> Result<ChainController, DagError> {
        dag.topo_order()?;
        let mut sim: Simulation<Msg> = Simulation::new(seed);
        sim.set_default_link(LinkConfig::with_latency(config.costs.inter_nf_link));
        let store = SharedStore::new();
        let partition = Rc::new(RefCell::new(PartitionTable::new()));
        let topology = Rc::new(RefCell::new(Topology::default()));

        // One splitter per vertex, partitioning on the coarsest *partitionable*
        // scope of the vertex's state objects: coarser scopes minimise shared
        // state, but the global scope cannot spread load across instances, so
        // it is skipped (§4.1 walks from coarse to fine until load balances).
        for v in dag.vertices() {
            let scope = v
                .scopes()
                .into_iter()
                .filter(|s| *s != Scope::Global)
                .max()
                .unwrap_or(Scope::FiveTuple);
            partition
                .borrow_mut()
                .insert(Splitter::new(v.id, scope, v.parallelism));
        }

        let sink = sim.add_actor(Box::new(SinkActor::new()));
        let root = sim.add_actor(Box::new(RootActor::new(
            0,
            config,
            dag.entries(),
            partition.clone(),
            topology.clone(),
            store.clone(),
        )));

        let mut controller = ChainController {
            sim,
            store,
            config,
            dag,
            partition,
            topology,
            handles: ChainHandles { root, sink },
            root_id: 0,
            next_instance: 0,
            workers_per_instance: 8,
            last_checkpoint: None,
        };

        for v in controller.dag.vertices().to_vec() {
            for _ in 0..v.parallelism {
                controller.spawn_instance(&v, false);
            }
        }
        Ok(controller)
    }

    /// Number of worker threads modelled per instance (default 8, matching
    /// the paper's multi-threaded NF processes on 8-core machines).
    pub fn set_workers_per_instance(&mut self, workers: usize) {
        self.workers_per_instance = workers.max(1);
    }

    /// The fixed component handles.
    pub fn handles(&self) -> ChainHandles {
        self.handles
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sim.now()
    }

    fn spawn_instance(&mut self, spec: &VertexSpec, awaiting_replay: bool) -> (InstanceId, usize) {
        let instance = InstanceId(self.next_instance);
        self.next_instance += 1;
        let nf = spec.build_nf();
        let objects = nf.state_objects();
        let client = StateClient::new(
            spec.id,
            instance,
            Box::new(self.store.clone()),
            self.config.mode,
            self.config.costs,
            &objects,
        );
        let params = InstanceParams {
            vertex: spec.id,
            instance,
            downstream: self.dag.downstream_of(spec.id),
            is_tail: self.dag.exits().contains(&spec.id),
            off_path: spec.off_path,
            workers: self.workers_per_instance,
            awaiting_replay,
        };
        let actor = self.sim.add_actor(Box::new(NfInstanceActor::new(
            params,
            nf,
            client,
            self.config,
            self.partition.clone(),
            self.topology.clone(),
            self.handles.root,
            self.handles.sink,
        )));
        let index = self
            .topology
            .borrow_mut()
            .add_instance(spec.id, instance, actor);
        (instance, index)
    }

    // ------------------------------------------------------------------
    // Traffic and execution
    // ------------------------------------------------------------------

    /// Inject a whole trace: each packet is delivered to the root at its
    /// arrival timestamp.
    pub fn inject_trace(&mut self, trace: &Trace) {
        for pkt in trace.iter() {
            let at = VirtualTime::from_nanos(pkt.arrival_ns);
            self.sim.inject_at(
                at,
                self.handles.root,
                Msg::Data(TaggedPacket::new(pkt.clone(), Clock::default())),
            );
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) -> SimulationReport {
        self.sim.run()
    }

    /// Run until the given virtual time.
    pub fn run_until(&mut self, deadline: VirtualTime) -> SimulationReport {
        self.sim.run_until(deadline)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Instance ids deployed for a vertex (index order).
    pub fn instances_of(&self, vertex: VertexId) -> Vec<InstanceId> {
        self.topology.borrow().instances_of(vertex)
    }

    /// Run a closure against the actor of instance `index` of `vertex`.
    pub fn with_instance<R>(
        &mut self,
        vertex: VertexId,
        index: usize,
        f: impl FnOnce(&mut NfInstanceActor) -> R,
    ) -> Option<R> {
        let actor = self.topology.borrow().actor_of(vertex, index)?;
        self.sim.actor_mut::<NfInstanceActor>(actor).map(f)
    }

    /// Gather a measurement snapshot of the whole chain.
    pub fn metrics(&mut self) -> ChainMetrics {
        let all = self.topology.borrow().all_instances();
        let mut instances = Vec::new();
        for (vertex, instance, actor) in all {
            if let Some(a) = self.sim.actor_mut::<NfInstanceActor>(actor) {
                instances.push(InstanceReport {
                    vertex,
                    instance,
                    processed: a.metrics.processed,
                    dropped_by_nf: a.metrics.dropped_by_nf,
                    suppressed_duplicates: a.metrics.suppressed_duplicates,
                    duplicate_packets: a.metrics.duplicate_packets,
                    duplicate_state_updates: a.metrics.duplicate_state_updates,
                    proc_time: a.metrics.proc_time.summary(),
                    total_time: a.metrics.total_time.summary(),
                    throughput_gbps: a.metrics.throughput.gbps(),
                    alerts: a.metrics.alerts.clone(),
                });
            }
        }
        instances.sort_by_key(|r| (r.vertex, r.instance));
        let (sink_delivered, sink_duplicates, sink_gbps) = {
            let sink = self
                .sim
                .actor::<SinkActor>(self.handles.sink)
                .expect("sink");
            (sink.delivered(), sink.duplicates, sink.throughput.gbps())
        };
        let root = self
            .sim
            .actor::<RootActor>(self.handles.root)
            .map(|r| r.stats)
            .unwrap_or_default();
        ChainMetrics {
            instances,
            sink_delivered,
            sink_duplicates,
            sink_gbps,
            root,
        }
    }

    /// Trace packet ids delivered to the end host, in arrival order.
    pub fn delivered_ids(&self) -> Vec<PacketId> {
        self.sim
            .actor::<SinkActor>(self.handles.sink)
            .map(|s| s.delivered_ids())
            .unwrap_or_default()
    }

    /// Processing-time series of one instance (for Figures 9 and 13).
    pub fn instance_series(&mut self, vertex: VertexId, index: usize) -> Vec<(VirtualTime, f64)> {
        self.with_instance(vertex, index, |a| a.metrics.series.points().to_vec())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Elastic scaling and flow reallocation (R2/R3, Figure 4)
    // ------------------------------------------------------------------

    /// Add one instance to a vertex. Returns `(instance id, index)`.
    pub fn scale_up(&mut self, vertex: VertexId) -> (InstanceId, usize) {
        let spec = self.dag.vertex(vertex).expect("vertex exists").clone();
        let (instance, index) = self.spawn_instance(&spec, false);
        if let Some(s) = self.partition.borrow_mut().splitter_mut(vertex) {
            s.set_instance_count(index + 1);
        }
        (instance, index)
    }

    /// Add one instance to a vertex and schedule the traffic cut on the
    /// logical clock: packets stamped with counter `>= first_counter` hash
    /// across the enlarged instance set. Because the cut is keyed on the
    /// clock rather than on (virtual or wall) time, the flow→instance history
    /// is identical on the simulator and on the real-thread runtime — the
    /// substrate-equivalence tests rely on this. Returns `(instance, index)`.
    pub fn schedule_scale_up(
        &mut self,
        vertex: VertexId,
        first_counter: u64,
    ) -> (InstanceId, usize) {
        let spec = self.dag.vertex(vertex).expect("vertex exists").clone();
        let (instance, index) = self.spawn_instance(&spec, false);
        if let Some(s) = self.partition.borrow_mut().splitter_mut(vertex) {
            s.schedule_scale(first_counter, index + 1);
        }
        (instance, index)
    }

    /// Reallocate the given scope keys of `vertex` to the instance at
    /// `to_index`, running the Figure 4 handover: the splitter redirects and
    /// marks the moved flows, and each previous owner is told to flush its
    /// cached per-flow state, release ownership and notify the new owner.
    pub fn move_flows(&mut self, vertex: VertexId, keys: &[ScopeKey], to_index: usize) {
        let new_instance = self
            .topology
            .borrow()
            .instances_of(vertex)
            .get(to_index)
            .copied();
        let Some(new_instance) = new_instance else {
            return;
        };
        let moved = {
            let mut table = self.partition.borrow_mut();
            match table.splitter_mut(vertex) {
                Some(s) => s.reallocate(keys, to_index),
                None => Vec::new(),
            }
        };
        // Group moved keys by previous owner and send one flush each.
        let mut by_old: HashMap<usize, Vec<ScopeKey>> = HashMap::new();
        for (key, old) in moved {
            by_old.entry(old).or_default().push(key);
        }
        for (old_index, _keys) in by_old {
            if let Some(actor) = self.topology.borrow().actor_of(vertex, old_index) {
                self.sim.inject_after(
                    SimDuration::ZERO,
                    actor,
                    Msg::FlushRequest {
                        object_names: Vec::new(),
                        release_ownership: true,
                        notify: Some(new_instance),
                    },
                );
            }
        }
    }

    /// Grant/revoke exclusive access to a write/read-often shared object for
    /// every instance of a vertex (drives the Figure 9 experiment).
    pub fn set_exclusivity(&mut self, vertex: VertexId, object: &str, exclusive: bool) {
        let actors: Vec<ActorId> = {
            let topo = self.topology.borrow();
            topo.instances_of(vertex)
                .iter()
                .filter_map(|i| topo.actor_of_instance(*i))
                .collect()
        };
        for actor in actors {
            self.sim.inject_after(
                SimDuration::ZERO,
                actor,
                Msg::SetExclusive {
                    object: object.to_string(),
                    exclusive,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Straggler mitigation (R5, §5.3)
    // ------------------------------------------------------------------

    /// Emulate a straggler: add `extra` processing delay to every packet of
    /// the instance at `index` of `vertex`.
    pub fn set_straggler(&mut self, vertex: VertexId, index: usize, extra: SimDuration) {
        if let Some(actor) = self.topology.borrow().actor_of(vertex, index) {
            self.sim.inject_after(
                SimDuration::ZERO,
                actor,
                Msg::SetProcessingDelay {
                    extra_nanos: extra.as_nanos(),
                },
            );
        }
    }

    /// Deploy a clone of the straggler at `straggler_index`: the clone starts
    /// from the straggler's externalized state, the upstream splitter
    /// replicates the straggler's traffic to it, and the root replays all
    /// logged packets to bring it up to speed (§5.3). Returns the clone.
    pub fn clone_for_straggler(
        &mut self,
        vertex: VertexId,
        straggler_index: usize,
    ) -> (InstanceId, usize) {
        let spec = self.dag.vertex(vertex).expect("vertex exists").clone();
        let (clone_id, clone_index) = self.spawn_instance(&spec, true);
        {
            let mut table = self.partition.borrow_mut();
            if let Some(s) = table.splitter_mut(vertex) {
                // The clone is reachable for mirroring but does not take over
                // any partition of its own yet.
                s.set_instance_count(clone_index + 1);
                s.set_mirror(straggler_index, clone_index);
            }
        }
        self.sim.inject_after(
            SimDuration::ZERO,
            self.handles.root,
            Msg::ReplayRequest { target: clone_id },
        );
        (clone_id, clone_index)
    }

    // ------------------------------------------------------------------
    // Failure injection and recovery (R1/R6, §5.4)
    // ------------------------------------------------------------------

    /// Kill an NF instance (fail-stop) at the current virtual time.
    pub fn fail_instance(&mut self, vertex: VertexId, index: usize) {
        if let Some(actor) = self.topology.borrow().actor_of(vertex, index) {
            self.sim.fail_now(actor);
        }
    }

    /// Bring up a failover instance for the failed instance at `index`:
    /// the store re-associates the failed instance's per-flow state with the
    /// failover instance, and the root replays logged packets to it.
    pub fn failover_instance(&mut self, vertex: VertexId, index: usize) -> InstanceId {
        let spec = self.dag.vertex(vertex).expect("vertex exists").clone();
        let old_instance = self.topology.borrow().instances_of(vertex)[index];
        let old_actor = self
            .topology
            .borrow()
            .actor_of(vertex, index)
            .expect("actor");

        let new_instance = InstanceId(self.next_instance);
        self.next_instance += 1;
        let nf = spec.build_nf();
        let objects = nf.state_objects();
        let client = StateClient::new(
            spec.id,
            new_instance,
            Box::new(self.store.clone()),
            self.config.mode,
            self.config.costs,
            &objects,
        );
        let params = InstanceParams {
            vertex: spec.id,
            instance: new_instance,
            downstream: self.dag.downstream_of(spec.id),
            is_tail: self.dag.exits().contains(&spec.id),
            off_path: spec.off_path,
            workers: self.workers_per_instance,
            awaiting_replay: true,
        };
        let actor = NfInstanceActor::new(
            params,
            nf,
            client,
            self.config,
            self.partition.clone(),
            self.topology.clone(),
            self.handles.root,
            self.handles.sink,
        );
        // The failover instance takes over the failed instance's slot (same
        // actor id → same splitter index), and the store re-associates state.
        self.sim.replace_actor(old_actor, Box::new(actor));
        self.topology
            .borrow_mut()
            .replace_instance(vertex, index, new_instance, old_actor);
        self.store
            .with(|s| s.reassign_owner(old_instance, new_instance));
        self.sim.inject_after(
            SimDuration::ZERO,
            self.handles.root,
            Msg::ReplayRequest {
                target: new_instance,
            },
        );
        new_instance
    }

    /// Kill the root (fail-stop).
    pub fn fail_root(&mut self) {
        self.sim.fail_now(self.handles.root);
    }

    /// Bring up a failover root: it reads the last persisted clock from the
    /// store and resumes stamping; the failed root's local packet log is lost
    /// (equivalent to a network drop of the in-flight packets, §B.3).
    pub fn recover_root(&mut self) {
        let root = RootActor::recovered(
            self.root_id,
            self.config,
            self.dag.entries(),
            self.partition.clone(),
            self.topology.clone(),
            self.store.clone(),
        );
        self.sim.replace_actor(self.handles.root, Box::new(root));
    }

    /// Take a datastore checkpoint (used before `fail_store`/`recover_store`).
    pub fn checkpoint_store(&mut self) {
        let cp = self.store.with(|s| s.checkpoint(self.sim.now().as_nanos()));
        self.last_checkpoint = Some(cp);
    }

    /// Kill the datastore instance (fail-stop): all requests fail until
    /// recovery.
    pub fn fail_store(&mut self) {
        self.store.set_failed(true);
    }

    /// Recover the datastore: shared state is rebuilt from the latest
    /// checkpoint plus the instances' write-ahead/read logs (Figure 7), and
    /// per-flow state is re-installed from the instances' caches. Returns the
    /// recovery report (the replayed-operation count drives Figure 14).
    pub fn recover_store(&mut self) -> RecoveryReport {
        let mut wals = HashMap::new();
        let mut read_logs = HashMap::new();
        let mut per_flow = Vec::new();
        for (_, _, actor) in self.topology.borrow().all_instances() {
            if let Some(a) = self.sim.actor::<NfInstanceActor>(actor) {
                wals.insert(a.client.instance(), a.client.wal().clone());
                read_logs.insert(a.client.instance(), a.client.read_log().to_vec());
                per_flow.extend(a.client.cached_per_flow());
            }
        }
        let checkpoint = self.last_checkpoint.clone().unwrap_or_default();
        let input = RecoveryInput {
            checkpoint,
            wals,
            read_logs,
        };
        let (mut recovered, mut report) = recover_shared_state(&input);
        for (key, value) in per_flow {
            recovered.install(&key, value, key.instance);
            report.per_flow_restored += 1;
        }
        self.store.replace(recovered);
        report
    }
}
