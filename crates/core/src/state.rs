//! The client-side datastore library (§4.3, Table 1).
//!
//! Every NF instance owns a [`StateClient`]. The client resolves object names
//! into fully qualified datastore keys (vertex / instance metadata), picks a
//! [`CacheStrategy`] per object from its declared scope and access pattern,
//! and performs the accesses:
//!
//! * **cached** accesses are applied to the local copy and flushed to the
//!   store with non-blocking semantics (per-flow objects, read-heavy
//!   cross-flow objects via callbacks, exclusive write-often objects),
//! * **offloaded** updates are sent to the store which serializes and applies
//!   them; the NF either waits for the ACK (one RTT) or not, depending on the
//!   externalization mode (§7.1 models #1–#3),
//! * **blocking** reads always cost a round trip.
//!
//! The client also maintains the metadata CHC needs for correctness: the
//! write-ahead log of shared-state updates and the read log of `(value, TS)`
//! pairs used for datastore recovery (§5.4), the XOR tokens of updates issued
//! for the in-flight packet (Figure 6), and the accumulated virtual-time
//! charge that the instance runtime adds to the packet's processing latency.

use crate::cache::CacheStrategy;
use crate::config::{CostModel, ExternalizationMode};
use crate::dag::StateObjectSpec;
use crate::message::xor_token;
use chc_packet::ScopeKey;
use chc_sim::SimDuration;
use chc_store::store::ApplyResult;
use chc_store::{
    Clock, InstanceId, ObjectKey, Operation, ReadLogEntry, StateKey, StateScope, StoreError,
    StoreInstance, StoreServer, TsSnapshot, Value, VertexId, WriteAheadLog,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Abstraction over how a client reaches its datastore instance, so the same
/// client library runs on the single-threaded simulated store and on the
/// sharded multi-threaded [`StoreServer`].
pub trait StateHandle {
    /// Apply an operation (see [`StoreInstance::apply`]).
    fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError>;
    /// Apply a slice of operations, returning per-op results in submission
    /// order. The default is a sequential loop; backends that can amortize
    /// locking across the batch (the sharded [`StoreServer`]) override it.
    fn apply_batch(
        &self,
        requester: InstanceId,
        ops: &[(StateKey, Operation, Option<Clock>)],
    ) -> Vec<Result<ApplyResult, StoreError>> {
        ops.iter()
            .map(|(key, op, clock)| self.apply(requester, key, op, *clock))
            .collect()
    }
    /// Register a change callback.
    fn register_callback(&self, key: &StateKey, instance: InstanceId);
    /// Release per-flow ownership.
    fn release_ownership(&self, key: &StateKey, instance: InstanceId) -> Result<(), StoreError>;
    /// Acquire per-flow ownership.
    fn acquire_ownership(&self, key: &StateKey, instance: InstanceId) -> Result<(), StoreError>;
    /// Current owner of a per-flow object.
    fn owner_of(&self, key: &StateKey) -> Option<InstanceId>;
    /// Store-computed non-deterministic value (Appendix A).
    fn nondet(&self, clock: Clock, slot: u32, candidate: Value) -> Value;
    /// Current `TS` metadata (last clock per instance).
    fn ts_snapshot(&self) -> TsSnapshot;
    /// True if the store instance is currently failed.
    fn is_failed(&self) -> bool;
}

/// A store instance shared by the components of a simulated chain
/// (single-threaded; the simulator provides determinism).
#[derive(Clone, Default)]
pub struct SharedStore(Rc<RefCell<StoreInstance>>);

impl SharedStore {
    /// Create an empty shared store.
    pub fn new() -> SharedStore {
        SharedStore::default()
    }

    /// Borrow the underlying instance mutably (panics if already borrowed).
    pub fn with<R>(&self, f: impl FnOnce(&mut StoreInstance) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Mark the store failed / recovered (fail-stop model).
    pub fn set_failed(&self, failed: bool) {
        self.0.borrow_mut().set_failed(failed);
    }

    /// Replace the contents with a recovered instance.
    pub fn replace(&self, instance: StoreInstance) {
        *self.0.borrow_mut() = instance;
    }
}

impl StateHandle for SharedStore {
    fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        self.0.borrow_mut().apply(requester, key, op, clock)
    }
    fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        self.0.borrow_mut().register_callback(key, instance);
    }
    fn release_ownership(&self, key: &StateKey, instance: InstanceId) -> Result<(), StoreError> {
        self.0.borrow_mut().release_ownership(key, instance)
    }
    fn acquire_ownership(&self, key: &StateKey, instance: InstanceId) -> Result<(), StoreError> {
        self.0.borrow_mut().acquire_ownership(key, instance)
    }
    fn owner_of(&self, key: &StateKey) -> Option<InstanceId> {
        self.0.borrow().owner_of(key)
    }
    fn nondet(&self, clock: Clock, slot: u32, candidate: Value) -> Value {
        self.0.borrow_mut().nondet_value(clock, slot, candidate)
    }
    fn ts_snapshot(&self) -> TsSnapshot {
        TsSnapshot::new(self.0.borrow().ts().clone())
    }
    fn is_failed(&self) -> bool {
        self.0.borrow().is_failed()
    }
}

impl StateHandle for Arc<StoreServer> {
    fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        StoreServer::apply(self, requester, key, op, clock)
    }
    fn apply_batch(
        &self,
        requester: InstanceId,
        ops: &[(StateKey, Operation, Option<Clock>)],
    ) -> Vec<Result<ApplyResult, StoreError>> {
        StoreServer::apply_batch(self, requester, ops)
    }
    fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        StoreServer::register_callback(self, key, instance);
    }
    fn release_ownership(&self, _key: &StateKey, _instance: InstanceId) -> Result<(), StoreError> {
        Ok(())
    }
    fn acquire_ownership(&self, _key: &StateKey, _instance: InstanceId) -> Result<(), StoreError> {
        Ok(())
    }
    fn owner_of(&self, _key: &StateKey) -> Option<InstanceId> {
        None
    }
    fn nondet(&self, _clock: Clock, _slot: u32, candidate: Value) -> Value {
        candidate
    }
    fn ts_snapshot(&self) -> TsSnapshot {
        TsSnapshot::default()
    }
    fn is_failed(&self) -> bool {
        false
    }
}

/// Statistics the client keeps for reports and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateClientStats {
    /// Operations answered from a local cache.
    pub cache_hits: u64,
    /// Blocking store round trips (reads, exclusive-lost updates, ACK waits).
    pub blocking_ops: u64,
    /// Operations issued with non-blocking semantics.
    pub non_blocking_ops: u64,
    /// Operations applied purely locally (traditional mode).
    pub local_ops: u64,
}

/// The per-instance client-side datastore library.
pub struct StateClient {
    vertex: VertexId,
    instance: InstanceId,
    store: Box<dyn StateHandle>,
    mode: ExternalizationMode,
    costs: CostModel,
    /// Declared objects: name → (spec, strategy).
    specs: HashMap<String, (StateObjectSpec, CacheStrategy)>,
    /// Object names this instance currently has exclusive access to
    /// (relevant for [`CacheStrategy::CacheIfExclusive`]).
    exclusive: HashSet<String>,
    /// Local cache (also the entire state in traditional mode).
    cache: HashMap<StateKey, Value>,
    /// Callback registrations already made (avoid duplicates).
    callbacks_registered: HashSet<StateKey>,
    /// Write-ahead log of shared-state updates (store recovery, §5.4).
    wal: WriteAheadLog,
    /// Read log of shared-state reads with their `TS` snapshots.
    read_log: Vec<ReadLogEntry>,
    /// Whether the WAL / read log are recorded. On by default; the
    /// real-thread runtime disables it for long throughput runs that never
    /// exercise store recovery, since both logs grow with the packet count.
    recovery_logging: bool,
    /// Whether store operations carry the packet's logical clock. Clock tags
    /// drive duplicate suppression and `TS` metadata (§5.3/§5.4); benchmarks
    /// that measure the bare store fast path may switch them off.
    clock_tagging: bool,
    /// Write-behind buffer: non-blocking flushes coalesced for one batched
    /// `apply_batch` round trip instead of a store call per op. Off by
    /// default (ops flush inline); the real-thread runtime enables it and
    /// drains at ring-batch boundaries. The WAL append and XOR token of a
    /// buffered op are recorded at buffer time — both are independent of the
    /// apply result — and the buffered clock tags keep store-side duplicate
    /// suppression (and hence replay idempotency) intact.
    write_behind: Option<Vec<(StateKey, Operation, Option<Clock>)>>,
    /// Buffered ops that force an in-place drain when reached (bounds both
    /// buffer memory and the store-visible staleness window).
    write_behind_cap: usize,
    /// Latency charged to the packet currently being processed.
    charge: SimDuration,
    /// XOR tokens of store updates issued for the current packet (Figure 6).
    packet_tokens: Vec<(StateKey, u32)>,
    /// Callback notifications the store produced for *other* instances while
    /// this client updated shared objects; the instance runtime turns them
    /// into `CallbackUpdate` messages.
    pending_callbacks: Vec<(InstanceId, StateKey, Value)>,
    /// Statistics.
    stats: StateClientStats,
}

impl StateClient {
    /// Create a client for one NF instance.
    pub fn new(
        vertex: VertexId,
        instance: InstanceId,
        store: Box<dyn StateHandle>,
        mode: ExternalizationMode,
        costs: CostModel,
        objects: &[StateObjectSpec],
    ) -> StateClient {
        let specs = objects
            .iter()
            .map(|o| {
                let strategy = CacheStrategy::select(o.scope, o.access);
                (o.name.clone(), (o.clone(), strategy))
            })
            .collect();
        StateClient {
            vertex,
            instance,
            store,
            mode,
            costs,
            specs,
            exclusive: objects.iter().map(|o| o.name.clone()).collect(),
            cache: HashMap::new(),
            callbacks_registered: HashSet::new(),
            wal: WriteAheadLog::new(),
            read_log: Vec::new(),
            recovery_logging: true,
            clock_tagging: true,
            write_behind: None,
            write_behind_cap: 0,
            charge: SimDuration::ZERO,
            packet_tokens: Vec::new(),
            pending_callbacks: Vec::new(),
            stats: StateClientStats::default(),
        }
    }

    /// The owning instance id.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// The vertex id.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Externalization mode in force.
    pub fn mode(&self) -> ExternalizationMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> StateClientStats {
        self.stats
    }

    /// The client's write-ahead log (collected by store recovery).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Enable or disable the client-side recovery logs (WAL + read log).
    /// They are required for datastore recovery (§5.4) and enabled by
    /// default; substrates that never recover a store (e.g. pure throughput
    /// benchmarks on the real-thread runtime) switch them off so memory does
    /// not grow with the packet count.
    pub fn set_recovery_logging(&mut self, enabled: bool) {
        self.recovery_logging = enabled;
    }

    /// Enable or disable clock tags on store operations. Tags are required
    /// for duplicate suppression during replay/cloning and for `TS`-based
    /// store recovery, and are on by default; pure throughput benchmarks may
    /// disable them to measure the untagged fast path.
    pub fn set_clock_tagging(&mut self, enabled: bool) {
        self.clock_tagging = enabled;
    }

    /// Enable or disable write-behind coalescing of non-blocking flushes.
    /// `cap` bounds the buffer; reaching it drains in place. Disabling
    /// drains anything still buffered first. While enabled, the caller owns
    /// the drain cadence via [`StateClient::drain_write_behind`]; the client
    /// itself drains before every store access that could observe buffered
    /// effects (blocking reads, offloaded updates, exclusivity loss,
    /// per-flow flushes, nondet queries).
    pub fn set_write_behind(&mut self, enabled: bool, cap: usize) {
        if enabled {
            self.write_behind_cap = cap.max(1);
            if self.write_behind.is_none() {
                self.write_behind = Some(Vec::with_capacity(self.write_behind_cap));
            }
        } else {
            self.drain_write_behind();
            self.write_behind = None;
        }
    }

    /// Ops currently sitting in the write-behind buffer.
    pub fn write_behind_depth(&self) -> usize {
        self.write_behind.as_ref().map_or(0, Vec::len)
    }

    /// Flush the write-behind buffer as one batched store round trip.
    /// Returns the number of ops drained. Callback notifications produced
    /// by the batch land in the pending-callback list exactly as inline
    /// flushes would.
    pub fn drain_write_behind(&mut self) -> usize {
        let Some(buf) = self.write_behind.as_mut() else {
            return 0;
        };
        if buf.is_empty() {
            return 0;
        }
        let ops = std::mem::take(buf);
        let results = self.store.apply_batch(self.instance, &ops);
        for ((key, _, _), result) in ops.iter().zip(results) {
            let Ok(result) = result else { continue };
            for other in &result.notify {
                self.pending_callbacks
                    .push((*other, key.clone(), result.new_value.clone()));
            }
        }
        let drained = ops.len();
        // Hand the allocation back to the buffer.
        let mut ops = ops;
        ops.clear();
        if let Some(buf) = self.write_behind.as_mut() {
            *buf = ops;
        }
        drained
    }

    /// The clock tag to attach to a store operation, if tagging is on.
    fn tag(&self, clock: Clock) -> Option<Clock> {
        if self.clock_tagging {
            Some(clock)
        } else {
            None
        }
    }

    /// The client's read log (collected by store recovery).
    pub fn read_log(&self) -> &[ReadLogEntry] {
        &self.read_log
    }

    /// The fully qualified key used for an object.
    pub fn state_key(&self, object: &str, scope_key: Option<ScopeKey>) -> StateKey {
        let obj = match scope_key {
            Some(sk) => ObjectKey::scoped(object, sk),
            None => ObjectKey::named(object),
        };
        let per_flow = self
            .specs
            .get(object)
            .map(|(spec, _)| spec.scope == StateScope::PerFlow)
            .unwrap_or(false);
        if per_flow {
            StateKey::per_flow(self.vertex, self.instance, obj)
        } else {
            StateKey::shared(self.vertex, obj)
        }
    }

    fn strategy_of(&self, object: &str) -> CacheStrategy {
        self.specs
            .get(object)
            .map(|(_, s)| *s)
            // Objects that were never declared default to the conservative
            // blocking path.
            .unwrap_or(CacheStrategy::CacheIfExclusive)
    }

    fn is_shared_object(&self, object: &str) -> bool {
        self.specs
            .get(object)
            .map(|(spec, _)| spec.scope.is_shared())
            .unwrap_or(true)
    }

    fn charge_rtt(&mut self) {
        self.charge += self.costs.store_rtt();
        self.stats.blocking_ops += 1;
    }

    fn charge_cache_hit(&mut self) {
        self.charge += self.costs.cache_hit;
        self.stats.cache_hits += 1;
    }

    fn charge_async(&mut self) {
        self.charge += self.costs.async_issue;
        self.stats.non_blocking_ops += 1;
    }

    /// Does the strategy allow serving this object from cache right now?
    fn may_cache(&self, object: &str) -> bool {
        if !self.mode.caching() {
            return false;
        }
        match self.strategy_of(object) {
            CacheStrategy::NonBlockingNoCache => false,
            CacheStrategy::CacheWithPeriodicFlush | CacheStrategy::CacheWithCallbacks => true,
            CacheStrategy::CacheIfExclusive => self.exclusive.contains(object),
        }
    }

    /// Latency accumulated for the current packet; resets the accumulator.
    /// The instance runtime adds this to the packet's processing time.
    pub fn take_charge(&mut self) -> SimDuration {
        std::mem::take(&mut self.charge)
    }

    /// XOR tokens of updates issued to the store for the current packet;
    /// resets the list. The runtime folds them into the packet's commit
    /// vector and emits the corresponding commit signals.
    pub fn take_packet_tokens(&mut self) -> Vec<(StateKey, u32)> {
        std::mem::take(&mut self.packet_tokens)
    }

    /// Callback notifications produced by the store while this client issued
    /// updates (instances other than this one that registered for the changed
    /// objects); the runtime delivers them as messages. Resets the list.
    pub fn take_pending_callbacks(&mut self) -> Vec<(InstanceId, StateKey, Value)> {
        std::mem::take(&mut self.pending_callbacks)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Read an object's value.
    pub fn read(&mut self, object: &str, scope_key: Option<ScopeKey>, clock: Clock) -> Value {
        let key = self.state_key(object, scope_key);
        if !self.mode.externalized() {
            self.stats.local_ops += 1;
            return self.cache.get(&key).cloned().unwrap_or_default();
        }
        if self.may_cache(object) {
            if let Some(v) = self.cache.get(&key).cloned() {
                self.charge_cache_hit();
                return v;
            }
        }
        // Blocking read from the store. Buffered write-behind ops on this
        // key (or any other) must be visible to it: drain first.
        self.drain_write_behind();
        self.charge_rtt();
        let result = match self
            .store
            .apply(self.instance, &key, &Operation::Get, self.tag(clock))
        {
            Ok(r) => r,
            Err(_) => return Value::None,
        };
        let value = result.outcome.returned.clone();
        // Record the read (value + TS) for datastore recovery, shared objects only.
        if self.recovery_logging && self.is_shared_object(object) {
            self.read_log.push(ReadLogEntry {
                clock,
                key: key.clone(),
                value: value.clone(),
                ts: self.store.ts_snapshot(),
            });
        }
        // Populate the cache and, for read-heavy objects, register the
        // store callback that will keep it fresh.
        if self.may_cache(object) {
            self.cache.insert(key.clone(), value.clone());
            if self.strategy_of(object).uses_callbacks()
                && self.callbacks_registered.insert(key.clone())
            {
                self.store.register_callback(&key, self.instance);
            }
        }
        value
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Apply an update (or any non-`Get` operation) to an object.
    pub fn update(
        &mut self,
        object: &str,
        scope_key: Option<ScopeKey>,
        op: Operation,
        clock: Clock,
    ) -> Value {
        let key = self.state_key(object, scope_key);

        // Traditional NF: purely local state.
        if !self.mode.externalized() {
            self.stats.local_ops += 1;
            let current = self.cache.get(&key).cloned().unwrap_or_default();
            let (new_value, returned) = chc_store::ops::apply_operation(&key, &current, &op, None)
                .unwrap_or((current, Value::None));
            self.cache.insert(key, new_value);
            return returned;
        }

        let strategy = self.strategy_of(object);
        let cached = self.may_cache(object);
        let blocking_required = !op.is_non_blocking_eligible();

        if cached && !blocking_required && strategy != CacheStrategy::CacheWithCallbacks {
            // Apply to the local copy; flush to the store with non-blocking
            // semantics (the flush keeps the store authoritative for fault
            // tolerance but is off the packet's critical path).
            let current = self.cache.get(&key).cloned().unwrap_or_default();
            let (new_value, returned) =
                match chc_store::ops::apply_operation(&key, &current, &op, None) {
                    Ok(v) => v,
                    Err(_) => (current.clone(), Value::None),
                };
            self.cache.insert(key.clone(), new_value);
            self.charge_cache_hit();
            self.flush_op(&key, &op, clock);
            return returned;
        }

        // Offloaded to the store. Blocking cost depends on the operation and
        // the externalization mode:
        //  * ops needing their result (pops) and updates to shared objects
        //    whose exclusivity was lost are charged a full round trip,
        //  * other updates are non-blocking: one RTT when the NF waits for
        //    the ACK (modes #1/#2), one async-issue cost when it does not
        //    (mode #3); the framework then owns retransmission.
        let lost_exclusive =
            strategy == CacheStrategy::CacheIfExclusive && !self.exclusive.contains(object);
        if blocking_required || lost_exclusive || strategy == CacheStrategy::CacheWithCallbacks {
            self.charge_rtt();
        } else if self.mode.skip_acks() {
            self.charge_async();
            // Fire-and-forget: the NF does not wait for the ACK in this
            // mode, so with write-behind on the op coalesces into the batch
            // buffer and there is no store result to return. Only uncached
            // objects take this shortcut (a cached copy would need the
            // authoritative value below; in practice only
            // `NonBlockingNoCache` objects reach this arm).
            if self.write_behind.is_some() && !self.cache.contains_key(&key) {
                if self.recovery_logging && self.is_shared_object(object) {
                    self.wal.append(clock, key.clone(), op.clone());
                }
                self.packet_tokens
                    .push((key.clone(), xor_token(self.instance, &key)));
                let tag = self.tag(clock);
                let buf = self.write_behind.as_mut().expect("checked above");
                buf.push((key, op, tag));
                if buf.len() >= self.write_behind_cap {
                    self.drain_write_behind();
                }
                return Value::None;
            }
        } else {
            self.charge_rtt();
        }

        // Offloaded ops observe the store directly (pops read it, blocking
        // updates return its value): buffered write-behind ops go first.
        self.drain_write_behind();
        let result = match self.store.apply(self.instance, &key, &op, self.tag(clock)) {
            Ok(r) => r,
            Err(_) => return Value::None,
        };
        if self.recovery_logging && self.is_shared_object(object) {
            self.wal.append(clock, key.clone(), op.clone());
        }
        let ApplyResult {
            outcome,
            notify,
            new_value,
        } = result;
        // `key` and `new_value` are cloned only for callbacks (rare); the
        // cache update consumes `new_value`, the token consumes `key`.
        for other in &notify {
            self.pending_callbacks
                .push((*other, key.clone(), new_value.clone()));
        }
        let token = xor_token(self.instance, &key);
        // Keep any cached copy coherent with the store's authoritative value
        // (e.g. read-heavy objects updated by this very instance).
        if let Some(cached) = self.cache.get_mut(&key) {
            *cached = new_value;
        }
        self.packet_tokens.push((key, token));
        outcome.returned
    }

    /// Flush one cached update to the store (non-blocking semantics).
    ///
    /// With write-behind enabled the op is buffered for a batched drain
    /// instead of applied inline; the WAL append and XOR token still happen
    /// immediately (neither depends on the apply result), so recovery logs
    /// and the Figure 6 commit tokens are identical either way.
    fn flush_op(&mut self, key: &StateKey, op: &Operation, clock: Clock) {
        self.stats.non_blocking_ops += 1;
        if self.recovery_logging && key.instance.is_none() {
            self.wal.append(clock, key.clone(), op.clone());
        }
        self.packet_tokens
            .push((key.clone(), xor_token(self.instance, key)));
        let tag = self.tag(clock);
        if let Some(buf) = self.write_behind.as_mut() {
            buf.push((key.clone(), op.clone(), tag));
            if buf.len() >= self.write_behind_cap {
                self.drain_write_behind();
            }
            return;
        }
        if let Ok(result) = self.store.apply(self.instance, key, op, tag) {
            for other in &result.notify {
                self.pending_callbacks
                    .push((*other, key.clone(), result.new_value.clone()));
            }
        }
    }

    /// Store-computed non-deterministic value (Appendix A).
    pub fn nondet(&mut self, clock: Clock, slot: u32, candidate: Value) -> Value {
        if !self.mode.externalized() {
            return candidate;
        }
        self.drain_write_behind();
        self.charge_rtt();
        self.store.nondet(clock, slot, candidate)
    }

    // ------------------------------------------------------------------
    // Callbacks, exclusivity and handover support
    // ------------------------------------------------------------------

    /// Handle a store callback: refresh the cached copy of a read-heavy
    /// object (the NF author never sees this; §4.3 "Cross-flow state").
    pub fn handle_callback(&mut self, key: &StateKey, value: Value) {
        self.cache.insert(key.canonical(), value);
    }

    /// Grant or revoke exclusive access to a write/read-often cross-flow
    /// object (driven by the upstream splitter's partitioning). Losing
    /// exclusivity flushes the cached copy to the store.
    pub fn set_exclusive(&mut self, object: &str, exclusive: bool, clock: Clock) {
        if exclusive {
            self.exclusive.insert(object.to_string());
        } else {
            self.exclusive.remove(object);
            // Buffered increments on this object must reach the store before
            // the authoritative `Set` below, or they would re-apply on top
            // of it at the next drain.
            self.drain_write_behind();
            // Flush cached values of this object so other instances observe
            // them, then drop the cache (subsequent updates go to the store).
            let keys: Vec<StateKey> = self
                .cache
                .keys()
                .filter(|k| k.object.name == object)
                .cloned()
                .collect();
            for key in keys {
                if let Some(value) = self.cache.remove(&key) {
                    let _ =
                        self.store
                            .apply(self.instance, &key, &Operation::Set(value), Some(clock));
                }
            }
        }
    }

    /// True if the instance currently has exclusive access to the object.
    pub fn is_exclusive(&self, object: &str) -> bool {
        self.exclusive.contains(object)
    }

    /// Flush every cached per-flow object (and optionally release ownership),
    /// as required when the flow is reallocated to another instance
    /// (Figure 4 step 5) or when recovering a failed store instance.
    ///
    /// Returns the number of objects flushed.
    pub fn flush_per_flow(&mut self, release_ownership: bool, clock: Clock) -> usize {
        // Same ordering constraint as exclusivity loss: buffered ops
        // precede the authoritative `Set` flushes.
        self.drain_write_behind();
        let keys: Vec<StateKey> = self
            .cache
            .keys()
            .filter(|k| k.is_per_flow())
            .cloned()
            .collect();
        let mut flushed = 0;
        for key in keys {
            if let Some(value) = self.cache.remove(&key) {
                let _ = self
                    .store
                    .apply(self.instance, &key, &Operation::Set(value), Some(clock));
                flushed += 1;
            }
            if release_ownership {
                let _ = self.store.release_ownership(&key, self.instance);
            }
        }
        flushed
    }

    /// Snapshot of the cached per-flow objects (used to recover a failed
    /// store instance: the caches hold the freshest per-flow values).
    pub fn cached_per_flow(&self) -> Vec<(StateKey, Value)> {
        self.cache
            .iter()
            .filter(|(k, _)| k.is_per_flow())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Try to take ownership of a per-flow object (Figure 4 step 7 — the new
    /// instance associates its id once the old instance released the state).
    pub fn try_acquire(
        &mut self,
        object: &str,
        scope_key: Option<ScopeKey>,
    ) -> Result<(), StoreError> {
        let key = self.state_key(object, scope_key);
        self.store.acquire_ownership(&key, self.instance)
    }

    /// Is any of this NF's per-flow objects for the given connection still
    /// associated with a *different* instance? This is Figure 4 step 3: when
    /// the first packet of a reallocated flow arrives, the new instance
    /// checks the store; if the old owner has not released the state yet it
    /// must buffer the flow's packets until the handover notification.
    pub fn per_flow_owned_elsewhere(&self, conn_key: ScopeKey) -> bool {
        self.specs
            .values()
            .filter(|(spec, _)| spec.scope == StateScope::PerFlow)
            .any(|(spec, _)| {
                let key = StateKey::per_flow(
                    self.vertex,
                    self.instance,
                    ObjectKey::scoped(&spec.name, conn_key),
                );
                match self.store.owner_of(&key) {
                    Some(owner) => owner != self.instance,
                    None => false,
                }
            })
    }

    /// Drop all cached state (used to model an NF crash: everything the
    /// instance held internally disappears; only the store copy survives).
    /// Un-drained write-behind ops are part of that loss — a crash forfeits
    /// them exactly as it forfeits the cache they were applied to.
    pub fn drop_all_local_state(&mut self) {
        self.cache.clear();
        if let Some(buf) = self.write_behind.as_mut() {
            buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::Scope;
    use chc_store::AccessPattern;

    fn specs() -> Vec<StateObjectSpec> {
        vec![
            StateObjectSpec::cross_flow(
                "pkt_count",
                Scope::Global,
                AccessPattern::WriteMostlyReadRarely,
            ),
            StateObjectSpec::per_flow("port_map", AccessPattern::ReadMostly),
            StateObjectSpec::cross_flow("likelihood", Scope::SrcIp, AccessPattern::ReadWriteOften),
            StateObjectSpec::cross_flow("config", Scope::Global, AccessPattern::ReadMostly),
        ]
    }

    fn client(mode: ExternalizationMode, store: &SharedStore) -> StateClient {
        StateClient::new(
            VertexId(1),
            InstanceId(0),
            Box::new(store.clone()),
            mode,
            CostModel::default(),
            &specs(),
        )
    }

    fn clock(n: u64) -> Clock {
        Clock::with_root(0, n)
    }

    #[test]
    fn traditional_mode_keeps_state_local() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::Traditional, &store);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        assert_eq!(c.read("pkt_count", None, clock(2)), Value::Int(1));
        // Nothing reached the store.
        assert!(store.with(|s| s.is_empty()));
        assert_eq!(c.take_charge(), SimDuration::ZERO);
        assert_eq!(c.stats().local_ops, 2);
    }

    #[test]
    fn externalized_blocking_ops_cost_round_trips() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::Externalized, &store);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        let charge = c.take_charge();
        assert_eq!(charge, CostModel::default().store_rtt());
        // The update reached the store.
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(1)
        );
        // Reads also pay an RTT in this mode.
        c.read("pkt_count", None, clock(2));
        assert_eq!(c.take_charge(), CostModel::default().store_rtt());
    }

    #[test]
    fn full_chc_mode_hides_counter_update_latency() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        let charge = c.take_charge();
        assert!(
            charge < SimDuration::from_micros(1),
            "non-blocking issue, got {charge}"
        );
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(1)
        );
        assert_eq!(c.stats().non_blocking_ops, 1);
    }

    #[test]
    fn per_flow_objects_are_cached_and_flushed() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        let sk = Some(ScopeKey::Port(4242));
        c.update("port_map", sk, Operation::Set(Value::Int(8080)), clock(1));
        // Cached: the read is a cache hit, far below one RTT.
        let v = c.read("port_map", sk, clock(2));
        assert_eq!(v, Value::Int(8080));
        let charge = c.take_charge();
        assert!(charge < SimDuration::from_micros(2), "got {charge}");
        // The flush keeps the store authoritative.
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("port_map", sk))),
            Value::Int(8080)
        );
        // And it is visible for store recovery via the cached snapshot.
        assert_eq!(c.cached_per_flow().len(), 1);
    }

    #[test]
    fn read_heavy_objects_use_callbacks() {
        let store = SharedStore::new();
        let mut a = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        let mut b = StateClient::new(
            VertexId(1),
            InstanceId(1),
            Box::new(store.clone()),
            ExternalizationMode::ExternalizedCachedNonBlocking,
            CostModel::default(),
            &specs(),
        );
        // b reads the read-heavy object → caches it and registers a callback.
        assert_eq!(b.read("config", None, clock(1)), Value::None);
        assert!(store.with(|s| !s
            .callback_registrations(&b.state_key("config", None))
            .is_empty()));
        // a updates it: the update goes straight to the store (blocking).
        a.update("config", None, Operation::Set(Value::Int(7)), clock(2));
        assert!(a.take_charge() >= CostModel::default().store_rtt());
        // The framework delivers the callback; b's cache refreshes.
        let key = b.state_key("config", None);
        b.handle_callback(&key, Value::Int(7));
        assert_eq!(b.read("config", None, clock(3)), Value::Int(7));
        assert_eq!(b.stats().cache_hits, 1);
    }

    #[test]
    fn exclusivity_loss_forces_blocking_updates_and_flush() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        // While exclusive, the write/read-often object is cached.
        c.update("likelihood", None, Operation::Increment(5), clock(1));
        assert!(c.take_charge() < SimDuration::from_micros(1));
        assert!(c.is_exclusive("likelihood"));
        // Another instance starts sharing → exclusivity revoked, cache flushed.
        c.set_exclusive("likelihood", false, clock(2));
        assert!(!c.is_exclusive("likelihood"));
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("likelihood", None))),
            Value::Int(5)
        );
        // Updates now block on the store.
        c.update("likelihood", None, Operation::Increment(1), clock(3));
        assert_eq!(c.take_charge(), CostModel::default().store_rtt());
        // Regaining exclusivity restores caching.
        c.set_exclusive("likelihood", true, clock(4));
        c.read("likelihood", None, clock(5));
        c.take_charge();
        c.update("likelihood", None, Operation::Increment(1), clock(6));
        assert!(c.take_charge() < SimDuration::from_micros(1));
    }

    #[test]
    fn wal_and_read_log_cover_shared_objects_only() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::Externalized, &store);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        c.read("pkt_count", None, clock(2));
        let sk = Some(ScopeKey::Port(99));
        c.update("port_map", sk, Operation::Set(Value::Int(1)), clock(3));
        c.read("port_map", sk, clock(4));
        assert_eq!(
            c.wal().len(),
            1,
            "only the shared counter update is WAL-logged"
        );
        assert_eq!(c.read_log().len(), 1, "only the shared read is TS-logged");
        assert_eq!(c.read_log()[0].clock, clock(2));
    }

    #[test]
    fn packet_tokens_track_store_updates() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        let tokens = c.take_packet_tokens();
        assert_eq!(tokens.len(), 1);
        assert_ne!(tokens[0].1, 0);
        assert!(c.take_packet_tokens().is_empty(), "taking resets the list");
    }

    #[test]
    fn flush_per_flow_releases_ownership() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        let sk = Some(ScopeKey::Port(1000));
        c.update("port_map", sk, Operation::Set(Value::Int(1)), clock(1));
        let key = c.state_key("port_map", sk);
        assert_eq!(store.with(|s| s.owner_of(&key)), Some(InstanceId(0)));
        let flushed = c.flush_per_flow(true, clock(2));
        assert_eq!(flushed, 1);
        assert_eq!(store.with(|s| s.owner_of(&key)), None);
        // The new instance can now acquire it.
        let mut newer = StateClient::new(
            VertexId(1),
            InstanceId(5),
            Box::new(store.clone()),
            ExternalizationMode::ExternalizedCachedNonBlocking,
            CostModel::default(),
            &specs(),
        );
        assert!(newer.try_acquire("port_map", sk).is_ok());
    }

    #[test]
    fn nondet_values_are_stable_across_replay() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        let v1 = c.nondet(clock(9), 0, Value::Int(111));
        let v2 = c.nondet(clock(9), 0, Value::Int(222));
        assert_eq!(v1, v2);
    }

    #[test]
    fn write_behind_buffers_flushes_until_drained() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        c.set_write_behind(true, 64);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        c.update("pkt_count", None, Operation::Increment(1), clock(2));
        // The store lags until the drain.
        assert_eq!(c.write_behind_depth(), 2);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::None
        );
        // WAL and XOR tokens were recorded at buffer time, not drain time.
        assert_eq!(c.wal().len(), 2);
        assert_eq!(c.take_packet_tokens().len(), 2);
        assert_eq!(c.drain_write_behind(), 2);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(2)
        );
        assert_eq!(c.write_behind_depth(), 0);
        // A blocking read sees the drained value (and would drain first
        // itself if anything were still buffered).
        assert_eq!(c.read("pkt_count", None, clock(3)), Value::Int(2));
    }

    #[test]
    fn write_behind_drains_at_cap_and_before_blocking_access() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        c.set_write_behind(true, 2);
        c.update("pkt_count", None, Operation::Increment(1), clock(1));
        assert_eq!(c.write_behind_depth(), 1);
        // Reaching the cap drains in place.
        c.update("pkt_count", None, Operation::Increment(1), clock(2));
        assert_eq!(c.write_behind_depth(), 0);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(2)
        );
        // A blocking read on an uncached object drains the buffer first.
        c.update("pkt_count", None, Operation::Increment(1), clock(3));
        assert_eq!(c.write_behind_depth(), 1);
        c.read("config", None, clock(4));
        assert_eq!(c.write_behind_depth(), 0);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(3)
        );
        // Disabling drains whatever is left.
        c.update("pkt_count", None, Operation::Increment(1), clock(5));
        c.set_write_behind(false, 0);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("pkt_count", None))),
            Value::Int(4)
        );
    }

    #[test]
    fn write_behind_drains_before_exclusivity_loss() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        c.set_write_behind(true, 64);
        c.update("likelihood", None, Operation::Increment(5), clock(1));
        assert_eq!(c.write_behind_depth(), 1);
        // Losing exclusivity flushes the cached value via `Set`; the
        // buffered increment must land first or the next drain would
        // double-apply on top of the Set.
        c.set_exclusive("likelihood", false, clock(2));
        assert_eq!(c.write_behind_depth(), 0);
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("likelihood", None))),
            Value::Int(5)
        );
    }

    #[test]
    fn crash_drops_local_state_but_store_survives() {
        let store = SharedStore::new();
        let mut c = client(ExternalizationMode::ExternalizedCachedNonBlocking, &store);
        let sk = Some(ScopeKey::Port(7));
        c.update("port_map", sk, Operation::Set(Value::Int(42)), clock(1));
        c.drop_all_local_state();
        // R1: the value is still available externally.
        assert_eq!(
            store.with(|s| s.peek(&c.state_key("port_map", sk))),
            Value::Int(42)
        );
        assert!(c.cached_per_flow().is_empty());
    }
}
