//! Chain output equivalence (COE) checking.
//!
//! COE (§1) requires that the collective action of all NF instances in a
//! physical chain matches that of a hypothetical chain of single,
//! infinite-capacity NFs processing packets in arrival order. This module
//! runs that *ideal chain* over a trace and provides helpers for comparing
//! the real chain's observable behaviour (delivered packets, alerts, final
//! shared state) against it — the paper's correctness criterion, used by the
//! integration tests and the R4/R5/R6 experiments.

use crate::config::{ChainConfig, ExternalizationMode};
use crate::dag::LogicalDag;
use crate::nf::{Action, NetworkFunction, NfContext};
use crate::state::{SharedStore, StateClient};
use chc_packet::{Packet, PacketId, Trace};
use chc_sim::VirtualTime;
use chc_store::{Clock, InstanceId, StateKey, Value, VertexId};
use std::collections::HashMap;

/// Result of running the ideal single-instance, no-failure chain.
pub struct IdealChainResult {
    /// Packet ids delivered by the chain exits, in processing order.
    pub delivered: Vec<PacketId>,
    /// Alerts raised anywhere in the chain, in `(clock, message)` order.
    pub alerts: Vec<(Clock, String)>,
    /// The ideal chain's final externalized state.
    pub store: SharedStore,
    /// Packet ids dropped by NF decisions.
    pub dropped: Vec<PacketId>,
}

impl IdealChainResult {
    /// Final value of a state object in the ideal execution.
    pub fn state_value(&self, key: &StateKey) -> Value {
        self.store.with(|s| s.peek(key))
    }

    /// Alert messages only (order preserved).
    pub fn alert_messages(&self) -> Vec<String> {
        self.alerts.iter().map(|(_, m)| m.clone()).collect()
    }
}

/// Run the ideal chain: one instance per vertex, infinite capacity, packets
/// processed strictly in arrival order, no failures or reallocation.
pub fn run_ideal_chain(dag: &LogicalDag, trace: &Trace) -> IdealChainResult {
    let order = dag.topo_order().expect("valid DAG");
    let store = SharedStore::new();
    let config = ChainConfig::with_mode(ExternalizationMode::ExternalizedCachedNonBlocking);

    // One NF + client per vertex. Ideal instances get ids above any the
    // physical chain would use so their per-flow keys never collide.
    let mut nfs: HashMap<VertexId, (Box<dyn NetworkFunction>, StateClient)> = HashMap::new();
    for (i, v) in dag.vertices().iter().enumerate() {
        let nf = v.build_nf();
        let objects = nf.state_objects();
        let client = StateClient::new(
            v.id,
            InstanceId(1_000_000 + i as u32),
            Box::new(store.clone()),
            config.mode,
            config.costs,
            &objects,
        );
        nfs.insert(v.id, (nf, client));
    }

    let exits = dag.exits();
    let mut delivered = Vec::new();
    let mut dropped = Vec::new();
    let mut alerts = Vec::new();

    for (i, pkt) in trace.iter().enumerate() {
        let clock = Clock::with_root(0, i as u64 + 1);
        // Inputs per vertex for this packet (entry vertices see the packet).
        let mut inputs: HashMap<VertexId, Vec<Packet>> = HashMap::new();
        for entry in dag.entries() {
            inputs.entry(entry).or_default().push(pkt.clone());
        }
        for vertex in &order {
            let Some(packets) = inputs.remove(vertex) else {
                continue;
            };
            let off_path = dag.vertex(*vertex).map(|v| v.off_path).unwrap_or(false);
            let (nf, client) = nfs.get_mut(vertex).expect("nf exists");
            for input in packets {
                let mut ctx =
                    NfContext::new(client, clock, VirtualTime::from_nanos(pkt.arrival_ns));
                let action = nf.process(&input, &mut ctx);
                for alert in ctx.take_alerts() {
                    alerts.push((clock, alert));
                }
                client.take_charge();
                client.take_packet_tokens();
                client.take_pending_callbacks();
                match action {
                    Action::Drop => {
                        if exits.contains(vertex) {
                            dropped.push(input.id);
                        }
                    }
                    Action::Forward(out) => {
                        if off_path {
                            continue;
                        }
                        if exits.contains(vertex) {
                            delivered.push(out.id);
                        }
                        for d in dag.downstream_of(*vertex) {
                            inputs.entry(d).or_default().push(out.clone());
                        }
                    }
                }
            }
        }
    }

    IdealChainResult {
        delivered,
        alerts,
        store,
        dropped,
    }
}

/// Compare a physical chain's observable output against the ideal chain.
///
/// Returns a list of human-readable violations; an empty list means COE holds
/// for the properties checked:
///
/// * every packet delivered by the physical chain was also delivered by the
///   ideal chain (no spurious forwarding or un-dropped packets),
/// * the physical chain delivered no duplicates (checked by the caller via
///   the sink's duplicate counter, passed in),
/// * the multisets of alert messages match (same detections, e.g. the same
///   Trojans found and the same hosts blocked).
///
/// Packet *loss* relative to the ideal chain is only a violation when
/// `allow_loss` is false: the COE definition permits behaviours equivalent to
/// network drops (e.g. packets that were in flight when a root failed,
/// Theorem B.3.1), so recovery experiments pass `allow_loss = true`.
pub fn coe_violations(
    ideal: &IdealChainResult,
    delivered: &[PacketId],
    duplicates_at_sink: u64,
    alerts: &[(Clock, String)],
    allow_loss: bool,
) -> Vec<String> {
    let mut violations = Vec::new();

    let ideal_set: std::collections::HashSet<PacketId> = ideal.delivered.iter().copied().collect();
    let actual_set: std::collections::HashSet<PacketId> = delivered.iter().copied().collect();

    for id in &actual_set {
        if !ideal_set.contains(id) {
            violations.push(format!(
                "packet {id} delivered but the ideal chain dropped it"
            ));
        }
    }
    if !allow_loss {
        for id in &ideal_set {
            if !actual_set.contains(id) {
                violations.push(format!("packet {id} missing from the chain output"));
            }
        }
    }
    if duplicates_at_sink > 0 {
        violations.push(format!(
            "{duplicates_at_sink} duplicate packets reached the end host"
        ));
    }

    let mut ideal_alerts: HashMap<String, i64> = HashMap::new();
    for (_, m) in &ideal.alerts {
        *ideal_alerts.entry(m.clone()).or_default() += 1;
    }
    let mut actual_alerts: HashMap<String, i64> = HashMap::new();
    for (_, m) in alerts {
        *actual_alerts.entry(m.clone()).or_default() += 1;
    }
    for (msg, n) in &ideal_alerts {
        let got = actual_alerts.get(msg).copied().unwrap_or(0);
        if got < *n {
            violations.push(format!(
                "alert {msg:?}: ideal chain raised {n}, chain raised {got}"
            ));
        }
    }
    for (msg, n) in &actual_alerts {
        let expected = ideal_alerts.get(msg).copied().unwrap_or(0);
        if *n > expected {
            violations.push(format!(
                "alert {msg:?}: chain raised {n}, ideal chain raised only {expected}"
            ));
        }
    }
    violations
}
