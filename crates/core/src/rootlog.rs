//! The root's bounded packet log, keyed by logical clock (§5, "Logical
//! clocks, logging").
//!
//! The root logs every packet it stamps until the chain confirms that the
//! packet — and every state update it induced — has finished. Logged packets
//! are the replay source for NF failover and straggler clones; the bound is
//! the buffer-bloat guard of §5 (a full log rejects new packets instead of
//! queueing without limit).
//!
//! Both substrates share this type: the simulator's [`crate::RootActor`]
//! deletes entries through the XOR commit-vector protocol of Figure 6, while
//! the real-thread engine truncates by the commit *frontier* the chain
//! components publish to the store ([`PacketLog::truncate_confirmed`]) —
//! coarser, but sound: a counter at or below the frontier can never need
//! replay again.

use crate::message::TaggedPacket;
use chc_store::Clock;
use std::collections::BTreeMap;

/// A bounded log of in-flight packets, ordered by logical clock.
#[derive(Debug, Clone, Default)]
pub struct PacketLog {
    entries: BTreeMap<Clock, TaggedPacket>,
    capacity: usize,
    high_water: usize,
    truncated: u64,
    deleted: u64,
    rejected: u64,
}

impl PacketLog {
    /// Create a log holding at most `capacity` packets.
    pub fn new(capacity: usize) -> PacketLog {
        PacketLog {
            capacity: capacity.max(1),
            ..PacketLog::default()
        }
    }

    /// True when the log cannot accept another packet.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Log one packet under its clock. Returns `false` (and counts a
    /// rejection) when the log is full — the caller must then drop the
    /// packet rather than queue it without bound.
    pub fn insert(&mut self, tp: TaggedPacket) -> bool {
        if self.is_full() {
            self.rejected += 1;
            return false;
        }
        self.entries.insert(tp.clock, tp);
        self.high_water = self.high_water.max(self.entries.len());
        true
    }

    /// Remove one confirmed packet (the simulator's per-packet delete
    /// protocol). Returns whether the entry existed.
    pub fn remove(&mut self, clock: &Clock) -> bool {
        self.entries.remove(clock).is_some()
    }

    /// Drop every entry of `root_id` with counter `<= up_to` (frontier-based
    /// truncation: the commit vector proves those packets fully processed).
    /// Returns how many entries were dropped.
    pub fn truncate_confirmed(&mut self, root_id: u8, up_to: u64) -> usize {
        if up_to == 0 {
            return 0;
        }
        let keep = self
            .entries
            .split_off(&Clock::with_root(root_id, up_to + 1));
        let dropped = self.entries.len();
        self.entries = keep;
        self.truncated += dropped as u64;
        dropped
    }

    /// Remove every entry whose clock satisfies `confirmed` — the real-thread
    /// port of the per-packet XOR delete window (Figure 6): the sink's folded
    /// commit vector proves those packets fully delivered, so they can leave
    /// the log ahead of the coarser commit frontier. Returns how many entries
    /// were removed; they accumulate in [`PacketLog::deleted`].
    pub fn delete_where(&mut self, confirmed: impl Fn(&Clock) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|c, _| !confirmed(c));
        let dropped = before - self.entries.len();
        self.deleted += dropped as u64;
        dropped
    }

    /// Snapshot every logged packet in clock order (the replay source).
    pub fn snapshot(&self) -> Vec<TaggedPacket> {
        self.entries.values().cloned().collect()
    }

    /// Whether `clock` is currently logged.
    pub fn contains(&self, clock: &Clock) -> bool {
        self.entries.contains_key(clock)
    }

    /// Number of packets currently logged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest log size ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Entries dropped by frontier truncation so far.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Entries removed by the per-packet XOR delete protocol so far.
    pub fn deleted(&self) -> u64 {
        self.deleted
    }

    /// Packets rejected because the log was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::Packet;

    fn tp(counter: u64) -> TaggedPacket {
        TaggedPacket::new(
            Packet::builder().id(counter).build(),
            Clock::with_root(0, counter),
        )
    }

    #[test]
    fn bounded_insert_and_high_water() {
        let mut log = PacketLog::new(3);
        for c in 1..=3 {
            assert!(log.insert(tp(c)));
        }
        assert!(log.is_full());
        assert!(!log.insert(tp(4)), "full log rejects");
        assert_eq!(log.rejected(), 1);
        assert_eq!(log.high_water(), 3);
        assert!(log.remove(&Clock::with_root(0, 2)));
        assert!(!log.remove(&Clock::with_root(0, 2)));
        assert!(log.insert(tp(4)));
        let clocks: Vec<u64> = log.snapshot().iter().map(|t| t.clock.counter()).collect();
        assert_eq!(clocks, vec![1, 3, 4], "snapshot is clock-ordered");
    }

    #[test]
    fn frontier_truncation_drops_exactly_the_confirmed_prefix() {
        let mut log = PacketLog::new(100);
        for c in 1..=10 {
            log.insert(tp(c));
        }
        assert_eq!(log.truncate_confirmed(0, 0), 0, "zero frontier is a no-op");
        assert_eq!(log.truncate_confirmed(0, 4), 4);
        assert_eq!(log.len(), 6);
        assert!(!log.contains(&Clock::with_root(0, 4)));
        assert!(log.contains(&Clock::with_root(0, 5)));
        // Truncation past the end clears the log; the counter accumulates.
        assert_eq!(log.truncate_confirmed(0, 999), 6);
        assert!(log.is_empty());
        assert_eq!(log.truncated(), 10);
        assert_eq!(log.high_water(), 10);
    }

    #[test]
    fn truncation_respects_the_root_id_prefix() {
        let mut log = PacketLog::new(100);
        log.insert(tp(5));
        let other_root = TaggedPacket::new(Packet::builder().id(9).build(), Clock::with_root(1, 2));
        log.insert(other_root);
        // Truncating root 0 must not touch root 1's entries (clocks of a
        // later root id order strictly above every root-0 clock).
        assert_eq!(log.truncate_confirmed(0, 10), 1);
        assert_eq!(log.len(), 1);
        assert!(log.contains(&Clock::with_root(1, 2)));
    }
}
