//! Messages exchanged between chain components and the framework envelope
//! that wraps packets (clock, marks, XOR commit vector).

use chc_packet::{Packet, TraceTag};
use chc_store::{Clock, InstanceId, StateKey, Value};
use serde::{Deserialize, Serialize};

/// Handover / replay marks attached to a packet by the framework (§5.1, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PacketMark {
    /// The splitter marked this as the *last* packet of a flow group sent to
    /// the old instance during a reallocation (Figure 4, step 1).
    pub last_of_move: bool,
    /// The splitter marked this as the *first* packet of a flow group sent to
    /// the new instance during a reallocation (Figure 4, step 2).
    pub first_of_move: bool,
    /// The root marked this as the last packet of a replay burst (§5.3).
    pub last_of_replay: bool,
}

/// A packet wrapped in the CHC framework envelope.
///
/// The envelope carries the logical clock stamped by the root, the XOR
/// commit vector of §5.4 (16-bit instance id ‖ 16-bit object id per update),
/// replay/clone annotations and handover marks. NFs never see the envelope;
/// the instance runtime unwraps it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedPacket {
    /// The packet as NFs see it.
    pub packet: Packet,
    /// Logical clock stamped by the root (root id in the high bits).
    pub clock: Clock,
    /// XOR of `(instance id ‖ object id)` for every state update the packet
    /// induced so far (§5.4, Figure 6).
    pub xor_vector: u32,
    /// When this is a replayed packet, the instance (clone or failover) it is
    /// being replayed for; intervening NFs treat it as a non-suspicious
    /// duplicate (§5.3, "Duplicate upstream processing").
    pub replay_for: Option<InstanceId>,
    /// True when this copy was replicated to a straggler's clone (the
    /// original still flows to the straggler).
    pub replicated: bool,
    /// Handover / replay marks.
    pub mark: PacketMark,
    /// Causal-trace tag when the packet's flow was sampled for tracing;
    /// every hop that sees the tag records a span. `None` for the
    /// overwhelming majority of packets, so untraced traffic pays one
    /// branch.
    pub trace: Option<TraceTag>,
}

impl TaggedPacket {
    /// Wrap a packet with a clock and no marks.
    pub fn new(packet: Packet, clock: Clock) -> TaggedPacket {
        TaggedPacket {
            packet,
            clock,
            xor_vector: 0,
            replay_for: None,
            replicated: false,
            mark: PacketMark::default(),
            trace: None,
        }
    }

    /// True if this packet is a replay or a replicated copy (needs duplicate
    /// handling at NFs and queues).
    pub fn is_duplicate_risk(&self) -> bool {
        self.replay_for.is_some() || self.replicated
    }

    /// Fold one state update's token into the XOR commit vector.
    pub fn absorb_update_token(&mut self, token: u32) {
        self.xor_vector ^= token;
    }
}

/// The token XORed into packet vectors and signalled by the store when the
/// corresponding update commits: high 16 bits = instance id, low 16 bits =
/// a stable 16-bit hash of the object identity (§5.4).
pub fn xor_token(instance: InstanceId, key: &StateKey) -> u32 {
    let obj = (key.canonical().shard_hash() & 0xffff) as u32;
    ((instance.0 & 0xffff) << 16) | obj
}

/// Messages exchanged by chain components over the simulated network.
#[derive(Debug, Clone)]
pub enum Msg {
    /// A data packet travelling the chain.
    Data(TaggedPacket),
    /// Chain-tail → root: processing of `clock` finished; the final XOR
    /// vector must match the commit signals received by the root before the
    /// log entry is deleted (§5.4, Figure 6 step 3).
    DeleteRequest {
        /// Clock of the finished packet.
        clock: Clock,
        /// Final XOR vector accumulated along the chain.
        xor_vector: u32,
    },
    /// Store → root: an update induced by `clock` was committed; the token
    /// is XORed out of the root's pending vector (Figure 6 step 2).
    CommitSignal {
        /// Clock of the inducing packet.
        clock: Clock,
        /// `(instance ‖ object)` token of the committed update.
        token: u32,
    },
    /// Store → NF instance: a cached read-heavy object changed (Table 1
    /// callback path).
    CallbackUpdate {
        /// The object that changed.
        key: StateKey,
        /// Its new value.
        value: Value,
    },
    /// Store → NF instance: ownership of a per-flow object was released by
    /// its previous owner and acquired by the receiver (Figure 4 step 6).
    HandoverComplete {
        /// The object whose ownership moved.
        key: StateKey,
    },
    /// Framework → NF instance: flush cached state for the given scope keys
    /// and release ownership (sent to the *old* instance when traffic is
    /// reallocated away from it, or when shared-object exclusivity is lost).
    /// Plays the role of the "last" marker of Figure 4 step 1: it arrives
    /// after all previously forwarded packets on the same link, so the old
    /// instance has processed everything destined to it before it flushes.
    FlushRequest {
        /// Object names to flush (empty = everything).
        object_names: Vec<String>,
        /// Whether to also release per-flow ownership (handover) after
        /// flushing.
        release_ownership: bool,
        /// Instance to notify with [`Msg::HandoverComplete`] once the flush
        /// and release are done (the *new* owner of the moved flows).
        notify: Option<InstanceId>,
    },
    /// Framework → NF instance: grant or revoke exclusive access to a
    /// write/read-often cross-flow object (Table 1 row 4). Revocation forces
    /// the instance to flush its cached copy and fall back to store-side
    /// blocking updates; this drives the Figure 9 experiment.
    SetExclusive {
        /// Object name.
        object: String,
        /// Whether this instance now has exclusive access.
        exclusive: bool,
    },
    /// Root → NF instance: begin replaying logged packets to `target`
    /// (failover or straggler clone). Informational for intervening NFs.
    ReplayStart {
        /// Instance the replay is destined for.
        target: InstanceId,
    },
    /// Framework → root: please replay all logged packets (after a failure or
    /// when initialising a straggler clone), marking them for `target`.
    ReplayRequest {
        /// Instance the replay is destined for.
        target: InstanceId,
    },
    /// Vertex manager ↔ instances: statistics used by scaling / straggler
    /// logic (packets processed since the last report, queue length).
    StatsReport {
        /// Reporting instance.
        instance: InstanceId,
        /// Packets processed since the previous report.
        packets: u64,
        /// Input-queue length at report time.
        queue_len: usize,
    },
    /// Framework → instance: inject an artificial per-packet delay (used to
    /// emulate resource contention / stragglers in experiments, §7.3 R4/R5).
    SetProcessingDelay {
        /// Extra delay added to every packet.
        extra_nanos: u64,
    },
    /// Sink → nowhere: emitted packet reached the end host (used in tests).
    Delivered(TaggedPacket),
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_store::{ObjectKey, VertexId};

    #[test]
    fn xor_vector_cancels_out() {
        let pkt = Packet::builder().id(1).build();
        let mut tp = TaggedPacket::new(pkt, Clock::with_root(0, 1));
        let k1 = StateKey::shared(VertexId(1), ObjectKey::named("a"));
        let k2 = StateKey::shared(VertexId(2), ObjectKey::named("b"));
        let t1 = xor_token(InstanceId(3), &k1);
        let t2 = xor_token(InstanceId(5), &k2);
        tp.absorb_update_token(t1);
        tp.absorb_update_token(t2);
        assert_ne!(tp.xor_vector, 0);
        // The root XORs in the commit signals; when every update committed
        // the vector returns to zero.
        tp.absorb_update_token(t1);
        tp.absorb_update_token(t2);
        assert_eq!(tp.xor_vector, 0);
    }

    #[test]
    fn xor_token_separates_instance_and_object() {
        let k = StateKey::shared(VertexId(1), ObjectKey::named("a"));
        let t1 = xor_token(InstanceId(1), &k);
        let t2 = xor_token(InstanceId(2), &k);
        assert_ne!(t1, t2);
        assert_eq!(t1 & 0xffff, t2 & 0xffff, "object part identical");
        assert_ne!(t1 >> 16, t2 >> 16, "instance part differs");
    }

    #[test]
    fn duplicate_risk_flags() {
        let pkt = Packet::builder().build();
        let mut tp = TaggedPacket::new(pkt, Clock::with_root(0, 2));
        assert!(!tp.is_duplicate_risk());
        tp.replicated = true;
        assert!(tp.is_duplicate_risk());
        tp.replicated = false;
        tp.replay_for = Some(InstanceId(4));
        assert!(tp.is_duplicate_risk());
    }
}
