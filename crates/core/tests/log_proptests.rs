//! Property tests for the packet-log machinery failover replays from
//! (§5.4 commit-frontier truncation, Figure 6 XOR deletes): for arbitrary
//! logged clock sets, commit frontiers and delete-protocol histories,
//!
//! * [`PacketLog::truncate_confirmed`] drops **exactly** the counters at or
//!   below the frontier — an un-committed clock (above the frontier) is
//!   never dropped, so a replacement can always be re-fed from the log, and
//! * [`PacketLog::delete_where`] against an [`XorDeleteLedger`] removes
//!   exactly the counters whose delete protocol completed, never one whose
//!   envelope is still in flight.
//!
//! The vendored proptest shim has no collection strategies, so each case
//! draws a seed and derives its random scenario from a `StdRng` — failures
//! stay reproducible because the seed is the whole scenario.

use chc_core::rootlog::PacketLog;
use chc_core::{delete_token, TaggedPacket, XorDeleteLedger};
use chc_packet::Packet;
use chc_store::{Clock, InstanceId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn tp(counter: u64) -> TaggedPacket {
    TaggedPacket::new(
        Packet::builder().id(counter).build(),
        Clock::with_root(0, counter),
    )
}

proptest! {
    /// Frontier truncation never drops an un-committed clock, and never
    /// keeps a committed one.
    #[test]
    fn truncation_never_drops_an_uncommitted_clock(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = rng.gen_range(1..=200u64);
        let mut log = PacketLog::new(256);
        let mut logged = BTreeSet::new();
        for _ in 0..rng.gen_range(1..=128usize) {
            let c = rng.gen_range(1..=max);
            if log.insert(tp(c)) {
                logged.insert(c);
            }
        }
        let frontier = rng.gen_range(0..=max + 5);
        let dropped = log.truncate_confirmed(0, frontier);

        let kept: BTreeSet<u64> =
            log.snapshot().iter().map(|t| t.clock.counter()).collect();
        let expected_kept: BTreeSet<u64> =
            logged.iter().copied().filter(|c| *c > frontier).collect();
        prop_assert_eq!(&kept, &expected_kept, "frontier {} mis-truncated", frontier);
        prop_assert_eq!(dropped, logged.len() - expected_kept.len());
        prop_assert_eq!(log.len(), expected_kept.len());
    }

    /// The XOR delete sweep removes exactly the delivered-and-cancelled
    /// counters: a clock whose token was folded in but never folded back out
    /// by the sink (or never delivered at all) survives every sweep.
    #[test]
    fn xor_delete_sweep_only_removes_confirmed_clocks(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = rng.gen_range(1..=100u64);
        let ledger = XorDeleteLedger::new(max);
        let mut log = PacketLog::new(256);
        let mut logged = BTreeSet::new();
        let mut cancelled = BTreeSet::new();
        for c in 1..=max {
            if !rng.gen_bool(0.7) {
                continue;
            }
            log.insert(tp(c));
            logged.insert(c);
            let token = delete_token(InstanceId(rng.gen_range(0..4)), c);
            ledger.fold(c, token);
            // Three protocol states: in flight, delivered but uncancelled
            // (the sink never folded the envelope back out), and confirmed.
            match rng.gen_range(0..3u32) {
                0 => {}
                1 => ledger.mark_delivered(c),
                _ => {
                    ledger.mark_delivered(c);
                    ledger.fold(c, token);
                    cancelled.insert(c);
                }
            }
        }
        let swept = log.delete_where(|clock| ledger.deletable(clock.counter()));
        let kept: BTreeSet<u64> =
            log.snapshot().iter().map(|t| t.clock.counter()).collect();
        let expected_kept: BTreeSet<u64> =
            logged.difference(&cancelled).copied().collect();
        prop_assert_eq!(&kept, &expected_kept);
        prop_assert_eq!(swept, cancelled.len());
        // Sweeping is idempotent: a second pass finds nothing new.
        prop_assert_eq!(
            log.delete_where(|clock| ledger.deletable(clock.counter())),
            0
        );
    }
}
