//! Flow identification: transport protocols, 5-tuples and flow keys.
//!
//! An NF keys per-flow state on the connection 5-tuple (§4.3 of the paper:
//! `vertex ID + instance ID + obj key`, where the object key for per-flow
//! objects is derived from the 5-tuple). Cross-flow state is keyed on coarser
//! header subsets (e.g. source IP), which is modelled by [`crate::Scope`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport-layer protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol (IP protocol number 6).
    Tcp,
    /// User Datagram Protocol (IP protocol number 17).
    Udp,
    /// Internet Control Message Protocol (IP protocol number 1).
    Icmp,
    /// Any other IP protocol, identified by its protocol number.
    Other(u8),
}

impl Protocol {
    /// IP protocol number used on the wire.
    pub fn number(&self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(n) => *n,
        }
    }

    /// Build a [`Protocol`] from an IP protocol number.
    pub fn from_number(n: u8) -> Protocol {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            1 => Protocol::Icmp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto({n})"),
        }
    }
}

/// Direction of a packet relative to the connection initiator.
///
/// Several NFs (e.g. the portscan detector) need to distinguish packets sent
/// by the host that opened a connection from packets sent by the responder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the connection initiator towards the responder.
    FromInitiator,
    /// From the responder back to the initiator.
    FromResponder,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::FromInitiator => Direction::FromResponder,
            Direction::FromResponder => Direction::FromInitiator,
        }
    }
}

/// The classic connection 5-tuple: source/destination address and port plus
/// transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for protocols without ports).
    pub src_port: u16,
    /// Destination transport port (0 for protocols without ports).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// Construct a TCP 5-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// Construct a UDP 5-tuple.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: Protocol::Udp,
        }
    }

    /// The 5-tuple of the reverse direction (source and destination swapped).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-agnostic identifier: both directions of the same connection
    /// map to the same [`FlowKey`]. NFs that track connections (rather than
    /// unidirectional flows) key their per-flow state on this.
    pub fn bidirectional_key(&self) -> FlowKey {
        let fwd = FlowKey::from_tuple(self);
        let rev = FlowKey::from_tuple(&self.reversed());
        if fwd.0 <= rev.0 {
            fwd
        } else {
            rev
        }
    }

    /// Unidirectional flow key for this exact tuple.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey::from_tuple(self)
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} [{}]",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

/// A compact, hashable identifier for a flow, derived from a [`FiveTuple`].
///
/// The key is a stable 128-bit value built from the tuple fields (the paper's
/// datastore keys are 128-bit; see §7.1 "Datastore performance"). It is *not*
/// a cryptographic hash — it embeds the tuple bijectively so that distinct
/// tuples always map to distinct keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey(pub u128);

impl FlowKey {
    /// Derive the key from a 5-tuple (direction sensitive).
    pub fn from_tuple(t: &FiveTuple) -> FlowKey {
        let src: u32 = t.src_ip.into();
        let dst: u32 = t.dst_ip.into();
        let v: u128 = ((src as u128) << 96)
            | ((dst as u128) << 64)
            | ((t.src_port as u128) << 48)
            | ((t.dst_port as u128) << 32)
            | (t.protocol.number() as u128);
        FlowKey(v)
    }

    /// Reconstruct the 5-tuple encoded in this key.
    pub fn to_tuple(&self) -> FiveTuple {
        let v = self.0;
        FiveTuple {
            src_ip: Ipv4Addr::from(((v >> 96) & 0xffff_ffff) as u32),
            dst_ip: Ipv4Addr::from(((v >> 64) & 0xffff_ffff) as u32),
            src_port: ((v >> 48) & 0xffff) as u16,
            dst_port: ((v >> 32) & 0xffff) as u16,
            protocol: Protocol::from_number((v & 0xff) as u8),
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow:{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4242,
            Ipv4Addr::new(192, 168, 1, 9),
            80,
        )
    }

    #[test]
    fn protocol_number_round_trip() {
        for p in [
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Icmp,
            Protocol::Other(89),
        ] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn flow_key_round_trip() {
        let t = tuple();
        assert_eq!(FlowKey::from_tuple(&t).to_tuple(), t);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn bidirectional_key_is_direction_agnostic() {
        let t = tuple();
        assert_eq!(t.bidirectional_key(), t.reversed().bidirectional_key());
        // ... but the unidirectional keys differ.
        assert_ne!(t.flow_key(), t.reversed().flow_key());
    }

    #[test]
    fn distinct_tuples_distinct_keys() {
        let a = tuple();
        let mut b = a;
        b.src_port = 4243;
        assert_ne!(a.flow_key(), b.flow_key());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::FromInitiator.reverse(), Direction::FromResponder);
        assert_eq!(Direction::FromResponder.reverse(), Direction::FromInitiator);
    }
}
