//! Application-protocol annotations used by content-aware NFs.
//!
//! The Trojan detector of the paper (De Carli et al., reference [12]) flags a
//! host when it observes, in order: (1) an SSH connection, (2) FTP downloads
//! of HTML, ZIP and EXE files, and (3) IRC activity. Re-implementing a full
//! DPI engine is out of scope for the reproduction, so the trace generator
//! labels packets with the application protocol (and FTP transfer kind) that a
//! DPI pass would have produced. The Trojan detector then consumes these
//! labels exactly as the original consumes DPI verdicts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of file carried by an FTP data transfer (Trojan signature step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtpTransferKind {
    /// An HTML document.
    Html,
    /// A ZIP archive.
    Zip,
    /// A Windows executable.
    Exe,
    /// Any other payload.
    Other,
}

/// Application protocol of a flow, as a DPI engine would label it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppProtocol {
    /// Secure shell (Trojan signature step 1).
    Ssh,
    /// File transfer protocol; carries the transferred file kind
    /// (Trojan signature step 2 requires HTML, ZIP and EXE downloads).
    Ftp(FtpTransferKind),
    /// Internet relay chat (Trojan signature step 3).
    Irc,
    /// Plain web traffic.
    Http,
    /// DNS lookups.
    Dns,
    /// Anything else.
    Other,
}

impl AppProtocol {
    /// Conventional server port for the protocol (used by the trace generator).
    pub fn default_port(&self) -> u16 {
        match self {
            AppProtocol::Ssh => 22,
            AppProtocol::Ftp(_) => 21,
            AppProtocol::Irc => 6667,
            AppProtocol::Http => 80,
            AppProtocol::Dns => 53,
            AppProtocol::Other => 9999,
        }
    }

    /// True if this protocol participates in the Trojan signature.
    pub fn is_trojan_relevant(&self) -> bool {
        matches!(
            self,
            AppProtocol::Ssh | AppProtocol::Ftp(_) | AppProtocol::Irc
        )
    }
}

impl fmt::Display for AppProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppProtocol::Ssh => write!(f, "ssh"),
            AppProtocol::Ftp(k) => write!(f, "ftp({k:?})"),
            AppProtocol::Irc => write!(f, "irc"),
            AppProtocol::Http => write!(f, "http"),
            AppProtocol::Dns => write!(f, "dns"),
            AppProtocol::Other => write!(f, "other"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ports() {
        assert_eq!(AppProtocol::Ssh.default_port(), 22);
        assert_eq!(AppProtocol::Ftp(FtpTransferKind::Zip).default_port(), 21);
        assert_eq!(AppProtocol::Irc.default_port(), 6667);
        assert_eq!(AppProtocol::Http.default_port(), 80);
    }

    #[test]
    fn trojan_relevance() {
        assert!(AppProtocol::Ssh.is_trojan_relevant());
        assert!(AppProtocol::Ftp(FtpTransferKind::Exe).is_trojan_relevant());
        assert!(AppProtocol::Irc.is_trojan_relevant());
        assert!(!AppProtocol::Http.is_trojan_relevant());
        assert!(!AppProtocol::Dns.is_trojan_relevant());
    }
}
