//! State scopes: the header granularity at which an NF keys its state.
//!
//! §4.1 of the paper makes state scope a first-class entity: every vertex
//! program exposes a `.scope()` list — the packet header field sets used to
//! key its state objects, ordered from most to least fine grained. CHC's
//! scope-aware traffic partitioning walks this list from coarse to fine to
//! find a split that avoids cross-instance state sharing while keeping load
//! balanced.

use crate::{FlowKey, Packet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Granularity at which a state object is keyed.
///
/// Ordered from most fine grained (`FiveTuple`) to least (`Global`); the
/// derived `Ord` implementation follows that order so splitters can sort a
/// vertex's scope list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// Keyed on the full connection 5-tuple (per-flow state).
    FiveTuple,
    /// Keyed on the (source IP, destination IP) pair.
    HostPair,
    /// Keyed on the connection initiator / source host.
    SrcIp,
    /// Keyed on the destination host.
    DstIp,
    /// Keyed on the destination port (e.g. per-service counters).
    DstPort,
    /// A single object shared by all traffic of the vertex.
    Global,
}

impl Scope {
    /// Extract the key of this scope from a packet.
    ///
    /// Two packets that must share the state object keyed at this scope
    /// return equal [`ScopeKey`]s.
    pub fn key_of(&self, pkt: &Packet) -> ScopeKey {
        match self {
            Scope::FiveTuple => ScopeKey::Flow(pkt.connection_key()),
            Scope::HostPair => {
                let (a, b) = (pkt.initiator(), pkt.responder());
                ScopeKey::HostPair(a.min(b), a.max(b))
            }
            Scope::SrcIp => ScopeKey::Host(pkt.initiator()),
            Scope::DstIp => ScopeKey::Host(pkt.responder()),
            // The "destination port" of a connection is the responder-side
            // (service) port, regardless of which direction this particular
            // packet travels — otherwise the two directions of one connection
            // would map to different per-service state.
            Scope::DstPort => ScopeKey::Port(match pkt.direction {
                crate::Direction::FromInitiator => pkt.tuple.dst_port,
                crate::Direction::FromResponder => pkt.tuple.src_port,
            }),
            Scope::Global => ScopeKey::Global,
        }
    }

    /// True if this scope is strictly coarser than `other` (more packets map
    /// to the same key).
    pub fn coarser_than(&self, other: &Scope) -> bool {
        self > other
    }

    /// All scopes from finest to coarsest.
    pub fn all() -> [Scope; 6] {
        [
            Scope::FiveTuple,
            Scope::HostPair,
            Scope::SrcIp,
            Scope::DstIp,
            Scope::DstPort,
            Scope::Global,
        ]
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scope::FiveTuple => "5-tuple",
            Scope::HostPair => "host-pair",
            Scope::SrcIp => "src-ip",
            Scope::DstIp => "dst-ip",
            Scope::DstPort => "dst-port",
            Scope::Global => "global",
        };
        write!(f, "{s}")
    }
}

/// The value a packet maps to under a given [`Scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScopeKey {
    /// A connection key.
    Flow(FlowKey),
    /// A pair of hosts (order-normalised).
    HostPair(Ipv4Addr, Ipv4Addr),
    /// A single host.
    Host(Ipv4Addr),
    /// A transport port.
    Port(u16),
    /// The single global key.
    Global,
}

impl ScopeKey {
    /// A stable 64-bit hash of the key, used for partitioning decisions and
    /// as part of datastore keys.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over a canonical byte encoding; deterministic across runs
        // (unlike `std::hash::Hash` with `RandomState`), which the splitter
        // relies on for reproducible partitioning decisions.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        match self {
            ScopeKey::Flow(k) => {
                eat(1);
                for b in k.0.to_be_bytes() {
                    eat(b);
                }
            }
            ScopeKey::HostPair(a, b) => {
                eat(2);
                for x in a.octets().iter().chain(b.octets().iter()) {
                    eat(*x);
                }
            }
            ScopeKey::Host(a) => {
                eat(3);
                for x in a.octets() {
                    eat(x);
                }
            }
            ScopeKey::Port(p) => {
                eat(4);
                for b in p.to_be_bytes() {
                    eat(b);
                }
            }
            ScopeKey::Global => eat(5),
        }
        h
    }
}

impl fmt::Display for ScopeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeKey::Flow(k) => write!(f, "{k}"),
            ScopeKey::HostPair(a, b) => write!(f, "{a}<->{b}"),
            ScopeKey::Host(a) => write!(f, "host:{a}"),
            ScopeKey::Port(p) => write!(f, "port:{p}"),
            ScopeKey::Global => write!(f, "global"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, FiveTuple, Packet};

    fn pkt(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> Packet {
        Packet::builder()
            .tuple(FiveTuple::tcp(
                Ipv4Addr::from(src),
                sport,
                Ipv4Addr::from(dst),
                dport,
            ))
            .direction(Direction::FromInitiator)
            .build()
    }

    #[test]
    fn ordering_fine_to_coarse() {
        assert!(Scope::Global.coarser_than(&Scope::SrcIp));
        assert!(Scope::SrcIp.coarser_than(&Scope::FiveTuple));
        assert!(!Scope::FiveTuple.coarser_than(&Scope::Global));
        let all = Scope::all();
        let mut sorted = all;
        sorted.sort();
        assert_eq!(all, sorted);
    }

    #[test]
    fn src_ip_scope_groups_flows_of_same_host() {
        let a = pkt([10, 0, 0, 1], 1111, [8, 8, 8, 8], 80);
        let b = pkt([10, 0, 0, 1], 2222, [9, 9, 9, 9], 443);
        let c = pkt([10, 0, 0, 2], 1111, [8, 8, 8, 8], 80);
        assert_eq!(Scope::SrcIp.key_of(&a), Scope::SrcIp.key_of(&b));
        assert_ne!(Scope::SrcIp.key_of(&a), Scope::SrcIp.key_of(&c));
        assert_ne!(Scope::FiveTuple.key_of(&a), Scope::FiveTuple.key_of(&b));
    }

    #[test]
    fn src_ip_scope_is_direction_agnostic() {
        // The responder's reply packet must map to the same src-ip key as the
        // initiator's packet, otherwise per-host state would be split across
        // instances when traffic is partitioned on that scope.
        let fwd = pkt([10, 0, 0, 1], 1111, [8, 8, 8, 8], 80);
        let mut rev = fwd.clone();
        rev.tuple = fwd.tuple.reversed();
        rev.direction = Direction::FromResponder;
        assert_eq!(Scope::SrcIp.key_of(&fwd), Scope::SrcIp.key_of(&rev));
        assert_eq!(Scope::HostPair.key_of(&fwd), Scope::HostPair.key_of(&rev));
        assert_eq!(Scope::FiveTuple.key_of(&fwd), Scope::FiveTuple.key_of(&rev));
    }

    #[test]
    fn global_scope_single_key() {
        let a = pkt([1, 2, 3, 4], 1, [5, 6, 7, 8], 2);
        let b = pkt([9, 9, 9, 9], 3, [7, 7, 7, 7], 4);
        assert_eq!(Scope::Global.key_of(&a), Scope::Global.key_of(&b));
    }

    #[test]
    fn stable_hash_distinguishes_variants() {
        let host = ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 1));
        let port = ScopeKey::Port(80);
        assert_ne!(host.stable_hash(), port.stable_hash());
        assert_eq!(
            host.stable_hash(),
            ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 1)).stable_hash()
        );
    }
}
