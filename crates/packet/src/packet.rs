//! The [`Packet`] type processed by NFs and moved through CHC chains.
//!
//! A packet carries the parsed header fields NFs care about plus the payload
//! length. CHC-specific metadata (logical clocks, replay marks, the XOR commit
//! vector of §5.4) is deliberately *not* part of this type: the framework
//! wraps packets in its own envelope (`chc_core::message::TaggedPacket`), just
//! as the real system attaches metadata outside the NF-visible packet.

use crate::{AppProtocol, Direction, FiveTuple, FlowKey, Protocol, TcpEvent, TcpFlags};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Unique identifier of a packet within a trace (assigned by the generator).
///
/// This is *not* the CHC logical clock — it identifies the packet in the input
/// stream so that chain-output-equivalence checks can match outputs against
/// inputs irrespective of what the framework did in between.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// A network packet as seen by a network function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Identifier within the input trace.
    pub id: PacketId,
    /// Connection 5-tuple.
    pub tuple: FiveTuple,
    /// Direction relative to the connection initiator.
    pub direction: Direction,
    /// TCP flags (empty for non-TCP packets).
    pub flags: TcpFlags,
    /// Total packet length in bytes (headers + payload), as used for
    /// byte counters and throughput accounting.
    pub len: u32,
    /// Application protocol label (what a DPI engine would report).
    pub app: AppProtocol,
    /// Arrival timestamp at the network entry point, in nanoseconds of
    /// virtual time. Zero when unknown.
    pub arrival_ns: u64,
}

impl Packet {
    /// Start building a packet.
    pub fn builder() -> PacketBuilder {
        PacketBuilder::default()
    }

    /// Unidirectional flow key (direction sensitive).
    pub fn flow_key(&self) -> FlowKey {
        self.tuple.flow_key()
    }

    /// Direction-agnostic connection key.
    pub fn connection_key(&self) -> FlowKey {
        self.tuple.bidirectional_key()
    }

    /// The host that initiated the connection this packet belongs to.
    pub fn initiator(&self) -> Ipv4Addr {
        match self.direction {
            Direction::FromInitiator => self.tuple.src_ip,
            Direction::FromResponder => self.tuple.dst_ip,
        }
    }

    /// The responding host of the connection this packet belongs to.
    pub fn responder(&self) -> Ipv4Addr {
        match self.direction {
            Direction::FromInitiator => self.tuple.dst_ip,
            Direction::FromResponder => self.tuple.src_ip,
        }
    }

    /// Connection-level TCP event carried by this packet.
    pub fn tcp_event(&self, established: bool) -> TcpEvent {
        if self.tuple.protocol != Protocol::Tcp {
            return TcpEvent::None;
        }
        TcpEvent::classify(self.flags, self.direction, established)
    }

    /// True if this is the first packet of a new connection attempt.
    pub fn is_connection_attempt(&self) -> bool {
        self.tuple.protocol == Protocol::Tcp && self.flags.syn() && !self.flags.ack()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}B [{}] {}",
            self.id, self.tuple, self.len, self.flags, self.app
        )
    }
}

/// Builder for [`Packet`] used throughout tests, examples and the trace
/// generator.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    id: PacketId,
    tuple: FiveTuple,
    direction: Direction,
    flags: TcpFlags,
    len: u32,
    app: AppProtocol,
    arrival_ns: u64,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            id: PacketId(0),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                10000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            direction: Direction::FromInitiator,
            flags: TcpFlags::ACK,
            len: 64,
            app: AppProtocol::Other,
            arrival_ns: 0,
        }
    }
}

impl PacketBuilder {
    /// Set the packet identifier.
    pub fn id(mut self, id: u64) -> Self {
        self.id = PacketId(id);
        self
    }

    /// Set the 5-tuple.
    pub fn tuple(mut self, tuple: FiveTuple) -> Self {
        self.tuple = tuple;
        self
    }

    /// Set the direction.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Set the TCP flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Set the total length in bytes.
    pub fn len(mut self, len: u32) -> Self {
        self.len = len;
        self
    }

    /// Set the application protocol label.
    pub fn app(mut self, app: AppProtocol) -> Self {
        self.app = app;
        self
    }

    /// Set the arrival timestamp in nanoseconds.
    pub fn arrival_ns(mut self, t: u64) -> Self {
        self.arrival_ns = t;
        self
    }

    /// Finish building.
    pub fn build(self) -> Packet {
        Packet {
            id: self.id,
            tuple: self.tuple,
            direction: self.direction,
            flags: self.flags,
            len: self.len,
            app: self.app,
            arrival_ns: self.arrival_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = Packet::builder()
            .id(7)
            .len(1434)
            .flags(TcpFlags::SYN)
            .app(AppProtocol::Ssh)
            .arrival_ns(123)
            .build();
        assert_eq!(p.id, PacketId(7));
        assert_eq!(p.len, 1434);
        assert!(p.is_connection_attempt());
        assert_eq!(p.app, AppProtocol::Ssh);
        assert_eq!(p.arrival_ns, 123);
    }

    #[test]
    fn initiator_responder_follow_direction() {
        let t = FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 80);
        let fwd = Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .build();
        let rev = Packet::builder()
            .tuple(t.reversed())
            .direction(Direction::FromResponder)
            .build();
        assert_eq!(fwd.initiator(), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(rev.initiator(), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(fwd.responder(), Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(rev.responder(), Ipv4Addr::new(2, 2, 2, 2));
        // Both directions share the connection key.
        assert_eq!(fwd.connection_key(), rev.connection_key());
    }

    #[test]
    fn tcp_event_for_udp_is_none() {
        let t = FiveTuple::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            53,
            Ipv4Addr::new(2, 2, 2, 2),
            5353,
        );
        let p = Packet::builder().tuple(t).flags(TcpFlags::SYN).build();
        assert_eq!(p.tcp_event(false), TcpEvent::None);
        assert!(!p.is_connection_attempt());
    }
}
