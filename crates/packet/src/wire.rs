//! Minimal Ethernet II / IPv4 / TCP / UDP wire codec.
//!
//! CHC NFs in this reproduction operate on the parsed [`Packet`]
//! representation, but a realistic framework must be able to move packets as
//! bytes (the paper's prototype forwards real frames over 10G NICs). This
//! module provides a small, dependency-free encoder/decoder that round-trips
//! the fields carried by [`Packet`]. Payload bytes are not materialised — the
//! encoded frame is padded with zeros up to the packet length — because no NF
//! in the paper inspects payload content (the DPI verdict is carried as a
//! label, see [`crate::app`]).

use crate::{
    AppProtocol, Direction, FiveTuple, FtpTransferKind, Packet, PacketId, Protocol, TcpFlags,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the headers require.
    Truncated,
    /// The Ethernet ethertype is not IPv4.
    UnsupportedEtherType(u16),
    /// The IPv4 header length field is invalid.
    BadIpHeader,
    /// The IPv4 checksum does not verify.
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            WireError::BadIpHeader => write!(f, "invalid IPv4 header"),
            WireError::BadChecksum => write!(f, "IPv4 checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETH_HDR_LEN: usize = 14;
const IPV4_HDR_LEN: usize = 20;
const TCP_HDR_LEN: usize = 20;
const UDP_HDR_LEN: usize = 8;

/// Length in bytes of the trailer that carries reproduction-only metadata
/// (packet id, direction, app-protocol label, arrival timestamp).
///
/// A real deployment would not need this: the id/clock travel in the CHC
/// framework envelope and the app label comes from DPI. Encoding them lets
/// `decode` be the exact inverse of `encode`, which the loopback tests and
/// the threaded pipeline example rely on.
pub const META_TRAILER_LEN: usize = 23;

/// IPv4 header checksum (RFC 1071).
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = header.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let Some(&b) = chunks.remainder().first() {
        sum += (b as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn encode_app(app: AppProtocol) -> u8 {
    match app {
        AppProtocol::Ssh => 1,
        AppProtocol::Ftp(FtpTransferKind::Html) => 2,
        AppProtocol::Ftp(FtpTransferKind::Zip) => 3,
        AppProtocol::Ftp(FtpTransferKind::Exe) => 4,
        AppProtocol::Ftp(FtpTransferKind::Other) => 5,
        AppProtocol::Irc => 6,
        AppProtocol::Http => 7,
        AppProtocol::Dns => 8,
        AppProtocol::Other => 0,
    }
}

fn decode_app(b: u8) -> AppProtocol {
    match b {
        1 => AppProtocol::Ssh,
        2 => AppProtocol::Ftp(FtpTransferKind::Html),
        3 => AppProtocol::Ftp(FtpTransferKind::Zip),
        4 => AppProtocol::Ftp(FtpTransferKind::Exe),
        5 => AppProtocol::Ftp(FtpTransferKind::Other),
        6 => AppProtocol::Irc,
        7 => AppProtocol::Http,
        8 => AppProtocol::Dns,
        _ => AppProtocol::Other,
    }
}

/// Encode a packet into an Ethernet II frame.
///
/// The frame length equals `max(pkt.len, minimum header size) +
/// META_TRAILER_LEN`; the payload area is zero filled.
pub fn encode(pkt: &Packet) -> Bytes {
    let l4_len = match pkt.tuple.protocol {
        Protocol::Tcp => TCP_HDR_LEN,
        Protocol::Udp => UDP_HDR_LEN,
        _ => 0,
    };
    let min_len = (ETH_HDR_LEN + IPV4_HDR_LEN + l4_len) as u32;
    let total = pkt.len.max(min_len) as usize;
    let mut buf = BytesMut::with_capacity(total + META_TRAILER_LEN);

    // Ethernet header: synthetic locally-administered MACs derived from IPs.
    let mut dst_mac = [0x02u8, 0, 0, 0, 0, 0];
    dst_mac[2..6].copy_from_slice(&pkt.tuple.dst_ip.octets());
    let mut src_mac = [0x02u8, 1, 0, 0, 0, 0];
    src_mac[2..6].copy_from_slice(&pkt.tuple.src_ip.octets());
    buf.put_slice(&dst_mac);
    buf.put_slice(&src_mac);
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4 header.
    let ip_total_len = (total - ETH_HDR_LEN) as u16;
    let mut ip = [0u8; IPV4_HDR_LEN];
    ip[0] = 0x45; // version 4, IHL 5
    ip[2..4].copy_from_slice(&ip_total_len.to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = pkt.tuple.protocol.number();
    ip[12..16].copy_from_slice(&pkt.tuple.src_ip.octets());
    ip[16..20].copy_from_slice(&pkt.tuple.dst_ip.octets());
    let csum = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());
    buf.put_slice(&ip);

    // Transport header.
    match pkt.tuple.protocol {
        Protocol::Tcp => {
            let mut tcp = [0u8; TCP_HDR_LEN];
            tcp[0..2].copy_from_slice(&pkt.tuple.src_port.to_be_bytes());
            tcp[2..4].copy_from_slice(&pkt.tuple.dst_port.to_be_bytes());
            tcp[12] = 5 << 4; // data offset = 5 words
            tcp[13] = pkt.flags.bits();
            buf.put_slice(&tcp);
        }
        Protocol::Udp => {
            let mut udp = [0u8; UDP_HDR_LEN];
            udp[0..2].copy_from_slice(&pkt.tuple.src_port.to_be_bytes());
            udp[2..4].copy_from_slice(&pkt.tuple.dst_port.to_be_bytes());
            let udp_len = (total - ETH_HDR_LEN - IPV4_HDR_LEN) as u16;
            udp[4..6].copy_from_slice(&udp_len.to_be_bytes());
            buf.put_slice(&udp);
        }
        _ => {}
    }

    // Zero-filled payload up to the declared length.
    let filled = buf.len();
    buf.resize(total.max(filled), 0);

    // Reproduction metadata trailer.
    buf.put_u64(pkt.id.0);
    buf.put_u64(pkt.arrival_ns);
    buf.put_u32(pkt.len);
    buf.put_u8(match pkt.direction {
        Direction::FromInitiator => 0,
        Direction::FromResponder => 1,
    });
    buf.put_u8(encode_app(pkt.app));
    buf.put_u8(pkt.flags.bits());

    buf.freeze()
}

/// Decode a frame produced by [`encode`] back into a [`Packet`].
pub fn decode(frame: &[u8]) -> Result<Packet, WireError> {
    if frame.len() < ETH_HDR_LEN + IPV4_HDR_LEN + META_TRAILER_LEN {
        return Err(WireError::Truncated);
    }
    let mut buf = frame;
    buf.advance(12);
    let ethertype = buf.get_u16();
    if ethertype != ETHERTYPE_IPV4 {
        return Err(WireError::UnsupportedEtherType(ethertype));
    }
    let ip = &frame[ETH_HDR_LEN..ETH_HDR_LEN + IPV4_HDR_LEN];
    if ip[0] != 0x45 {
        return Err(WireError::BadIpHeader);
    }
    if ipv4_checksum(ip) != 0 {
        return Err(WireError::BadChecksum);
    }
    let protocol = Protocol::from_number(ip[9]);
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);

    let l4 = &frame[ETH_HDR_LEN + IPV4_HDR_LEN..];
    let (src_port, dst_port) = match protocol {
        Protocol::Tcp | Protocol::Udp => {
            if l4.len() < 4 {
                return Err(WireError::Truncated);
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
            )
        }
        _ => (0, 0),
    };

    // Reproduction metadata trailer.
    let mut meta = &frame[frame.len() - META_TRAILER_LEN..];
    let id = meta.get_u64();
    let arrival_ns = meta.get_u64();
    let len = meta.get_u32();
    let direction = if meta.get_u8() == 0 {
        Direction::FromInitiator
    } else {
        Direction::FromResponder
    };
    let app = decode_app(meta.get_u8());
    let flags = TcpFlags(meta.get_u8());

    Ok(Packet {
        id: PacketId(id),
        tuple: FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
        },
        direction,
        flags,
        len,
        app,
        arrival_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FiveTuple;

    fn sample(proto: Protocol) -> Packet {
        let tuple = FiveTuple {
            src_ip: Ipv4Addr::new(10, 1, 2, 3),
            dst_ip: Ipv4Addr::new(54, 32, 10, 9),
            src_port: 50123,
            dst_port: 443,
            protocol: proto,
        };
        Packet::builder()
            .id(991)
            .tuple(tuple)
            .direction(Direction::FromResponder)
            .flags(TcpFlags::SYN | TcpFlags::ACK)
            .len(1434)
            .app(AppProtocol::Ftp(FtpTransferKind::Exe))
            .arrival_ns(77_000)
            .build()
    }

    #[test]
    fn encode_decode_round_trip_tcp() {
        let p = sample(Protocol::Tcp);
        let frame = encode(&p);
        assert!(frame.len() >= p.len as usize);
        let q = decode(&frame).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn encode_decode_round_trip_udp() {
        let p = sample(Protocol::Udp);
        let q = decode(&encode(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn small_packets_are_padded_to_header_size() {
        let mut p = sample(Protocol::Tcp);
        p.len = 10; // smaller than the headers
        let frame = encode(&p);
        let q = decode(&frame).unwrap();
        assert_eq!(q.len, 10); // declared length survives via the trailer
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let p = sample(Protocol::Tcp);
        let mut frame = encode(&p).to_vec();
        frame[ETH_HDR_LEN + 10] ^= 0xff; // corrupt the checksum bytes
        assert_eq!(decode(&frame), Err(WireError::BadChecksum));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        assert_eq!(decode(&[0u8; 8]), Err(WireError::Truncated));
    }

    #[test]
    fn wrong_ethertype_is_rejected() {
        let p = sample(Protocol::Tcp);
        let mut frame = encode(&p).to_vec();
        frame[12] = 0x86;
        frame[13] = 0xdd; // IPv6
        assert!(matches!(
            decode(&frame),
            Err(WireError::UnsupportedEtherType(0x86dd))
        ));
    }
}
