//! Causal-trace tagging: flow-sampled selection of packets whose life the
//! runtime records as per-hop spans.
//!
//! The tag itself is tiny — just the trace id, which the CHC root sets to
//! the packet's logical clock counter, making trace ids unique per run and
//! totally ordered by injection. Whether a packet is traced is decided
//! *per flow*, not per packet: sampling keys on a stable hash of the flow
//! key, so either every packet of a flow is traced or none is. That is what
//! makes per-flow invariants (clock ordering at delivery) checkable from
//! the trace alone, and it mirrors how production tracing systems sample
//! (head-based, consistent per flow).

use crate::FlowKey;
use serde::{Deserialize, Serialize};

/// Marks a packet as selected for causal tracing.
///
/// Carried through the framework envelope (`chc_core::TaggedPacket`), never
/// shown to NFs. The id is the root's logical clock counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceTag {
    /// Trace id: the root clock counter stamped at injection.
    pub id: u64,
}

impl TraceTag {
    /// Tag with the given trace id.
    pub fn new(id: u64) -> TraceTag {
        TraceTag { id }
    }
}

/// Sampling rate in parts per million: 1_000_000 traces every flow, 10_000
/// is 1%, 0 disables tracing.
pub const TRACE_PPM_FULL: u32 = 1_000_000;

/// Stable per-flow sampling decision at `ppm` parts per million.
///
/// Uses FNV-1a over the flow key's 128 bits — deterministic across runs and
/// platforms, so the same trace samples the same flows on every substrate,
/// and independent of the flow key's own bit layout (the key embeds the
/// tuple bijectively, so low bits alone would bias towards protocol
/// numbers).
pub fn flow_sampled(flow: FlowKey, ppm: u32) -> bool {
    if ppm == 0 {
        return false;
    }
    if ppm >= TRACE_PPM_FULL {
        return true;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in flow.0.to_be_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % TRACE_PPM_FULL as u64) < ppm as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FiveTuple;
    use std::net::Ipv4Addr;

    fn flow(port: u16) -> FlowKey {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            port,
            Ipv4Addr::new(192, 168, 1, 9),
            80,
        )
        .flow_key()
    }

    #[test]
    fn boundary_rates() {
        for p in 0..100 {
            assert!(!flow_sampled(flow(p as u16 + 1024), 0));
            assert!(flow_sampled(flow(p as u16 + 1024), TRACE_PPM_FULL));
        }
    }

    #[test]
    fn sampling_is_stable_per_flow() {
        for port in 1024..1124 {
            let f = flow(port);
            assert_eq!(flow_sampled(f, 10_000), flow_sampled(f, 10_000));
        }
    }

    #[test]
    fn rate_is_roughly_honored() {
        let sampled = (0..10_000u32)
            .filter(|i| flow_sampled(flow((i % 60_000) as u16), 100_000))
            .count();
        // 10% ± generous slack over 10k distinct flows.
        assert!(
            (500..2_000).contains(&sampled),
            "10% of 10k flows sampled ~1000, got {sampled}"
        );
    }

    #[test]
    fn higher_rate_samples_superset() {
        for port in 1..2000u16 {
            let f = flow(port);
            if flow_sampled(f, 10_000) {
                assert!(flow_sampled(f, 500_000), "10% flows are inside 50%");
            }
        }
    }
}
