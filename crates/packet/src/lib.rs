//! # chc-packet
//!
//! Packet, flow and trace substrate for the CHC NFV framework reproduction.
//!
//! The CHC paper evaluates its framework with packet traces collected between a
//! campus network and AWS EC2. Those traces are not publicly available, so this
//! crate provides:
//!
//! * a compact [`Packet`] representation carrying the header fields network
//!   functions actually inspect (5-tuple, TCP flags, payload length, an
//!   application-protocol tag used by the Trojan-detector scenario),
//! * [`FiveTuple`] / [`FlowKey`] types plus the notion of a *state scope*
//!   ([`Scope`]) — the set of header fields an NF uses to key its state
//!   objects (§4.1 of the paper),
//! * a minimal Ethernet/IPv4/TCP/UDP wire codec ([`wire`]) so packets can be
//!   serialized to and parsed from bytes,
//! * a seeded synthetic [`trace`] generator that reproduces the structural
//!   properties the evaluation depends on (connection counts, packet-size
//!   distributions, protocol mix, Trojan signatures, load levels).
//!
//! Everything in this crate is deterministic given a seed, which is what makes
//! chain-output-equivalence (COE) checks in `chc-core` possible.

pub mod app;
pub mod flow;
pub mod packet;
pub mod scope;
pub mod tag;
pub mod tcp;
pub mod trace;
pub mod wire;

pub use app::{AppProtocol, FtpTransferKind};
pub use flow::{Direction, FiveTuple, FlowKey, Protocol};
pub use packet::{Packet, PacketBuilder, PacketId};
pub use scope::{Scope, ScopeKey};
pub use tag::{flow_sampled, TraceTag, TRACE_PPM_FULL};
pub use tcp::{TcpEvent, TcpFlags};
pub use trace::{Trace, TraceConfig, TraceGenerator, TraceStats};
