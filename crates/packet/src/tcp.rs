//! TCP control flags and the connection-level events NFs derive from them.
//!
//! The portscan detector (Schechter et al., the paper's reference [26]) and
//! the NAT react to connection initiation and teardown rather than to raw
//! packets, so the trace generator annotates packets with flags from which a
//! [`TcpEvent`] can be derived.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// TCP header flags (subset relevant to connection tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender has finished sending data.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronise sequence numbers (connection setup).
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgement number is valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// No flags set (used for non-TCP packets).
    pub const NONE: TcpFlags = TcpFlags(0);

    /// SYN+ACK convenience constant (second step of the handshake).
    pub const SYN_ACK: TcpFlags = TcpFlags(0x02 | 0x10);

    /// Does this flag set contain all flags of `other`?
    pub fn contains(&self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if the SYN flag is set.
    pub fn syn(&self) -> bool {
        self.contains(TcpFlags::SYN)
    }

    /// True if the ACK flag is set.
    pub fn ack(&self) -> bool {
        self.contains(TcpFlags::ACK)
    }

    /// True if the RST flag is set.
    pub fn rst(&self) -> bool {
        self.contains(TcpFlags::RST)
    }

    /// True if the FIN flag is set.
    pub fn fin(&self) -> bool {
        self.contains(TcpFlags::FIN)
    }

    /// Raw flag byte as it would appear in a TCP header (lower 6 bits).
    pub fn bits(&self) -> u8 {
        self.0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn() {
            parts.push("SYN");
        }
        if self.ack() {
            parts.push("ACK");
        }
        if self.fin() {
            parts.push("FIN");
        }
        if self.rst() {
            parts.push("RST");
        }
        if self.contains(TcpFlags::PSH) {
            parts.push("PSH");
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// Connection-level event derived from a packet's flags and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TcpEvent {
    /// Initiator sent a SYN: a new connection attempt.
    ConnectionAttempt,
    /// Responder answered with SYN+ACK: the attempt succeeded.
    ConnectionAccepted,
    /// Responder answered with RST (or the attempt otherwise failed).
    ConnectionRefused,
    /// Either side sent FIN: orderly teardown.
    ConnectionClosed,
    /// A reset in the middle of an established connection.
    ConnectionReset,
    /// An ordinary data/ack packet of an established connection.
    Data,
    /// Not a TCP packet or no connection-level meaning.
    None,
}

impl TcpEvent {
    /// Classify a packet by its flags and direction.
    ///
    /// `established` should be true when the observer has already seen the
    /// handshake complete for this connection; it disambiguates a refused
    /// connection (RST answering a SYN) from a reset of a live connection.
    pub fn classify(flags: TcpFlags, dir: crate::Direction, established: bool) -> TcpEvent {
        use crate::Direction::*;
        if flags.syn() && !flags.ack() && dir == FromInitiator {
            TcpEvent::ConnectionAttempt
        } else if flags.syn() && flags.ack() && dir == FromResponder {
            TcpEvent::ConnectionAccepted
        } else if flags.rst() {
            if established {
                TcpEvent::ConnectionReset
            } else {
                TcpEvent::ConnectionRefused
            }
        } else if flags.fin() {
            TcpEvent::ConnectionClosed
        } else if flags.0 != 0 {
            TcpEvent::Data
        } else {
            TcpEvent::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    #[test]
    fn flag_predicates() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.syn() && f.ack() && !f.fin() && !f.rst());
        assert_eq!(f, TcpFlags::SYN_ACK);
        assert_eq!(f.to_string(), "SYN|ACK");
    }

    #[test]
    fn classify_handshake() {
        assert_eq!(
            TcpEvent::classify(TcpFlags::SYN, Direction::FromInitiator, false),
            TcpEvent::ConnectionAttempt
        );
        assert_eq!(
            TcpEvent::classify(TcpFlags::SYN_ACK, Direction::FromResponder, false),
            TcpEvent::ConnectionAccepted
        );
        assert_eq!(
            TcpEvent::classify(TcpFlags::RST, Direction::FromResponder, false),
            TcpEvent::ConnectionRefused
        );
        assert_eq!(
            TcpEvent::classify(TcpFlags::RST, Direction::FromResponder, true),
            TcpEvent::ConnectionReset
        );
        assert_eq!(
            TcpEvent::classify(
                TcpFlags::FIN | TcpFlags::ACK,
                Direction::FromInitiator,
                true
            ),
            TcpEvent::ConnectionClosed
        );
        assert_eq!(
            TcpEvent::classify(TcpFlags::ACK, Direction::FromInitiator, true),
            TcpEvent::Data
        );
        assert_eq!(
            TcpEvent::classify(TcpFlags::NONE, Direction::FromInitiator, true),
            TcpEvent::None
        );
    }

    #[test]
    fn display_empty() {
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }
}
