//! Synthetic packet-trace generation.
//!
//! The paper drives its evaluation with two traces captured between a campus
//! network and AWS EC2 (Trace1: 3.8 M packets / 1.7 K connections, median
//! 368 B; Trace2: 6.4 M packets / 199 K connections, median 1434 B). Those
//! traces are proprietary, so this module generates synthetic traces with the
//! same *structural* properties the evaluation depends on:
//!
//! * a configurable number of client hosts talking to a set of servers,
//! * full TCP connection life cycles (SYN, SYN-ACK or RST, data in both
//!   directions, FIN) so connection-tracking NFs exercise every code path,
//! * a packet-size distribution with a configurable median,
//! * an application-protocol mix including SSH/FTP/IRC flows and injectable
//!   Trojan signatures (for the chain-wide ordering experiment, R4),
//! * a fraction of "scanner" hosts whose connection attempts mostly fail
//!   (for the portscan-detector experiments), and
//! * arrival timestamps derived from a target offered load in Gbps, so load
//!   levels like "30 %" and "50 %" of a 10 Gbps link are reproducible.
//!
//! Generation is fully deterministic given [`TraceConfig::seed`].

use crate::{AppProtocol, Direction, FiveTuple, FtpTransferKind, Packet, PacketId, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed; identical seeds produce identical traces.
    pub seed: u64,
    /// Number of TCP connections to generate.
    pub connections: usize,
    /// Mean number of data packets per connection (geometric-ish spread).
    pub mean_packets_per_connection: usize,
    /// Number of distinct client (campus-side) hosts.
    pub client_hosts: usize,
    /// Number of distinct server (EC2-side) hosts.
    pub server_hosts: usize,
    /// Median packet size in bytes (Trace1 ≈ 368, Trace2 ≈ 1434).
    pub median_packet_size: u32,
    /// Offered load in Gbps used to space arrivals (10.0 = full 10 G link).
    pub offered_load_gbps: f64,
    /// Fraction of connection attempts that are refused (RST to the SYN).
    pub refused_fraction: f64,
    /// Fraction of client hosts that behave like port scanners
    /// (high connection-attempt rate, most attempts refused).
    pub scanner_host_fraction: f64,
    /// Number of Trojan signatures (SSH → FTP html/zip/exe → IRC, per host)
    /// to interleave into the trace (the paper injects 11).
    pub trojan_signatures: usize,
    /// Fraction of benign SSH/FTP/IRC traffic (exercises the Trojan detector
    /// without matching the full signature).
    pub trojan_background_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 42,
            connections: 2_000,
            mean_packets_per_connection: 16,
            client_hosts: 64,
            server_hosts: 16,
            median_packet_size: 1434,
            offered_load_gbps: 10.0,
            refused_fraction: 0.05,
            scanner_host_fraction: 0.0,
            trojan_signatures: 0,
            trojan_background_fraction: 0.02,
        }
    }
}

impl TraceConfig {
    /// A small trace suitable for unit tests (a few thousand packets).
    pub fn small(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            connections: 200,
            mean_packets_per_connection: 8,
            ..Default::default()
        }
    }

    /// A configuration that mimics the structure of the paper's Trace2
    /// (199 K connections, median 1434 B), scaled by `scale` in (0, 1].
    pub fn trace2_like(scale: f64) -> TraceConfig {
        let scale = scale.clamp(1e-4, 1.0);
        TraceConfig {
            seed: 2,
            connections: ((199_000.0 * scale) as usize).max(10),
            mean_packets_per_connection: 32,
            client_hosts: ((2_000.0 * scale) as usize).max(8),
            server_hosts: 64,
            median_packet_size: 1434,
            offered_load_gbps: 10.0,
            ..Default::default()
        }
    }

    /// A configuration that mimics the structure of the paper's Trace1
    /// (1.7 K connections, median 368 B), scaled by `scale` in (0, 1].
    pub fn trace1_like(scale: f64) -> TraceConfig {
        let scale = scale.clamp(1e-4, 1.0);
        TraceConfig {
            seed: 1,
            connections: ((1_700.0 * scale) as usize).max(10),
            mean_packets_per_connection: 2_200,
            client_hosts: 128,
            server_hosts: 32,
            median_packet_size: 368,
            offered_load_gbps: 10.0,
            ..Default::default()
        }
    }

    /// Set the offered load as a fraction of a 10 Gbps link (the paper's
    /// "30 % load" / "50 % load" experiments).
    pub fn with_load_fraction(mut self, fraction: f64) -> TraceConfig {
        self.offered_load_gbps = 10.0 * fraction;
        self
    }

    /// Enable scanner hosts (portscan-detector experiments).
    pub fn with_scanners(mut self, fraction: f64) -> TraceConfig {
        self.scanner_host_fraction = fraction;
        self
    }

    /// Inject `n` Trojan signatures (chain-ordering experiment, R4).
    pub fn with_trojans(mut self, n: usize) -> TraceConfig {
        self.trojan_signatures = n;
        self
    }
}

/// A generated trace: packets ordered by arrival time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Packets in arrival order (arrival_ns is non-decreasing).
    pub packets: Vec<Packet>,
    /// The hosts that carry an injected Trojan signature, in injection order.
    pub trojan_hosts: Vec<Ipv4Addr>,
    /// The hosts generated as port scanners.
    pub scanner_hosts: Vec<Ipv4Addr>,
}

impl Trace {
    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterate over the packets in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter()
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut sizes: Vec<u32> = self.packets.iter().map(|p| p.len).collect();
        sizes.sort_unstable();
        let median = sizes.get(sizes.len() / 2).copied().unwrap_or(0);
        let total_bytes: u64 = self.packets.iter().map(|p| p.len as u64).sum();
        let mut conns = std::collections::HashSet::new();
        for p in &self.packets {
            conns.insert(p.connection_key());
        }
        let duration_ns = self
            .packets
            .last()
            .map(|p| p.arrival_ns.saturating_sub(self.packets[0].arrival_ns))
            .unwrap_or(0);
        TraceStats {
            packets: self.packets.len(),
            connections: conns.len(),
            total_bytes,
            median_packet_size: median,
            duration_ns,
        }
    }
}

/// Summary statistics of a trace (mirrors how the paper describes its traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of packets.
    pub packets: usize,
    /// Number of distinct connections.
    pub connections: usize,
    /// Total bytes carried.
    pub total_bytes: u64,
    /// Median packet size in bytes.
    pub median_packet_size: u32,
    /// Time between first and last arrival, in nanoseconds.
    pub duration_ns: u64,
}

impl TraceStats {
    /// Average offered load in Gbps over the trace duration.
    pub fn offered_gbps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        (self.total_bytes as f64 * 8.0) / (self.duration_ns as f64)
    }
}

/// One connection to be expanded into packets.
#[derive(Debug, Clone)]
struct ConnSpec {
    tuple: FiveTuple,
    app: AppProtocol,
    data_packets: usize,
    refused: bool,
}

/// Deterministic synthetic trace generator. See the module documentation.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    rng: StdRng,
    next_id: u64,
    now_ns: u64,
    /// mean gap between packets given the offered load and size distribution.
    mean_gap_ns: f64,
}

impl TraceGenerator {
    /// Create a generator from a configuration.
    pub fn new(cfg: TraceConfig) -> TraceGenerator {
        let rng = StdRng::seed_from_u64(cfg.seed);
        // bits per packet / bits per ns  = ns per packet
        let bits_per_pkt = (cfg.median_packet_size as f64) * 8.0;
        let gbps = cfg.offered_load_gbps.max(0.01);
        let mean_gap_ns = bits_per_pkt / gbps; // gbps == bits per ns
        TraceGenerator {
            cfg,
            rng,
            next_id: 0,
            now_ns: 0,
            mean_gap_ns,
        }
    }

    /// Generate the full trace.
    pub fn generate(mut self) -> Trace {
        let clients: Vec<Ipv4Addr> = (0..self.cfg.client_hosts.max(1))
            .map(|i| client_ip(i as u32))
            .collect();
        let servers: Vec<Ipv4Addr> = (0..self.cfg.server_hosts.max(1))
            .map(|i| server_ip(i as u32))
            .collect();

        let n_scanners = ((clients.len() as f64) * self.cfg.scanner_host_fraction).round() as usize;
        let scanner_hosts: Vec<Ipv4Addr> = clients.iter().take(n_scanners).copied().collect();

        // Build connection specs first, then interleave their packets.
        let mut specs: Vec<ConnSpec> = Vec::with_capacity(self.cfg.connections);
        for _ in 0..self.cfg.connections {
            let client = clients[self.rng.gen_range(0..clients.len())];
            let server = servers[self.rng.gen_range(0..servers.len())];
            let scanner = scanner_hosts.contains(&client);
            let app = self.pick_app();
            let refused = if scanner {
                self.rng.gen_bool(0.8)
            } else {
                self.rng.gen_bool(self.cfg.refused_fraction)
            };
            let data_packets = if refused {
                0
            } else {
                1 + self
                    .rng
                    .gen_range(0..self.cfg.mean_packets_per_connection.max(1) * 2)
            };
            let src_port = self.rng.gen_range(10_000..60_000);
            let tuple = FiveTuple::tcp(client, src_port, server, app.default_port());
            specs.push(ConnSpec {
                tuple,
                app,
                data_packets,
                refused,
            });
        }

        // Expand specs into per-connection packet lists.
        let per_conn: Vec<Vec<Packet>> = specs.iter().map(|s| self.expand(s)).collect();

        // Interleave the per-connection lists in a round-robin weighted by
        // remaining length, which yields realistic interleaving of many
        // concurrent connections while remaining deterministic.
        let mut interleaved: Vec<Packet> = Vec::new();
        let mut cursors = vec![0usize; per_conn.len()];
        let mut live: Vec<usize> = (0..per_conn.len()).collect();
        while !live.is_empty() {
            let pick = self.rng.gen_range(0..live.len());
            let conn = live[pick];
            let cursor = cursors[conn];
            interleaved.push(per_conn[conn][cursor].clone());
            cursors[conn] += 1;
            if cursors[conn] >= per_conn[conn].len() {
                live.swap_remove(pick);
            }
        }

        // Inject Trojan signatures at evenly spaced points (the paper adds the
        // signature at 11 different points in its trace).
        let mut trojan_hosts = Vec::new();
        if self.cfg.trojan_signatures > 0 {
            let n = self.cfg.trojan_signatures;
            let spacing = (interleaved.len() / (n + 1)).max(1);
            let mut insert_at: Vec<usize> = (1..=n).map(|i| i * spacing).collect();
            // Insert from the back so earlier indices stay valid.
            insert_at.reverse();
            for (i, pos) in insert_at.into_iter().enumerate() {
                let host = trojan_ip(i as u32);
                trojan_hosts.push(host);
                let server = servers[self.rng.gen_range(0..servers.len())];
                let sig = self.trojan_signature(host, server);
                let pos = pos.min(interleaved.len());
                interleaved.splice(pos..pos, sig);
            }
            trojan_hosts.reverse();
        }

        // Assign ids and arrival timestamps in final order.
        let mut packets = interleaved;
        for p in packets.iter_mut() {
            p.id = PacketId(self.next_id);
            self.next_id += 1;
            let jitter = self.rng.gen_range(0.5..1.5);
            self.now_ns += (self.mean_gap_ns * jitter) as u64;
            p.arrival_ns = self.now_ns;
        }

        Trace {
            packets,
            trojan_hosts,
            scanner_hosts,
        }
    }

    fn pick_app(&mut self) -> AppProtocol {
        let r: f64 = self.rng.gen();
        if r < self.cfg.trojan_background_fraction {
            // benign SSH/FTP/IRC traffic
            match self.rng.gen_range(0..3) {
                0 => AppProtocol::Ssh,
                1 => AppProtocol::Ftp(FtpTransferKind::Other),
                _ => AppProtocol::Irc,
            }
        } else if r < 0.85 {
            AppProtocol::Http
        } else if r < 0.92 {
            AppProtocol::Dns
        } else {
            AppProtocol::Other
        }
    }

    /// Expand a connection spec into its packets (no ids/timestamps yet).
    fn expand(&mut self, spec: &ConnSpec) -> Vec<Packet> {
        let mut pkts = Vec::new();
        let fwd = spec.tuple;
        let rev = spec.tuple.reversed();
        let small = 64u32;
        // SYN
        pkts.push(
            Packet::builder()
                .tuple(fwd)
                .direction(Direction::FromInitiator)
                .flags(TcpFlags::SYN)
                .len(small)
                .app(spec.app)
                .build(),
        );
        if spec.refused {
            // RST from the responder; connection never established.
            pkts.push(
                Packet::builder()
                    .tuple(rev)
                    .direction(Direction::FromResponder)
                    .flags(TcpFlags::RST)
                    .len(small)
                    .app(spec.app)
                    .build(),
            );
            return pkts;
        }
        // SYN-ACK, ACK
        pkts.push(
            Packet::builder()
                .tuple(rev)
                .direction(Direction::FromResponder)
                .flags(TcpFlags::SYN_ACK)
                .len(small)
                .app(spec.app)
                .build(),
        );
        pkts.push(
            Packet::builder()
                .tuple(fwd)
                .direction(Direction::FromInitiator)
                .flags(TcpFlags::ACK)
                .len(small)
                .app(spec.app)
                .build(),
        );
        // Data packets, mostly server->client for downloads.
        for _ in 0..spec.data_packets {
            let from_server = self.rng.gen_bool(0.7);
            let size = self.sample_size();
            let (tuple, dir) = if from_server {
                (rev, Direction::FromResponder)
            } else {
                (fwd, Direction::FromInitiator)
            };
            pkts.push(
                Packet::builder()
                    .tuple(tuple)
                    .direction(dir)
                    .flags(TcpFlags::ACK | TcpFlags::PSH)
                    .len(size)
                    .app(spec.app)
                    .build(),
            );
        }
        // FIN from the initiator, FIN-ACK back.
        pkts.push(
            Packet::builder()
                .tuple(fwd)
                .direction(Direction::FromInitiator)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .len(small)
                .app(spec.app)
                .build(),
        );
        pkts.push(
            Packet::builder()
                .tuple(rev)
                .direction(Direction::FromResponder)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .len(small)
                .app(spec.app)
                .build(),
        );
        pkts
    }

    /// Sample a packet size with the configured median: a bimodal mix of
    /// small control packets and near-MTU data packets, tuned so the median
    /// matches `median_packet_size`.
    fn sample_size(&mut self) -> u32 {
        let median = self.cfg.median_packet_size;
        if median >= 1000 {
            // mostly full-size packets
            if self.rng.gen_bool(0.8) {
                self.rng
                    .gen_range(median.saturating_sub(100)..=1500.min(median + 66))
            } else {
                self.rng.gen_range(64..600)
            }
        } else {
            // mostly small packets
            if self.rng.gen_bool(0.8) {
                self.rng.gen_range(64..=median + 200)
            } else {
                self.rng.gen_range(1000..1500)
            }
        }
    }

    /// Build the packets of one Trojan signature for `host`:
    /// SSH connection, FTP downloads of HTML/ZIP/EXE, then IRC activity —
    /// in exactly that order (the order is what the detector keys on).
    fn trojan_signature(&mut self, host: Ipv4Addr, server: Ipv4Addr) -> Vec<Packet> {
        let mut pkts = Vec::new();
        let mini_conn = |gen: &mut Self, app: AppProtocol, data: usize| {
            let sport = gen.rng.gen_range(10_000..60_000);
            let spec = ConnSpec {
                tuple: FiveTuple::tcp(host, sport, server, app.default_port()),
                app,
                data_packets: data,
                refused: false,
            };
            gen.expand(&spec)
        };
        pkts.extend(mini_conn(self, AppProtocol::Ssh, 4));
        pkts.extend(mini_conn(self, AppProtocol::Ftp(FtpTransferKind::Html), 3));
        pkts.extend(mini_conn(self, AppProtocol::Ftp(FtpTransferKind::Zip), 3));
        pkts.extend(mini_conn(self, AppProtocol::Ftp(FtpTransferKind::Exe), 3));
        pkts.extend(mini_conn(self, AppProtocol::Irc, 5));
        pkts
    }
}

/// Campus-side client address (10.1.x.y).
pub fn client_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 1, ((i >> 8) & 0xff) as u8, (i & 0xff) as u8)
}

/// EC2-side server address (54.0.x.y).
pub fn server_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(54, 0, ((i >> 8) & 0xff) as u8, (i & 0xff) as u8)
}

/// Address of the i-th injected Trojan host (10.66.x.y), disjoint from the
/// normal client range so experiments can identify them unambiguously.
pub fn trojan_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 66, ((i >> 8) & 0xff) as u8, (i & 0xff) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceGenerator::new(TraceConfig::small(7)).generate();
        let b = TraceGenerator::new(TraceConfig::small(7)).generate();
        assert_eq!(a.packets, b.packets);
        let c = TraceGenerator::new(TraceConfig::small(8)).generate();
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn arrivals_monotonic_and_ids_sequential() {
        let t = TraceGenerator::new(TraceConfig::small(1)).generate();
        assert!(!t.is_empty());
        for (i, w) in t.packets.windows(2).enumerate() {
            assert!(
                w[0].arrival_ns <= w[1].arrival_ns,
                "arrival order violated at {i}"
            );
        }
        for (i, p) in t.packets.iter().enumerate() {
            assert_eq!(p.id.0, i as u64);
        }
    }

    #[test]
    fn median_size_tracks_config() {
        let big = TraceGenerator::new(TraceConfig {
            median_packet_size: 1434,
            ..TraceConfig::small(3)
        })
        .generate()
        .stats();
        let small = TraceGenerator::new(TraceConfig {
            median_packet_size: 368,
            ..TraceConfig::small(3)
        })
        .generate()
        .stats();
        assert!(big.median_packet_size > small.median_packet_size);
    }

    #[test]
    fn connection_count_close_to_config() {
        let cfg = TraceConfig::small(5);
        let want = cfg.connections;
        let stats = TraceGenerator::new(cfg).generate().stats();
        // Each spec creates exactly one connection; trojans add a handful more.
        assert!(stats.connections >= want, "{} < {want}", stats.connections);
        assert!(stats.connections <= want + 16);
    }

    #[test]
    fn trojan_signatures_present_and_ordered() {
        let cfg = TraceConfig::small(9).with_trojans(3);
        let t = TraceGenerator::new(cfg).generate();
        assert_eq!(t.trojan_hosts.len(), 3);
        for host in &t.trojan_hosts {
            // For each trojan host the SSH conn must precede the FTP EXE
            // transfer which must precede IRC.
            let mut ssh = None;
            let mut exe = None;
            let mut irc = None;
            for (i, p) in t.packets.iter().enumerate() {
                if p.initiator() != *host {
                    continue;
                }
                match p.app {
                    AppProtocol::Ssh if ssh.is_none() => ssh = Some(i),
                    AppProtocol::Ftp(FtpTransferKind::Exe) if exe.is_none() => exe = Some(i),
                    AppProtocol::Irc if irc.is_none() => irc = Some(i),
                    _ => {}
                }
            }
            let (s, e, i) = (ssh.unwrap(), exe.unwrap(), irc.unwrap());
            assert!(s < e && e < i, "signature order broken: {s} {e} {i}");
        }
    }

    #[test]
    fn scanner_hosts_mostly_refused() {
        let cfg = TraceConfig {
            connections: 400,
            ..TraceConfig::small(11)
        }
        .with_scanners(0.25);
        let t = TraceGenerator::new(cfg).generate();
        assert!(!t.scanner_hosts.is_empty());
        let mut refused = 0usize;
        let mut attempts = 0usize;
        for p in &t.packets {
            if t.scanner_hosts.contains(&p.initiator()) {
                if p.is_connection_attempt() {
                    attempts += 1;
                }
                if p.flags.rst() {
                    refused += 1;
                }
            }
        }
        assert!(attempts > 0);
        assert!(
            refused as f64 >= attempts as f64 * 0.5,
            "{refused}/{attempts}"
        );
    }

    #[test]
    fn load_fraction_scales_arrival_rate() {
        let full = TraceGenerator::new(TraceConfig::small(13).with_load_fraction(1.0))
            .generate()
            .stats();
        let half = TraceGenerator::new(TraceConfig::small(13).with_load_fraction(0.5))
            .generate()
            .stats();
        // Same packets, half the load => roughly double the duration.
        assert!(half.duration_ns > full.duration_ns * 3 / 2);
        assert!(full.offered_gbps() > half.offered_gbps());
    }

    #[test]
    fn trace2_like_scales() {
        let t = TraceGenerator::new(TraceConfig::trace2_like(0.001)).generate();
        let s = t.stats();
        assert!(s.connections >= 150, "got {}", s.connections);
        assert!(s.median_packet_size > 1000);
    }
}
