//! Property-based tests for the packet substrate.

use chc_packet::{wire, Direction, FiveTuple, FlowKey, Packet, Protocol, Scope, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Icmp)
    ]
}

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        arb_protocol(),
    )
        .prop_map(|(s, d, sp, dp, proto)| {
            // ICMP has no transport ports; the wire codec does not carry them.
            let (sp, dp) = if proto == Protocol::Icmp {
                (0, 0)
            } else {
                (sp, dp)
            };
            FiveTuple {
                src_ip: Ipv4Addr::from(s),
                dst_ip: Ipv4Addr::from(d),
                src_port: sp,
                dst_port: dp,
                protocol: proto,
            }
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_tuple(),
        any::<u64>(),
        0u8..32,
        64u32..1500,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(tuple, id, flags, len, from_init, arrival)| {
            Packet::builder()
                .id(id)
                .tuple(tuple)
                .direction(if from_init {
                    Direction::FromInitiator
                } else {
                    Direction::FromResponder
                })
                .flags(TcpFlags(flags))
                .len(len)
                .arrival_ns(arrival)
                .build()
        })
}

proptest! {
    /// FlowKey embeds the 5-tuple bijectively.
    #[test]
    fn flow_key_round_trips(tuple in arb_tuple()) {
        prop_assert_eq!(FlowKey::from_tuple(&tuple).to_tuple(), tuple);
    }

    /// The bidirectional key is invariant under tuple reversal.
    #[test]
    fn bidirectional_key_symmetric(tuple in arb_tuple()) {
        prop_assert_eq!(tuple.bidirectional_key(), tuple.reversed().bidirectional_key());
    }

    /// Wire encode/decode is the identity on packets.
    #[test]
    fn wire_round_trip(pkt in arb_packet()) {
        let frame = wire::encode(&pkt);
        let back = wire::decode(&frame).unwrap();
        prop_assert_eq!(back, pkt);
    }

    /// Every scope maps the two directions of a connection to the same key,
    /// so scope-aware partitioning never splits a connection's state.
    #[test]
    fn scopes_direction_agnostic(pkt in arb_packet()) {
        let mut rev = pkt.clone();
        rev.tuple = pkt.tuple.reversed();
        rev.direction = pkt.direction.reverse();
        for scope in Scope::all() {
            prop_assert_eq!(scope.key_of(&pkt), scope.key_of(&rev));
        }
    }

    /// Stable hashes are deterministic.
    #[test]
    fn stable_hash_deterministic(pkt in arb_packet()) {
        for scope in Scope::all() {
            let k = scope.key_of(&pkt);
            prop_assert_eq!(k.stable_hash(), k.stable_hash());
        }
    }
}
