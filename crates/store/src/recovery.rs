//! Datastore failover: shared-state recovery with `TS` selection.
//!
//! §5.4 "Datastore instance" and Figure 7 of the paper. A failover store
//! instance boots from the latest checkpoint and must be rolled forward to a
//! state consistent with every NF instance's view of packet processing:
//!
//! * **Case 1** — no NF read shared state since the checkpoint: re-execute
//!   each instance's write-ahead log starting from the clocks recorded in the
//!   checkpoint's `TS`. Any interleaving yields a state reachable by the
//!   ideal NF (Theorem B.5.2), so a deterministic per-instance replay is used.
//! * **Case 2** — some NF read shared state since the checkpoint: the store
//!   must be rolled forward so that every read that already happened would
//!   have observed the same value. The algorithm selects, among the `TS`
//!   snapshots attached to reads, the one corresponding to the most recent
//!   read (not the largest clock!), initialises the read object with the
//!   value returned by that read, and re-executes each instance's log from
//!   the per-instance clocks in the selected `TS`.

use crate::key::{Clock, InstanceId};
use crate::store::{Checkpoint, StoreInstance};
use crate::wal::{ReadLogEntry, TsSnapshot, WriteAheadLog};
use std::collections::{BTreeMap, HashMap};

/// Everything the framework gathers to recover a failed store instance.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInput {
    /// Latest checkpoint taken by the failed instance.
    pub checkpoint: Checkpoint,
    /// Per-NF-instance write-ahead logs of shared-state updates issued since
    /// (at least) the checkpoint.
    pub wals: HashMap<InstanceId, WriteAheadLog>,
    /// Per-NF-instance logs of shared-state reads (value + `TS`) since the
    /// checkpoint.
    pub read_logs: HashMap<InstanceId, Vec<ReadLogEntry>>,
}

/// What recovery did, for reporting and for the Figure 14 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// `1` when no post-checkpoint reads existed, `2` otherwise.
    pub case: u8,
    /// Number of operations re-executed from write-ahead logs.
    pub replayed_ops: usize,
    /// Number of per-flow objects restored from instance caches (filled in by
    /// the caller when it also recovers per-flow state).
    pub per_flow_restored: usize,
    /// The clock of the read whose `TS` was selected (Case 2 only).
    pub selected_read_clock: Option<Clock>,
}

/// Select the `TS` snapshot to recover from, following Figure 7.
///
/// Returns `None` when no reads happened since the checkpoint (Case 1);
/// otherwise returns the selected read entry (Case 2).
pub fn select_recovery_ts<'a>(
    wals: &HashMap<InstanceId, WriteAheadLog>,
    read_logs: &'a HashMap<InstanceId, Vec<ReadLogEntry>>,
) -> Option<&'a ReadLogEntry> {
    // Gather every read entry (each carries a TS snapshot).
    let mut candidates: Vec<&ReadLogEntry> = read_logs.values().flat_map(|v| v.iter()).collect();
    if candidates.is_empty() {
        return None;
    }

    // Deterministic instance iteration order.
    let instances: BTreeMap<InstanceId, &WriteAheadLog> =
        wals.iter().map(|(k, v)| (*k, v)).collect();

    // For each instance, walk its log in reverse to find the latest update
    // whose clock appears in some remaining candidate TS; then discard
    // candidates that do not contain that clock (they cannot correspond to
    // the most recent read).
    for (_, wal) in instances {
        let found =
            wal.latest_matching(|clock| candidates.iter().any(|r| r.ts.contains_clock(clock)));
        if let Some(entry) = found {
            candidates.retain(|r| r.ts.contains_clock(entry.clock));
            if candidates.len() <= 1 {
                break;
            }
        }
    }

    // Among the remaining candidates pick the most recent read (largest read
    // clock) — they are mutually consistent at this point.
    candidates.into_iter().max_by_key(|r| r.clock)
}

/// Recover the shared state of a failed store instance.
///
/// Recovery runs object by object (the Figure 7 algorithm describes a single
/// shared object; a store instance typically holds many):
///
/// * objects that no NF read since the checkpoint are rolled forward by
///   re-executing every write-ahead-log entry issued after the clocks in the
///   checkpoint's `TS` (Case 1),
/// * objects that were read are initialised with the value of the most recent
///   read (selected by the `TS`-selection algorithm restricted to that
///   object) and rolled forward from the selected `TS` (Case 2).
///
/// Returns the recovered [`StoreInstance`] together with a report. Per-flow
/// state is *not* handled here: the framework separately re-installs it from
/// the owning instances' caches (they always hold the freshest copy,
/// Theorem B.5.1) via [`StoreInstance::install`].
pub fn recover_shared_state(input: &RecoveryInput) -> (StoreInstance, RecoveryReport) {
    let mut store = StoreInstance::new();
    store.restore(&input.checkpoint);

    // Group write-ahead-log entries and reads by canonical object.
    let mut keys: Vec<_> = input
        .wals
        .values()
        .flat_map(|w| w.entries().iter().map(|e| e.key.canonical()))
        .collect();
    keys.sort_by_key(|k| k.to_string());
    keys.dedup();

    let mut replayed = 0usize;
    let mut any_case2 = false;
    let mut selected_read_clock = None;

    for key in keys {
        // Per-instance logs restricted to this object.
        let mut wals_for_key: HashMap<InstanceId, WriteAheadLog> = HashMap::new();
        for (instance, wal) in &input.wals {
            let mut filtered = WriteAheadLog::new();
            for e in wal.entries().iter().filter(|e| e.key.canonical() == key) {
                filtered.append(e.clock, e.key.clone(), e.op.clone());
            }
            if !filtered.is_empty() {
                wals_for_key.insert(*instance, filtered);
            }
        }
        let mut reads_for_key: HashMap<InstanceId, Vec<ReadLogEntry>> = HashMap::new();
        for (instance, reads) in &input.read_logs {
            let filtered: Vec<ReadLogEntry> = reads
                .iter()
                .filter(|r| r.key.canonical() == key)
                .cloned()
                .collect();
            if !filtered.is_empty() {
                reads_for_key.insert(*instance, filtered);
            }
        }

        let selection = select_recovery_ts(&wals_for_key, &reads_for_key);
        let start_ts = match selection {
            None => TsSnapshot::new(input.checkpoint.ts.clone()),
            Some(read) => {
                any_case2 = true;
                selected_read_clock = Some(read.clock);
                store.install(&read.key, read.value.clone(), None);
                read.ts.clone()
            }
        };

        // Re-execute, per instance, every logged update on this object after
        // the clock recorded for that instance in the selected TS (or after
        // the checkpoint TS when the instance does not appear). Re-execution
        // bypasses duplicate suppression on purpose: the update log died with
        // the failed instance, and Theorems B.5.2 / B.5.3 only require the
        // replay order to be a plausible serialization.
        let instances: BTreeMap<InstanceId, &WriteAheadLog> =
            wals_for_key.iter().map(|(k, v)| (*k, v)).collect();
        for (instance, wal) in instances {
            let after = start_ts
                .clock_of(instance)
                .or_else(|| input.checkpoint.ts.get(&instance).copied());
            for entry in wal.entries_after(after) {
                let _ = store.apply(instance, &entry.key, &entry.op, Some(entry.clock));
                replayed += 1;
            }
        }
    }

    (
        store,
        RecoveryReport {
            case: if any_case2 { 2 } else { 1 },
            replayed_ops: replayed,
            per_flow_restored: 0,
            selected_read_clock,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, StateKey, VertexId};
    use crate::ops::Operation;
    use crate::value::Value;

    fn clock(n: u64) -> Clock {
        Clock::with_root(0, n)
    }

    fn key() -> StateKey {
        StateKey::shared(VertexId(0), ObjectKey::named("shared_counter"))
    }

    /// Reconstructs the scenario of Figure 7: four instances I1..I4 issue
    /// updates/reads against one shared object; the store crashes after
    /// executing a prefix; recovery must select TS18 (the most recent read).
    fn figure7_input() -> RecoveryInput {
        // The "live" store that will crash: replays the paper's order of
        // operations at the datastore (Figure 7, bottom row) up to the crash.
        let mut live = StoreInstance::new();
        let k = key();

        // Checkpoint at time t with TS19 applied? The figure's checkpoint is
        // earlier; we start from an empty checkpoint (time t) for clarity.
        let checkpoint = live.checkpoint(0);

        // Per-instance operation logs (Figure 7, top): U = increment.
        // I1: U9  U20 U15 U35
        // I2: U11 U22 U25 R27 U30
        // I3: U8  U17 R18 U23
        // I4: U13 R19 U31 U32
        let mut wals: HashMap<InstanceId, WriteAheadLog> = HashMap::new();
        let mut read_logs: HashMap<InstanceId, Vec<ReadLogEntry>> = HashMap::new();
        for (i, ops) in [
            (1u32, vec![9u64, 20, 15, 35]),
            (2, vec![11, 22, 25, 30]),
            (3, vec![8, 17, 23]),
            (4, vec![13, 31, 32]),
        ] {
            let mut wal = WriteAheadLog::new();
            for c in ops {
                wal.append(clock(c), k.clone(), Operation::Increment(1));
            }
            wals.insert(InstanceId(i), wal);
            read_logs.insert(InstanceId(i), Vec::new());
        }

        // The datastore applied, in order (Figure 7 bottom):
        // U9 U8 U13 U20 U11 R19 U22 U17 U25 U15 R27 U30 U31 R18 U23 | crash | U32 U35
        // Reads return TS snapshots:
        //   R19 -> TS19 {I1:20, I2:11, I3:8,  I4:13}
        //   R27 -> TS27 {I1:15, I2:25, I3:17, I4:13}
        //   R18 -> TS18 {I1:15, I2:30, I3:17, I4:31}
        let applied_before_crash = [9u64, 8, 13, 20, 11, 22, 17, 25, 15, 30, 31];
        let owner_of = |c: u64| match c {
            9 | 20 | 15 | 35 => InstanceId(1),
            11 | 22 | 25 | 30 => InstanceId(2),
            8 | 17 | 23 => InstanceId(3),
            _ => InstanceId(4),
        };
        let mut value_after = HashMap::new();
        for (idx, c) in applied_before_crash.iter().enumerate() {
            live.apply(owner_of(*c), &k, &Operation::Increment(1), Some(clock(*c)))
                .unwrap();
            value_after.insert(idx, live.peek(&k));
        }

        // Reads interleave at the positions shown above. Model their TS and
        // observed value per the paper's figure.
        let ts = |v: Vec<(u32, u64)>| {
            TsSnapshot::new(
                v.into_iter()
                    .map(|(i, c)| (InstanceId(i), clock(c)))
                    .collect(),
            )
        };
        read_logs
            .get_mut(&InstanceId(4))
            .unwrap()
            .push(ReadLogEntry {
                clock: clock(19),
                key: k.clone(),
                value: Value::Int(5), // after U9 U8 U13 U20 U11
                ts: ts(vec![(1, 20), (2, 11), (3, 8), (4, 13)]),
            });
        read_logs
            .get_mut(&InstanceId(2))
            .unwrap()
            .push(ReadLogEntry {
                clock: clock(27),
                key: k.clone(),
                value: Value::Int(9), // after ... U15
                ts: ts(vec![(1, 15), (2, 25), (3, 17), (4, 13)]),
            });
        read_logs
            .get_mut(&InstanceId(3))
            .unwrap()
            .push(ReadLogEntry {
                clock: clock(18),
                key: k.clone(),
                value: Value::Int(11), // after ... U31 (most recent read before crash)
                ts: ts(vec![(1, 15), (2, 30), (3, 17), (4, 31)]),
            });

        RecoveryInput {
            checkpoint,
            wals,
            read_logs,
        }
    }

    #[test]
    fn figure7_selects_ts18() {
        let input = figure7_input();
        let selected = select_recovery_ts(&input.wals, &input.read_logs).unwrap();
        assert_eq!(selected.clock, clock(18));
        assert_eq!(selected.ts.clock_of(InstanceId(1)), Some(clock(15)));
        assert_eq!(selected.ts.clock_of(InstanceId(4)), Some(clock(31)));
    }

    #[test]
    fn figure7_recovery_replays_the_right_suffix() {
        let input = figure7_input();
        let (store, report) = recover_shared_state(&input);
        assert_eq!(report.case, 2);
        assert_eq!(report.selected_read_clock, Some(clock(18)));
        // The paper: from I1 replay U35; from I3 replay U23; from I4 replay
        // U32; from I2 nothing (its last op U30 is already covered by TS18).
        assert_eq!(report.replayed_ops, 3);
        // Recovered value = value read at R18 (11 increments) + 3 replayed.
        assert_eq!(store.peek(&key()), Value::Int(14));
        // The recovered state matches a no-failure execution in which every
        // instance's operations were all applied exactly once: 4+4+3+3 = 14.
        let total_ops: usize = input.wals.values().map(|w| w.len()).sum();
        assert_eq!(store.peek(&key()).as_int(), total_ops as i64);
    }

    #[test]
    fn case1_without_reads_replays_everything_after_checkpoint() {
        let k = key();
        // Build a store, checkpoint midway, keep updating, then crash.
        let mut live = StoreInstance::new();
        let mut wal1 = WriteAheadLog::new();
        let mut wal2 = WriteAheadLog::new();
        for c in 1..=4u64 {
            live.apply(InstanceId(1), &k, &Operation::Increment(1), Some(clock(c)))
                .unwrap();
            wal1.append(clock(c), k.clone(), Operation::Increment(1));
        }
        let checkpoint = live.checkpoint(0);
        for c in 5..=7u64 {
            live.apply(InstanceId(1), &k, &Operation::Increment(1), Some(clock(c)))
                .unwrap();
            wal1.append(clock(c), k.clone(), Operation::Increment(1));
        }
        for c in 8..=9u64 {
            live.apply(InstanceId(2), &k, &Operation::Increment(1), Some(clock(c)))
                .unwrap();
            wal2.append(clock(c), k.clone(), Operation::Increment(1));
        }
        let expected = live.peek(&k);

        let mut wals = HashMap::new();
        wals.insert(InstanceId(1), wal1);
        wals.insert(InstanceId(2), wal2);
        let input = RecoveryInput {
            checkpoint,
            wals,
            read_logs: HashMap::new(),
        };
        let (recovered, report) = recover_shared_state(&input);
        assert_eq!(report.case, 1);
        assert_eq!(report.replayed_ops, 5);
        assert_eq!(recovered.peek(&k), expected);
    }

    #[test]
    fn empty_input_recovers_empty_store() {
        let (store, report) = recover_shared_state(&RecoveryInput::default());
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(report.case, 1);
        assert!(store.is_empty());
    }
}
