//! The append-only flat-file shard engine.
//!
//! Layout (timestore-style ordered appends, ysr-style keyspace prefixes),
//! one directory per shard:
//!
//! ```text
//! shard-3/
//!   ckpt-00000007.img   # newest checkpoint image (full durable image)
//!   seg-00000008.log    # active journal segment: records past the image
//! ```
//!
//! * **Records** are appended in execution order, each framed as
//!   `[u32 len][u32 fnv1a(payload)][payload]` and payload-prefixed with the
//!   canonical keyspace string it touches, so a segment is an ordered,
//!   prefix-scannable history. A torn tail (crash mid-write) fails the
//!   length or checksum test and is dropped at recovery; on reopen the
//!   active segment is truncated back to its last intact record so new
//!   appends can never hide behind garbage.
//! * **All keys and their newest record offsets stay resident in memory**
//!   (`index`): reads are served by the live [`StoreInstance`]; the offsets
//!   exist so tooling can seek straight to a key's latest durable record
//!   without scanning.
//! * **Checkpoint compaction**: every `checkpoint_interval` journaled
//!   records (or on an explicit `checkpoint_shard`) the engine writes the
//!   full durable image (`ckpt-<seq>.img`, atomically via rename), rotates
//!   to a fresh segment and deletes everything older. Recovery therefore
//!   replays only the records past the newest image — O(delta in
//!   ops-since-checkpoint), never O(history).
//!
//! `std::fs` only; the container has no crates.io access.

use super::codec::{fnv32, Dec, Enc};
use super::{BackendKind, JournalRecord, ShardRecoveryStats, StorageBackend};
use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::{CustomOpFn, Operation};
use crate::store::{DurableImage, StoreInstance};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default compaction cadence, in journaled records. High enough that the
/// small conformance-suite scenarios behave byte-for-byte like the memory
/// engine (no auto-checkpoint fires mid-test), low enough that long runs
/// keep recovery O(delta).
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 1024;

/// A decoded journal record: [`JournalRecord`] minus the custom-op function
/// pointer, which is not serializable and is re-resolved from the resident
/// registration table during replay.
enum PlainRecord {
    Apply {
        requester: InstanceId,
        key: StateKey,
        op: Operation,
        clock: Option<Clock>,
    },
    Callback {
        key: StateKey,
        instance: InstanceId,
    },
    CustomOp {
        name: String,
    },
    Reassign {
        from: InstanceId,
        to: InstanceId,
    },
    ApplyBatch {
        requester: InstanceId,
        ops: Vec<(StateKey, Operation, Option<Clock>)>,
    },
}

/// One durable journal segment on disk.
struct Segment {
    seq: u64,
    /// Bytes of intact records (the file may briefly be longer mid-append).
    bytes: u64,
}

/// Append-only flat-file engine. See the module docs for the layout.
pub struct AppendOnlyBackend {
    instance: StoreInstance,
    dir: PathBuf,
    enabled: bool,
    checkpoint_interval: usize,
    /// Sealed + active segments, ascending by `seq`; the last is active.
    segments: Vec<Segment>,
    /// The active segment, open for append.
    active: File,
    /// Records appended since the newest checkpoint image.
    pending_records: usize,
    /// Sequence of the newest checkpoint image, and its size.
    ckpt_seq: Option<u64>,
    ckpt_bytes: u64,
    /// Canonical key → (segment seq, record offset) of the newest durable
    /// record touching that key. Resident, rebuilt on open, cleared on
    /// compaction (older history lives in the image).
    index: HashMap<String, (u64, u64)>,
    /// Resident custom-op registrations, re-installed on every recovery
    /// (function pointers cannot be persisted).
    custom_ops: Vec<(String, CustomOpFn)>,
}

impl AppendOnlyBackend {
    /// Open (or create) the engine over `dir`. Existing durable state is
    /// scanned — newest checkpoint located, segment indices rebuilt, a torn
    /// active-segment tail truncated — but the in-memory instance starts
    /// empty: call [`StorageBackend::recover`] to load it, exactly as a
    /// restarted shard would.
    pub fn open(dir: impl Into<PathBuf>, checkpoint_interval: usize) -> AppendOnlyBackend {
        let dir = dir.into();
        fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));

        // Scan the directory for checkpoint images and segments.
        let mut ckpts: Vec<u64> = Vec::new();
        let mut segs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display())) {
            let name = match entry {
                Ok(e) => e.file_name().to_string_lossy().into_owned(),
                Err(_) => continue,
            };
            if let Some(seq) = parse_seq(&name, "ckpt-", ".img") {
                ckpts.push(seq);
            } else if let Some(seq) = parse_seq(&name, "seg-", ".log") {
                segs.push(seq);
            }
        }
        let ckpt_seq = ckpts.iter().copied().max();
        let ckpt_bytes = ckpt_seq
            .and_then(|seq| fs::metadata(ckpt_path(&dir, seq)).ok())
            .map(|m| m.len())
            .unwrap_or(0);
        // Compaction leftovers (a crash between image rename and deletion)
        // are finished off here; stale images likewise.
        for &seq in &ckpts {
            if Some(seq) != ckpt_seq {
                let _ = fs::remove_file(ckpt_path(&dir, seq));
            }
        }
        segs.retain(|&seq| {
            let live = ckpt_seq.is_none_or(|c| seq > c);
            if !live {
                let _ = fs::remove_file(seg_path(&dir, seq));
            }
            live
        });
        segs.sort_unstable();

        // Re-scan live segments: rebuild the key index and the pending
        // count, and find each segment's intact length.
        let mut index = HashMap::new();
        let mut pending_records = 0usize;
        let mut segments = Vec::new();
        for &seq in &segs {
            let (records, bytes) = scan_segment(&seg_path(&dir, seq));
            for (offset, record) in &records {
                for key in record_keys(record) {
                    index.insert(key, (seq, *offset));
                }
            }
            pending_records += records.len();
            segments.push(Segment { seq, bytes });
        }
        if segments.is_empty() {
            let seq = ckpt_seq.map_or(0, |c| c + 1);
            segments.push(Segment { seq, bytes: 0 });
        }
        let active_meta = segments.last().expect("at least one segment");
        let path = seg_path(&dir, active_meta.seq);
        // Truncate a torn tail so future appends land after the last intact
        // record instead of behind it.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(false)
            .open(&path)
            .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
        file.set_len(active_meta.bytes)
            .unwrap_or_else(|e| panic!("truncate {}: {e}", path.display()));
        let active = OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("append {}: {e}", path.display()));
        drop(file);

        AppendOnlyBackend {
            instance: StoreInstance::new(),
            dir,
            enabled: false,
            checkpoint_interval: checkpoint_interval.max(1),
            segments,
            active,
            pending_records,
            ckpt_seq,
            ckpt_bytes,
            index,
            custom_ops: Vec::new(),
        }
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the segment currently being appended to (crash-injection
    /// tests truncate this file at arbitrary offsets).
    pub fn active_segment_path(&self) -> PathBuf {
        seg_path(&self.dir, self.segments.last().expect("active segment").seq)
    }

    /// The resident key → (segment, offset) map's view of one canonical key.
    pub fn offset_of(&self, key: &StateKey) -> Option<(u64, u64)> {
        self.index.get(&key.canonical().to_string()).copied()
    }

    fn write_frame(file: &mut File, path: &Path, payload: &[u8]) -> u64 {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        file.write_all(&frame)
            .unwrap_or_else(|e| panic!("append {}: {e}", path.display()));
        file.flush()
            .unwrap_or_else(|e| panic!("flush {}: {e}", path.display()));
        frame.len() as u64
    }

    fn resolve_custom(table: &[(String, CustomOpFn)], name: &str) -> Option<CustomOpFn> {
        table.iter().find(|(n, _)| n == name).map(|(_, f)| *f)
    }

    fn replay_plain(
        table: &[(String, CustomOpFn)],
        instance: &mut StoreInstance,
        record: PlainRecord,
        stats: &mut ShardRecoveryStats,
    ) {
        match record {
            PlainRecord::Apply {
                requester,
                key,
                op,
                clock,
            } => {
                let _ = instance.apply(requester, &key, &op, clock);
                stats.replayed_ops += 1;
            }
            PlainRecord::Callback { key, instance: who } => {
                instance.register_callback(&key, who);
                stats.reinstalled_records += 1;
            }
            PlainRecord::CustomOp { name } => {
                if let Some(f) = Self::resolve_custom(table, &name) {
                    instance.register_custom_op(&name, f);
                }
                stats.reinstalled_records += 1;
            }
            PlainRecord::Reassign { from, to } => {
                instance.reassign_owner(from, to);
                stats.reinstalled_records += 1;
            }
            PlainRecord::ApplyBatch { requester, ops } => {
                for (key, op, clock) in ops {
                    let _ = instance.apply(requester, &key, &op, clock);
                    stats.replayed_ops += 1;
                }
            }
        }
    }

    /// Delete every durable file and reset to one fresh empty segment.
    fn wipe_durable(&mut self) {
        for seg in &self.segments {
            let _ = fs::remove_file(seg_path(&self.dir, seg.seq));
        }
        if let Some(seq) = self.ckpt_seq.take() {
            let _ = fs::remove_file(ckpt_path(&self.dir, seq));
        }
        self.ckpt_bytes = 0;
        self.pending_records = 0;
        self.index.clear();
        let next = self.segments.last().map_or(0, |s| s.seq + 1);
        self.segments = vec![Segment {
            seq: next,
            bytes: 0,
        }];
        let path = seg_path(&self.dir, next);
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    }
}

impl StorageBackend for AppendOnlyBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::AppendOnly
    }

    fn instance(&self) -> &StoreInstance {
        &self.instance
    }

    fn instance_mut(&mut self) -> &mut StoreInstance {
        &mut self.instance
    }

    fn set_journaling(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.wipe_durable();
        }
    }

    fn journaling(&self) -> bool {
        self.enabled
    }

    fn journal_len(&self) -> usize {
        self.pending_records
    }

    fn append(&mut self, record: &JournalRecord) {
        if !self.enabled {
            return;
        }
        let (payload, keys) = encode_record(record);
        let seg = self.segments.last_mut().expect("active segment");
        let offset = seg.bytes;
        let seq = seg.seq;
        let path = seg_path(&self.dir, seq);
        let written = Self::write_frame(&mut self.active, &path, &payload);
        self.segments.last_mut().expect("active segment").bytes = offset + written;
        for key in keys {
            self.index.insert(key, (seq, offset));
        }
        self.pending_records += 1;
        // Periodic compaction: fold the journal into a checkpoint image so
        // recovery work stays proportional to ops-since-checkpoint.
        if self.pending_records >= self.checkpoint_interval {
            self.checkpoint();
        }
    }

    fn register_custom_op(&mut self, name: &str, f: CustomOpFn) {
        self.instance.register_custom_op(name, f);
        self.custom_ops.retain(|(n, _)| n != name);
        self.custom_ops.push((name.to_string(), f));
        let record = JournalRecord::CustomOp {
            name: name.to_string(),
            f,
        };
        self.append(&record);
    }

    fn checkpoint(&mut self) -> usize {
        let image = self.instance.durable_image();
        let captured = image.entries.len();
        let payload = encode_image(&image);
        let seq = self.segments.last().expect("active segment").seq;
        // Write the image to a temp name and rename: the newest intact
        // `ckpt-*.img` is the recovery anchor, so it must appear atomically.
        let tmp = self.dir.join(format!("ckpt-{seq:08}.tmp"));
        let final_path = ckpt_path(&self.dir, seq);
        let mut file =
            File::create(&tmp).unwrap_or_else(|e| panic!("create {}: {e}", tmp.display()));
        let written = Self::write_frame(&mut file, &tmp, &payload);
        drop(file);
        fs::rename(&tmp, &final_path)
            .unwrap_or_else(|e| panic!("rename {}: {e}", final_path.display()));

        // Rotate to a fresh segment, then compact everything the image
        // supersedes: all segments (the image covers through the active
        // one's end) and the previous image.
        let old_ckpt = self.ckpt_seq.replace(seq);
        self.ckpt_bytes = written;
        let next = seq + 1;
        for seg in &self.segments {
            let _ = fs::remove_file(seg_path(&self.dir, seg.seq));
        }
        if let Some(old) = old_ckpt {
            if old != seq {
                let _ = fs::remove_file(ckpt_path(&self.dir, old));
            }
        }
        self.segments = vec![Segment {
            seq: next,
            bytes: 0,
        }];
        let path = seg_path(&self.dir, next);
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
        self.pending_records = 0;
        self.index.clear();
        captured
    }

    fn crash(&mut self) {
        self.instance = StoreInstance::new();
    }

    fn recover(&mut self) -> ShardRecoveryStats {
        let mut stats = ShardRecoveryStats::default();
        let table = self.custom_ops.clone();
        let mut instance = match self.ckpt_seq {
            Some(seq) => {
                let path = ckpt_path(&self.dir, seq);
                let image = read_image(&path).unwrap_or_default();
                stats.restored_from_checkpoint = image.entries.len();
                let resolve = |name: &str| Self::resolve_custom(&table, name);
                StoreInstance::from_durable_image(image, &resolve)
            }
            None => StoreInstance::new(),
        };
        // Resident registrations always survive, image or not (covers ops
        // registered while journaling was off).
        for (name, f) in &table {
            instance.register_custom_op(name, *f);
        }
        for seg in &self.segments {
            let (records, _) = scan_segment(&seg_path(&self.dir, seg.seq));
            for (_, record) in records {
                Self::replay_plain(&table, &mut instance, record, &mut stats);
            }
        }
        self.instance = instance;
        stats
    }

    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn durable_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum::<u64>() + self.ckpt_bytes
    }
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.log"))
}

fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:08}.img"))
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Decode every intact record of a segment. Returns the records with their
/// frame offsets, plus the byte length of the intact prefix (a torn tail —
/// short frame, failed checksum, or undecodable payload — ends the scan).
fn scan_segment(path: &Path) -> (Vec<(u64, PlainRecord)>, u64) {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_end(&mut buf).is_err() {
                return (Vec::new(), 0);
            }
        }
        Err(_) => return (Vec::new(), 0),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
            break;
        };
        if end > buf.len() {
            break;
        }
        let payload = &buf[pos + 8..end];
        if fnv32(payload) != sum {
            break;
        }
        let Some(record) = decode_record(payload) else {
            break;
        };
        records.push((pos as u64, record));
        pos = end;
    }
    (records, pos as u64)
}

/// Read and decode a framed checkpoint image.
fn read_image(path: &Path) -> Option<DurableImage> {
    let mut buf = Vec::new();
    File::open(path).ok()?.read_to_end(&mut buf).ok()?;
    if buf.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    let sum = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = buf.get(8..8 + len)?;
    if fnv32(payload) != sum {
        return None;
    }
    decode_image(payload)
}

/// Encode one journal record. The payload leads with its canonical keyspace
/// string(s) so segments are prefix-scannable; returns the touched keys for
/// the resident offset index.
fn encode_record(record: &JournalRecord) -> (Vec<u8>, Vec<String>) {
    let mut e = Enc::new();
    match record {
        JournalRecord::Apply {
            requester,
            key,
            op,
            clock,
        } => {
            e.u8(0);
            let canon = key.canonical().to_string();
            e.str(&canon);
            e.u32(requester.0);
            e.state_key(key);
            e.operation(op);
            e.opt_clock(*clock);
            (e.into_bytes(), vec![canon])
        }
        JournalRecord::Callback { key, instance } => {
            e.u8(1);
            let canon = key.canonical().to_string();
            e.str(&canon);
            e.u32(instance.0);
            e.state_key(key);
            (e.into_bytes(), vec![canon])
        }
        JournalRecord::CustomOp { name, .. } => {
            e.u8(2);
            e.str(name);
            (e.into_bytes(), Vec::new())
        }
        JournalRecord::Reassign { from, to } => {
            e.u8(3);
            e.u32(from.0);
            e.u32(to.0);
            (e.into_bytes(), Vec::new())
        }
        JournalRecord::ApplyBatch { requester, ops } => {
            e.u8(4);
            e.u32(requester.0);
            e.u32(ops.len() as u32);
            let mut keys = Vec::with_capacity(ops.len());
            for (key, op, clock) in ops {
                keys.push(key.canonical().to_string());
                e.state_key(key);
                e.operation(op);
                e.opt_clock(*clock);
            }
            (e.into_bytes(), keys)
        }
    }
}

fn decode_record(payload: &[u8]) -> Option<PlainRecord> {
    let mut d = Dec::new(payload);
    let record = match d.u8()? {
        0 => {
            let _canon = d.str()?;
            PlainRecord::Apply {
                requester: InstanceId(d.u32()?),
                key: d.state_key()?,
                op: d.operation()?,
                clock: d.opt_clock()?,
            }
        }
        1 => {
            let _canon = d.str()?;
            PlainRecord::Callback {
                instance: InstanceId(d.u32()?),
                key: d.state_key()?,
            }
        }
        2 => PlainRecord::CustomOp { name: d.str()? },
        3 => PlainRecord::Reassign {
            from: InstanceId(d.u32()?),
            to: InstanceId(d.u32()?),
        },
        4 => {
            let requester = InstanceId(d.u32()?);
            let n = d.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ops.push((d.state_key()?, d.operation()?, d.opt_clock()?));
            }
            PlainRecord::ApplyBatch { requester, ops }
        }
        _ => return None,
    };
    d.is_exhausted().then_some(record)
}

fn encode_image(image: &DurableImage) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(image.entries.len() as u32);
    for (key, value, owner) in &image.entries {
        e.state_key(key);
        e.value(value);
        match owner {
            None => e.u8(0),
            Some(o) => {
                e.u8(1);
                e.u32(o.0);
            }
        }
    }
    e.u32(image.ts.len() as u32);
    for (instance, clock) in &image.ts {
        e.u32(instance.0);
        e.u64(clock.0);
    }
    e.u32(image.update_log.len() as u32);
    for (key, clock, ops) in &image.update_log {
        e.state_key(key);
        e.u64(clock.0);
        e.u32(ops.len() as u32);
        for (op, returned) in ops {
            e.operation(op);
            e.value(returned);
        }
    }
    e.u32(image.nondet_log.len() as u32);
    for (clock, slot, value) in &image.nondet_log {
        e.u64(clock.0);
        e.u32(*slot);
        e.value(value);
    }
    e.u32(image.callbacks.len() as u32);
    for (key, who) in &image.callbacks {
        e.state_key(key);
        e.u32(who.len() as u32);
        for i in who {
            e.u32(i.0);
        }
    }
    e.u32(image.custom_op_names.len() as u32);
    for name in &image.custom_op_names {
        e.str(name);
    }
    e.u8(u8::from(image.failed));
    e.u64(image.ops_applied);
    e.u64(image.ops_emulated);
    e.into_bytes()
}

fn decode_image(payload: &[u8]) -> Option<DurableImage> {
    let mut d = Dec::new(payload);
    let mut image = DurableImage::default();
    for _ in 0..d.u32()? {
        let key = d.state_key()?;
        let value = d.value()?;
        let owner = match d.u8()? {
            0 => None,
            1 => Some(InstanceId(d.u32()?)),
            _ => return None,
        };
        image.entries.push((key, value, owner));
    }
    for _ in 0..d.u32()? {
        image.ts.push((InstanceId(d.u32()?), Clock(d.u64()?)));
    }
    for _ in 0..d.u32()? {
        let key = d.state_key()?;
        let clock = Clock(d.u64()?);
        let mut ops = Vec::new();
        for _ in 0..d.u32()? {
            ops.push((d.operation()?, d.value()?));
        }
        image.update_log.push((key, clock, ops));
    }
    for _ in 0..d.u32()? {
        image
            .nondet_log
            .push((Clock(d.u64()?), d.u32()?, d.value()?));
    }
    for _ in 0..d.u32()? {
        let key = d.state_key()?;
        let mut who = Vec::new();
        for _ in 0..d.u32()? {
            who.push(InstanceId(d.u32()?));
        }
        image.callbacks.push((key, who));
    }
    for _ in 0..d.u32()? {
        image.custom_op_names.push(d.str()?);
    }
    image.failed = d.u8()? != 0;
    image.ops_applied = d.u64()?;
    image.ops_emulated = d.u64()?;
    d.is_exhausted().then_some(image)
}

/// Canonical keys a decoded record touches (index rebuild on open).
fn record_keys(record: &PlainRecord) -> Vec<String> {
    match record {
        PlainRecord::Apply { key, .. } | PlainRecord::Callback { key, .. } => {
            vec![key.canonical().to_string()]
        }
        PlainRecord::CustomOp { .. } | PlainRecord::Reassign { .. } => Vec::new(),
        PlainRecord::ApplyBatch { ops, .. } => ops
            .iter()
            .map(|(k, _, _)| k.canonical().to_string())
            .collect(),
    }
}

/// A process-unique scratch directory under the workspace `target/`,
/// removed (recursively, best-effort) on drop — so repeated `cargo test`
/// runs never accumulate segments.
pub struct ScratchDir {
    path: PathBuf,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

impl ScratchDir {
    /// Create `target/chc-store-scratch/<pid>-<seq>-<label>/`.
    pub fn new(label: &str) -> ScratchDir {
        let path = target_root().join("chc-store-scratch").join(format!(
            "{}-{}-{label}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
        ScratchDir { path }
    }

    /// The scratch directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// The workspace `target/` directory: `CARGO_TARGET_DIR` if set, else the
/// nearest ancestor's existing `target/`, else a `target/` under the current
/// directory.
fn target_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    for _ in 0..6 {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate;
        }
        if !dir.pop() {
            break;
        }
    }
    cwd.join("target")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, VertexId};
    use crate::value::Value;

    fn key(name: &str) -> StateKey {
        StateKey::shared(VertexId(0), ObjectKey::named(name))
    }

    fn apply(b: &mut AppendOnlyBackend, key: &StateKey, op: Operation, clock: Option<Clock>) {
        let requester = InstanceId(1);
        let result = b.instance_mut().apply(requester, key, &op, clock);
        assert!(result.is_ok());
        b.append(&JournalRecord::Apply {
            requester,
            key: key.clone(),
            op,
            clock,
        });
    }

    #[test]
    fn journaled_writes_survive_crash_and_recover() {
        let scratch = ScratchDir::new("aob-basic");
        let mut b = AppendOnlyBackend::open(scratch.path(), DEFAULT_CHECKPOINT_INTERVAL);
        b.set_journaling(true);
        for c in 1..=10u64 {
            apply(
                &mut b,
                &key("counter"),
                Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            );
        }
        assert_eq!(b.journal_len(), 10);
        assert!(b.durable_bytes() > 0);
        assert!(b.offset_of(&key("counter")).is_some());
        b.crash();
        assert_eq!(b.instance().peek(&key("counter")), Value::None);
        let stats = b.recover();
        assert_eq!(stats.replayed_ops, 10);
        assert_eq!(b.instance().peek(&key("counter")), Value::Int(10));
        // The duplicate-suppression log came back with the state.
        let r = b
            .instance_mut()
            .apply(
                InstanceId(1),
                &key("counter"),
                &Operation::Increment(1),
                Some(Clock::with_root(0, 7)),
            )
            .unwrap();
        assert!(r.outcome.emulated);
    }

    #[test]
    fn auto_compaction_bounds_journal_and_restart_work() {
        let scratch = ScratchDir::new("aob-compact");
        let mut b = AppendOnlyBackend::open(scratch.path(), 8);
        b.set_journaling(true);
        for c in 1..=30u64 {
            apply(
                &mut b,
                &key("k"),
                Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            );
        }
        // Auto-checkpoints fired at 8, 16 and 24 appends: the journal holds
        // only the suffix, and exactly one segment + one image remain.
        assert_eq!(b.journal_len(), 30 % 8);
        assert_eq!(b.segment_count(), 1);
        b.crash();
        let stats = b.recover();
        assert_eq!(
            stats.replayed_ops,
            30 % 8,
            "O(delta) replay, not O(history)"
        );
        assert_eq!(stats.restored_from_checkpoint, 1);
        assert_eq!(b.instance().peek(&key("k")), Value::Int(30));
    }

    #[test]
    fn reopen_resumes_from_disk_and_truncates_torn_tail() {
        let scratch = ScratchDir::new("aob-reopen");
        let dir = scratch.path().to_path_buf();
        let mut b = AppendOnlyBackend::open(&dir, DEFAULT_CHECKPOINT_INTERVAL);
        b.set_journaling(true);
        for c in 1..=6u64 {
            apply(
                &mut b,
                &key("x"),
                Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            );
        }
        b.checkpoint();
        for c in 7..=9u64 {
            apply(
                &mut b,
                &key("x"),
                Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            );
        }
        let seg = b.active_segment_path();
        drop(b);
        // Tear the last record: chop 3 bytes off the segment.
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let mut b = AppendOnlyBackend::open(&dir, DEFAULT_CHECKPOINT_INTERVAL);
        assert_eq!(b.journal_len(), 2, "torn third record dropped");
        let stats = b.recover();
        assert_eq!(stats.restored_from_checkpoint, 1);
        assert_eq!(stats.replayed_ops, 2);
        // Checkpointed writes were never at risk; intact post-checkpoint
        // records replayed.
        assert_eq!(b.instance().peek(&key("x")), Value::Int(8));
        // Appends continue cleanly after the truncation point: enabling
        // journaling keeps the reopened durable state, and the new record
        // lands after the repaired tail.
        b.set_journaling(true);
        apply(
            &mut b,
            &key("x"),
            Operation::Increment(1),
            Some(Clock::with_root(0, 10)),
        );
        b.crash();
        let stats = b.recover();
        assert_eq!(stats.replayed_ops, 3);
        assert_eq!(b.instance().peek(&key("x")), Value::Int(9));
    }

    #[test]
    fn disabling_journaling_wipes_durable_state() {
        let scratch = ScratchDir::new("aob-wipe");
        let mut b = AppendOnlyBackend::open(scratch.path(), DEFAULT_CHECKPOINT_INTERVAL);
        b.set_journaling(true);
        apply(&mut b, &key("a"), Operation::Increment(1), None);
        b.checkpoint();
        apply(&mut b, &key("a"), Operation::Increment(1), None);
        assert!(b.durable_bytes() > 0);
        b.set_journaling(false);
        assert_eq!(b.durable_bytes(), 0);
        assert_eq!(b.journal_len(), 0);
        b.crash();
        let stats = b.recover();
        assert_eq!(stats, ShardRecoveryStats::default());
        assert!(b.instance().is_empty());
    }

    #[test]
    fn scratch_dir_cleans_up_on_drop() {
        let scratch = ScratchDir::new("aob-hygiene");
        let path = scratch.path().to_path_buf();
        let mut b = AppendOnlyBackend::open(&path, DEFAULT_CHECKPOINT_INTERVAL);
        b.set_journaling(true);
        apply(&mut b, &key("z"), Operation::Increment(1), None);
        assert!(path.join("seg-00000000.log").exists());
        drop(b);
        drop(scratch);
        assert!(!path.exists(), "scratch dir removed on drop");
    }
}
