//! Hand-rolled binary codec for the append-only flat-file engine.
//!
//! The workspace's vendored `serde` is a derive-only stand-in with no
//! serialization machinery (all JSON in the repo is written by hand), so the
//! durable record and checkpoint-image formats are encoded here explicitly:
//! little-endian fixed-width integers, `u32`-length-prefixed strings and
//! sequences, and one leading tag byte per enum variant.
//!
//! Decoding is total over torn input: every accessor returns `None` at the
//! first missing byte instead of panicking, so a segment truncated mid-record
//! by a crash degrades to "fewer records", never to garbage state.

use crate::key::{Clock, InstanceId, ObjectKey, StateKey, VertexId};
use crate::ops::{Condition, Operation};
use crate::value::Value;
use chc_packet::{FlowKey, ScopeKey};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// FNV-1a over the payload; stored with every record so a torn or bit-rotted
/// tail is detected and dropped at recovery instead of decoded as noise.
pub(crate) fn fnv32(data: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-side encoder: a growable byte buffer with fixed-width primitives.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::None => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::List(items) => {
                self.u8(2);
                self.u32(items.len() as u32);
                for item in items {
                    self.value(item);
                }
            }
            Value::Bytes(b) => {
                self.u8(3);
                self.bytes(b);
            }
            Value::Pair(a, b) => {
                self.u8(4);
                self.i64(*a);
                self.i64(*b);
            }
        }
    }

    fn condition(&mut self, c: &Condition) {
        match c {
            Condition::Equals(v) => {
                self.u8(0);
                self.value(v);
            }
            Condition::LessThan(b) => {
                self.u8(1);
                self.i64(*b);
            }
            Condition::GreaterThan(b) => {
                self.u8(2);
                self.i64(*b);
            }
            Condition::Absent => self.u8(3),
        }
    }

    pub(crate) fn operation(&mut self, op: &Operation) {
        match op {
            Operation::Get => self.u8(0),
            Operation::Set(v) => {
                self.u8(1);
                self.value(v);
            }
            Operation::Delete => self.u8(2),
            Operation::Increment(d) => {
                self.u8(3);
                self.i64(*d);
            }
            Operation::Decrement(d) => {
                self.u8(4);
                self.i64(*d);
            }
            Operation::AddPair(a, b) => {
                self.u8(5);
                self.i64(*a);
                self.i64(*b);
            }
            Operation::PushBack(v) => {
                self.u8(6);
                self.value(v);
            }
            Operation::PushFront(v) => {
                self.u8(7);
                self.value(v);
            }
            Operation::PopFront => self.u8(8),
            Operation::PopBack => self.u8(9),
            Operation::CompareAndUpdate { condition, new } => {
                self.u8(10);
                self.condition(condition);
                self.value(new);
            }
            Operation::Custom { name, arg } => {
                self.u8(11);
                self.str(name);
                self.value(arg);
            }
        }
    }

    fn scope_key(&mut self, sk: &ScopeKey) {
        match sk {
            ScopeKey::Flow(FlowKey(v)) => {
                self.u8(0);
                self.u128(*v);
            }
            ScopeKey::HostPair(a, b) => {
                self.u8(1);
                self.u32((*a).into());
                self.u32((*b).into());
            }
            ScopeKey::Host(a) => {
                self.u8(2);
                self.u32((*a).into());
            }
            ScopeKey::Port(p) => {
                self.u8(3);
                self.u16(*p);
            }
            ScopeKey::Global => self.u8(4),
        }
    }

    pub(crate) fn state_key(&mut self, key: &StateKey) {
        self.u32(key.vertex.0);
        match key.instance {
            None => self.u8(0),
            Some(InstanceId(i)) => {
                self.u8(1);
                self.u32(i);
            }
        }
        self.str(&key.object.name);
        match &key.object.scope_key {
            None => self.u8(0),
            Some(sk) => {
                self.u8(1);
                self.scope_key(sk);
            }
        }
    }

    pub(crate) fn opt_clock(&mut self, clock: Option<Clock>) {
        match clock {
            None => self.u8(0),
            Some(c) => {
                self.u8(1);
                self.u64(c.0);
            }
        }
    }
}

/// Recovery-side decoder over a byte slice. Every accessor returns `None`
/// once the input runs out; callers treat that as "the rest was torn off".
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        self.take(len).map(|b| b.to_vec())
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }

    pub(crate) fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::None,
            1 => Value::Int(self.i64()?),
            2 => {
                let n = self.u32()? as usize;
                let mut items = VecDeque::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push_back(self.value()?);
                }
                Value::List(items)
            }
            3 => Value::Bytes(self.bytes()?),
            4 => Value::Pair(self.i64()?, self.i64()?),
            _ => return None,
        })
    }

    fn condition(&mut self) -> Option<Condition> {
        Some(match self.u8()? {
            0 => Condition::Equals(self.value()?),
            1 => Condition::LessThan(self.i64()?),
            2 => Condition::GreaterThan(self.i64()?),
            3 => Condition::Absent,
            _ => return None,
        })
    }

    pub(crate) fn operation(&mut self) -> Option<Operation> {
        Some(match self.u8()? {
            0 => Operation::Get,
            1 => Operation::Set(self.value()?),
            2 => Operation::Delete,
            3 => Operation::Increment(self.i64()?),
            4 => Operation::Decrement(self.i64()?),
            5 => Operation::AddPair(self.i64()?, self.i64()?),
            6 => Operation::PushBack(self.value()?),
            7 => Operation::PushFront(self.value()?),
            8 => Operation::PopFront,
            9 => Operation::PopBack,
            10 => Operation::CompareAndUpdate {
                condition: self.condition()?,
                new: self.value()?,
            },
            11 => Operation::Custom {
                name: self.str()?,
                arg: self.value()?,
            },
            _ => return None,
        })
    }

    fn scope_key(&mut self) -> Option<ScopeKey> {
        Some(match self.u8()? {
            0 => ScopeKey::Flow(FlowKey(self.u128()?)),
            1 => ScopeKey::HostPair(Ipv4Addr::from(self.u32()?), Ipv4Addr::from(self.u32()?)),
            2 => ScopeKey::Host(Ipv4Addr::from(self.u32()?)),
            3 => ScopeKey::Port(self.u16()?),
            4 => ScopeKey::Global,
            _ => return None,
        })
    }

    pub(crate) fn state_key(&mut self) -> Option<StateKey> {
        let vertex = VertexId(self.u32()?);
        let instance = match self.u8()? {
            0 => None,
            1 => Some(InstanceId(self.u32()?)),
            _ => return None,
        };
        let name = self.str()?;
        let object = match self.u8()? {
            0 => ObjectKey::named(&name),
            1 => ObjectKey::scoped(&name, self.scope_key()?),
            _ => return None,
        };
        Some(StateKey {
            vertex,
            instance,
            object,
        })
    }

    pub(crate) fn opt_clock(&mut self) -> Option<Option<Clock>> {
        Some(match self.u8()? {
            0 => None,
            1 => Some(Clock(self.u64()?)),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut enc = Enc::new();
        enc.value(&v);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.value(), Some(v));
        assert!(dec.is_exhausted());
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::None);
        round_trip_value(Value::Int(-42));
        round_trip_value(Value::Pair(i64::MIN, i64::MAX));
        round_trip_value(Value::Bytes(vec![0, 1, 255]));
        round_trip_value(Value::List(
            [Value::Int(1), Value::list_of_ints([2, 3]), Value::None]
                .into_iter()
                .collect(),
        ));
    }

    #[test]
    fn operations_and_keys_round_trip() {
        let ops = [
            Operation::Get,
            Operation::Set(Value::Int(7)),
            Operation::Delete,
            Operation::Increment(3),
            Operation::Decrement(-9),
            Operation::AddPair(1, -2),
            Operation::PushBack(Value::Bytes(vec![9])),
            Operation::PushFront(Value::None),
            Operation::PopFront,
            Operation::PopBack,
            Operation::CompareAndUpdate {
                condition: Condition::Equals(Value::Pair(0, 1)),
                new: Value::Int(5),
            },
            Operation::CompareAndUpdate {
                condition: Condition::LessThan(10),
                new: Value::None,
            },
            Operation::CompareAndUpdate {
                condition: Condition::GreaterThan(-1),
                new: Value::Int(0),
            },
            Operation::CompareAndUpdate {
                condition: Condition::Absent,
                new: Value::Int(1),
            },
            Operation::Custom {
                name: "clamp".into(),
                arg: Value::Int(100),
            },
        ];
        let keys = [
            StateKey::shared(VertexId(0), ObjectKey::named("plain")),
            StateKey::shared(
                VertexId(1),
                ObjectKey::scoped("flow", ScopeKey::Flow(FlowKey(7))),
            ),
            StateKey::per_flow(
                VertexId(2),
                InstanceId(9),
                ObjectKey::scoped(
                    "pair",
                    ScopeKey::HostPair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
                ),
            ),
            StateKey::shared(
                VertexId(3),
                ObjectKey::scoped("host", ScopeKey::Host(Ipv4Addr::new(192, 168, 0, 1))),
            ),
            StateKey::shared(VertexId(4), ObjectKey::scoped("port", ScopeKey::Port(443))),
            StateKey::shared(VertexId(5), ObjectKey::scoped("global", ScopeKey::Global)),
        ];
        for op in &ops {
            for key in &keys {
                let mut enc = Enc::new();
                enc.state_key(key);
                enc.operation(op);
                enc.opt_clock(Some(Clock::with_root(3, 12345)));
                enc.opt_clock(None);
                let bytes = enc.into_bytes();
                let mut dec = Dec::new(&bytes);
                assert_eq!(dec.state_key().as_ref(), Some(key));
                assert_eq!(dec.operation().as_ref(), Some(op));
                assert_eq!(dec.opt_clock(), Some(Some(Clock::with_root(3, 12345))));
                assert_eq!(dec.opt_clock(), Some(None));
                assert!(dec.is_exhausted());
            }
        }
    }

    #[test]
    fn truncated_input_decodes_to_none_not_panic() {
        let mut enc = Enc::new();
        enc.state_key(&StateKey::shared(VertexId(1), ObjectKey::named("x")));
        enc.operation(&Operation::Set(Value::Bytes(vec![1, 2, 3, 4])));
        let bytes = enc.into_bytes();
        // Every strict prefix must decode cleanly to None somewhere, never
        // panic or loop.
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            if let Some(k) = dec.state_key() {
                assert_eq!(k.object.name, "x");
                assert!(dec.operation().is_none());
            }
        }
    }

    #[test]
    fn fnv32_is_stable_and_input_sensitive() {
        assert_eq!(fnv32(b"abc"), fnv32(b"abc"));
        assert_ne!(fnv32(b"abc"), fnv32(b"abd"));
        assert_ne!(fnv32(b""), fnv32(b"\0"));
    }
}
