//! Pluggable durable storage backends for [`crate::server::StoreServer`]
//! shards.
//!
//! The paper's consistency protocol (operation offloading, duplicate
//! suppression, checkpoint + journal recovery, §4.3/§5.4) is independent of
//! *how* a shard persists its state, and the S6/StatelessNF line of work
//! argues the engine under a chained-NF store should be swappable. This
//! module cuts that seam: a [`StorageBackend`] owns one shard's
//! [`StoreInstance`] together with its durable side — the write-ahead
//! journal, the checkpoint image and the crash/recover/restart lifecycle —
//! and the sharded server drives every shard through the trait.
//!
//! Two engines are provided:
//!
//! * [`MemoryBackend`] — the original in-memory journal + full-image
//!   checkpoint, extracted unchanged. The default.
//! * [`AppendOnlyBackend`] — ordered, keyspace-prefixed records appended to
//!   flat files under a per-shard directory (`std::fs` only), all keys and
//!   file offsets resident in memory, with periodic checkpoint compaction so
//!   `restart_shard` replays only the suffix past the last checkpoint —
//!   O(delta), not O(history).

mod append_only;
mod codec;
mod memory;

pub use append_only::{AppendOnlyBackend, ScratchDir, DEFAULT_CHECKPOINT_INTERVAL};
pub use memory::MemoryBackend;

use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::{CustomOpFn, Operation};
use crate::store::StoreInstance;
use std::path::PathBuf;

/// Which storage engine a [`crate::server::StoreServer`] runs its shards on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// In-memory journal and checkpoint (the original engine; default).
    #[default]
    Memory,
    /// Append-only flat-file segments with checkpoint compaction.
    AppendOnly,
}

impl BackendKind {
    /// Resolve the backend from the `CHC_STORE_BACKEND` environment variable
    /// (`memory` or `append-only`; unset/unknown falls back to memory). This
    /// is the CI knob that re-runs the store, failover and equivalence
    /// suites on the durable engine without touching any call site.
    pub fn from_env() -> BackendKind {
        match std::env::var("CHC_STORE_BACKEND") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "append-only" | "append_only" | "appendonly" | "file" => BackendKind::AppendOnly,
                _ => BackendKind::Memory,
            },
            Err(_) => BackendKind::Memory,
        }
    }

    /// Short label used in reports and bench records.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::AppendOnly => "append_only",
        }
    }
}

/// Backend selection plus engine tuning, as consumed by
/// [`crate::server::StoreServer::with_config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendConfig {
    /// Which engine to run shards on.
    pub kind: BackendKind,
    /// Root directory for the append-only engine's per-shard subdirectories.
    /// `None` (the default) uses an ephemeral scratch directory under the
    /// workspace `target/`, removed when the server is dropped.
    pub dir: Option<PathBuf>,
    /// Append-only compaction cadence: after this many journaled records the
    /// engine writes a checkpoint image and truncates older segments, which
    /// is what bounds `restart_shard` to O(ops-since-checkpoint).
    pub checkpoint_interval: usize,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            kind: BackendKind::default(),
            dir: None,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }
}

impl BackendConfig {
    /// The in-memory engine.
    pub fn memory() -> BackendConfig {
        BackendConfig::default()
    }

    /// The append-only flat-file engine on an ephemeral scratch directory.
    pub fn append_only() -> BackendConfig {
        BackendConfig {
            kind: BackendKind::AppendOnly,
            ..BackendConfig::default()
        }
    }

    /// The engine named by `CHC_STORE_BACKEND` (defaults elsewhere).
    pub fn from_env() -> BackendConfig {
        BackendConfig {
            kind: BackendKind::from_env(),
            ..BackendConfig::default()
        }
    }
}

/// One durable record of a shard's write-ahead journal. The journal captures
/// everything needed to rebuild a shard's in-memory state exactly: applied
/// operations with their duplicate-suppression clocks, callback and custom-op
/// registrations, and per-flow ownership reassignments.
#[derive(Clone)]
pub enum JournalRecord {
    /// One applied operation.
    Apply {
        /// Instance that issued the operation.
        requester: InstanceId,
        /// Target object.
        key: StateKey,
        /// The applied operation.
        op: Operation,
        /// Duplicate-suppression clock, if the inducing packet carried one.
        clock: Option<Clock>,
    },
    /// A change-callback registration.
    Callback {
        /// Watched object.
        key: StateKey,
        /// Instance to notify.
        instance: InstanceId,
    },
    /// A custom-operation registration. The function pointer itself is not
    /// serializable; durable engines persist the name and re-resolve it from
    /// the resident registration table on recovery (production stores
    /// re-register custom ops from code at boot the same way).
    CustomOp {
        /// Registered name.
        name: String,
        /// The registered function.
        f: CustomOpFn,
    },
    /// A bulk per-flow ownership reassignment (NF failover, §5.4).
    Reassign {
        /// Failed instance.
        from: InstanceId,
        /// Replacement instance.
        to: InstanceId,
    },
    /// One batched [`crate::server::StoreServer::apply_batch`] submission to
    /// this shard: the successfully applied ops in execution order. Replay is
    /// element-wise, so recovery from a batched journal is identical to
    /// recovery from the same ops journaled one record each.
    ApplyBatch {
        /// Instance that issued the batch.
        requester: InstanceId,
        /// Successfully applied ops, in execution order.
        ops: Vec<(StateKey, Operation, Option<Clock>)>,
    },
}

/// What [`StorageBackend::recover`] did, for reports and the recovery-time
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardRecoveryStats {
    /// Objects restored from the latest checkpoint.
    pub restored_from_checkpoint: usize,
    /// Journal operations re-applied on top of the checkpoint.
    pub replayed_ops: usize,
    /// Callback / custom-op / ownership records re-installed.
    pub reinstalled_records: usize,
}

/// One shard's storage engine: the live [`StoreInstance`] plus the durable
/// side that survives [`StorageBackend::crash`].
///
/// The server serializes all calls per shard behind one lock, so
/// implementations are single-threaded; `Send` lets shards move across the
/// server's threads.
pub trait StorageBackend: Send {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// The live in-memory instance this backend fronts.
    fn instance(&self) -> &StoreInstance;

    /// Mutable access to the live instance (the server applies operations
    /// through it, then journals with [`StorageBackend::append`]).
    fn instance_mut(&mut self) -> &mut StoreInstance;

    /// Enable or disable journaling. Disabling clears the durable side
    /// (journaling is an opt-in cost; the healthy hot path stays
    /// journal-free).
    fn set_journaling(&mut self, enabled: bool);

    /// True while journaling is on.
    fn journaling(&self) -> bool;

    /// Journal records currently pending replay (appended since the last
    /// checkpoint).
    fn journal_len(&self) -> usize;

    /// Durably record one mutation. Called under the shard lock immediately
    /// after the in-memory apply succeeded, so durable order is exactly
    /// execution order. No-op while journaling is off.
    fn append(&mut self, record: &JournalRecord);

    /// Register a custom operation: installs it on the live instance, keeps
    /// it resolvable across recoveries, and journals the registration when
    /// journaling is on.
    fn register_custom_op(&mut self, name: &str, f: CustomOpFn);

    /// Checkpoint the current instance image and truncate the journal
    /// (records preceding a checkpoint are no longer needed for recovery —
    /// Figure 7's "latest checkpoint"). Returns the number of objects
    /// captured.
    fn checkpoint(&mut self) -> usize;

    /// Fail-stop: wipe the in-memory state. The durable side survives, as a
    /// disk-backed log would.
    fn crash(&mut self);

    /// Rebuild the in-memory state from the latest checkpoint plus the
    /// journal suffix. Re-applying journal records with their original
    /// duplicate-suppression clocks reconstructs both the values and the
    /// metadata exactly as they stood before the crash.
    fn recover(&mut self) -> ShardRecoveryStats;

    /// Number of durable segment files currently held (0 for in-memory
    /// engines). Telemetry gauge.
    fn segment_count(&self) -> usize {
        0
    }

    /// Bytes of durable state currently held on disk (0 for in-memory
    /// engines). Telemetry gauge.
    fn durable_bytes(&self) -> u64 {
        0
    }
}

/// Shared journal-replay step: re-apply one record to `instance`, updating
/// `stats`. Both engines funnel recovery through this so replay semantics
/// cannot drift between them.
pub(crate) fn replay_record(
    instance: &mut StoreInstance,
    record: &JournalRecord,
    stats: &mut ShardRecoveryStats,
) {
    match record {
        JournalRecord::Apply {
            requester,
            key,
            op,
            clock,
        } => {
            let _ = instance.apply(*requester, key, op, *clock);
            stats.replayed_ops += 1;
        }
        JournalRecord::Callback { key, instance: who } => {
            instance.register_callback(key, *who);
            stats.reinstalled_records += 1;
        }
        JournalRecord::CustomOp { name, f } => {
            instance.register_custom_op(name, *f);
            stats.reinstalled_records += 1;
        }
        JournalRecord::Reassign { from, to } => {
            instance.reassign_owner(*from, *to);
            stats.reinstalled_records += 1;
        }
        JournalRecord::ApplyBatch { requester, ops } => {
            for (key, op, clock) in ops {
                let _ = instance.apply(*requester, key, op, *clock);
                stats.replayed_ops += 1;
            }
        }
    }
}
