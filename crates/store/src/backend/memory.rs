//! The original in-memory shard engine, extracted behind [`StorageBackend`].

use super::{replay_record, BackendKind, JournalRecord, ShardRecoveryStats, StorageBackend};
use crate::ops::CustomOpFn;
use crate::store::StoreInstance;

/// In-memory journal + full-image checkpoint: the engine the server shipped
/// with, behavior-identical. "Durability" is process-lifetime (it survives
/// [`StorageBackend::crash`], which models fail-stop of the shard, not of the
/// process) — exactly what the failover drills and equivalence tests need,
/// with zero I/O on the hot path.
#[derive(Default)]
pub struct MemoryBackend {
    instance: StoreInstance,
    enabled: bool,
    /// Full image of the shard at the last checkpoint — values *and*
    /// metadata (callback registrations, custom operations, the
    /// duplicate-suppression log). The Figure-7 [`crate::store::Checkpoint`]
    /// type carries only entries + `TS` because the client-side recovery
    /// algorithm rebuilds the rest from the NF logs; a shard-local
    /// checkpoint has no such second source, so truncating the journal
    /// against anything less than the full image would silently lose the
    /// metadata.
    checkpoint: Option<StoreInstance>,
    records: Vec<JournalRecord>,
}

impl MemoryBackend {
    /// A fresh, empty shard with journaling off.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn instance(&self) -> &StoreInstance {
        &self.instance
    }

    fn instance_mut(&mut self) -> &mut StoreInstance {
        &mut self.instance
    }

    fn set_journaling(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.checkpoint = None;
            self.records.clear();
        }
    }

    fn journaling(&self) -> bool {
        self.enabled
    }

    fn journal_len(&self) -> usize {
        self.records.len()
    }

    fn append(&mut self, record: &JournalRecord) {
        if self.enabled {
            self.records.push(record.clone());
        }
    }

    fn register_custom_op(&mut self, name: &str, f: CustomOpFn) {
        self.instance.register_custom_op(name, f);
        if self.enabled {
            self.records.push(JournalRecord::CustomOp {
                name: name.to_string(),
                f,
            });
        }
    }

    fn checkpoint(&mut self) -> usize {
        let image = self.instance.clone();
        let captured = image.len();
        self.checkpoint = Some(image);
        self.records.clear();
        captured
    }

    fn crash(&mut self) {
        self.instance = StoreInstance::new();
    }

    fn recover(&mut self) -> ShardRecoveryStats {
        let mut stats = ShardRecoveryStats::default();
        if let Some(image) = &self.checkpoint {
            self.instance = image.clone();
            stats.restored_from_checkpoint = image.len();
        }
        for record in &self.records {
            replay_record(&mut self.instance, record, &mut stats);
        }
        stats
    }
}
