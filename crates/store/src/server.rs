//! A sharded, thread-safe datastore server.
//!
//! The paper's datastore is multi-threaded: "A thread can handle multiple
//! state objects; however, each state object is only handled by a single
//! thread to avoid locking overhead" (§4.3), and a single store instance
//! sustains ≈5.1 M ops/s on the microbenchmark of §7.1.
//!
//! [`StoreServer`] reproduces that structure: objects are sharded by the
//! stable hash of their canonical key, every shard is an independent
//! [`StoreInstance`] behind its own lock, and because an object maps to
//! exactly one shard, operations on different objects proceed in parallel
//! with no shared locking. The real-thread Criterion benchmark
//! (`benches/store_ops.rs`) measures this type directly.

use crate::error::StoreError;
use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::{CustomOpFn, Operation};
use crate::store::{ApplyResult, Checkpoint, StoreInstance};
use crate::value::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A sharded store server safe to share across threads (`Arc<StoreServer>`).
pub struct StoreServer {
    shards: Vec<Mutex<StoreInstance>>,
    ops: AtomicU64,
}

impl StoreServer {
    /// Create a server with `shards` independent shards (the paper's
    /// microbenchmark uses four store threads).
    pub fn new(shards: usize) -> Arc<StoreServer> {
        let shards = shards.max(1);
        Arc::new(StoreServer {
            shards: (0..shards).map(|_| Mutex::new(StoreInstance::new())).collect(),
            ops: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &StateKey) -> &Mutex<StoreInstance> {
        let idx = (key.shard_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Register a custom operation on every shard.
    pub fn register_custom_op(&self, name: &str, f: CustomOpFn) {
        for shard in &self.shards {
            shard.lock().register_custom_op(name, f);
        }
    }

    /// Apply an operation (see [`StoreInstance::apply`]).
    pub fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.shard_of(key).lock().apply(requester, key, op, clock)
    }

    /// Read a value without metadata effects.
    pub fn peek(&self, key: &StateKey) -> Value {
        self.shard_of(key).lock().peek(key)
    }

    /// Register a change callback for `instance` on `key`.
    pub fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        self.shard_of(key).lock().register_callback(key, instance);
    }

    /// Total operations served since construction.
    pub fn total_ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total number of objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no shard holds any object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoint every shard (used by integration tests exercising store
    /// recovery with the threaded server).
    pub fn checkpoint(&self, taken_at_ns: u64) -> Vec<Checkpoint> {
        self.shards.iter().map(|s| s.lock().checkpoint(taken_at_ns)).collect()
    }

    /// Forget duplicate-suppression log entries for `clock` on every shard.
    pub fn forget_clock(&self, clock: Clock) {
        for shard in &self.shards {
            shard.lock().forget_clock(clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, VertexId};
    use chc_packet::ScopeKey;
    use std::net::Ipv4Addr;
    use std::thread;

    fn key(name: &str, host: u8) -> StateKey {
        StateKey::shared(
            VertexId(0),
            ObjectKey::scoped(name, ScopeKey::Host(Ipv4Addr::new(10, 0, 0, host))),
        )
    }

    #[test]
    fn sharding_is_stable_and_complete() {
        let server = StoreServer::new(4);
        assert_eq!(server.shard_count(), 4);
        for h in 0..32u8 {
            server.apply(InstanceId(0), &key("c", h), &Operation::Increment(1), None).unwrap();
        }
        assert_eq!(server.len(), 32);
        assert_eq!(server.total_ops(), 32);
        for h in 0..32u8 {
            assert_eq!(server.peek(&key("c", h)), Value::Int(1));
        }
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_serialized() {
        let server = StoreServer::new(4);
        let threads = 8;
        let per_thread = 1_000;
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = Arc::clone(&server);
            handles.push(thread::spawn(move || {
                let k = key("shared_counter", 1);
                for _ in 0..per_thread {
                    server.apply(InstanceId(t), &k, &Operation::Increment(1), None).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            server.peek(&key("shared_counter", 1)),
            Value::Int((threads as i64) * per_thread)
        );
    }

    #[test]
    fn concurrent_pop_hands_out_each_port_once() {
        // The NAT's free-port pool: concurrent pops must never hand the same
        // port to two instances (the store serializes pops).
        let server = StoreServer::new(2);
        let pool = StateKey::shared(VertexId(1), ObjectKey::named("free_ports"));
        for port in 0..2_000i64 {
            server.apply(InstanceId(0), &pool, &Operation::PushBack(Value::Int(port)), None).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..500 {
                    let r = server.apply(InstanceId(t), &pool, &Operation::PopFront, None).unwrap();
                    got.push(r.outcome.returned.as_int());
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2_000, "every port handed out exactly once");
    }

    #[test]
    fn clocked_duplicates_suppressed_through_server() {
        let server = StoreServer::new(2);
        let k = key("pkt_count", 9);
        let clock = Clock::with_root(0, 7);
        let a = server.apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock)).unwrap();
        let b = server.apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock)).unwrap();
        assert!(!a.outcome.emulated && b.outcome.emulated);
        assert_eq!(server.peek(&k), Value::Int(1));
        server.forget_clock(clock);
        let c = server.apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock)).unwrap();
        assert!(!c.outcome.emulated);
    }

    #[test]
    fn checkpoints_cover_all_shards() {
        let server = StoreServer::new(3);
        for h in 0..9u8 {
            server.apply(InstanceId(0), &key("x", h), &Operation::Increment(1), None).unwrap();
        }
        let cps = server.checkpoint(5);
        assert_eq!(cps.len(), 3);
        let total: usize = cps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 9);
    }
}
