//! A sharded, thread-safe datastore server.
//!
//! The paper's datastore is multi-threaded: "A thread can handle multiple
//! state objects; however, each state object is only handled by a single
//! thread to avoid locking overhead" (§4.3), and a single store instance
//! sustains ≈5.1 M ops/s on the microbenchmark of §7.1.
//!
//! [`StoreServer`] reproduces that structure: objects are sharded by the
//! stable hash of their canonical key, every shard is an independent
//! [`StoreInstance`] behind its own lock, and because an object maps to
//! exactly one shard, operations on different objects proceed in parallel
//! with no shared locking. The real-thread Criterion benchmark
//! (`benches/store_ops.rs`) measures this type directly.

use crate::error::StoreError;
use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::{CustomOpFn, Operation};
use crate::store::{ApplyResult, Checkpoint, StoreInstance};
use crate::value::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shard of a [`StoreServer`]: an independent [`StoreInstance`] behind
/// its own lock, plus an op counter so load skew across shards is observable.
struct Shard {
    instance: Mutex<StoreInstance>,
    ops: AtomicU64,
}

/// A sharded store server safe to share across threads (`Arc<StoreServer>`).
pub struct StoreServer {
    shards: Vec<Shard>,
}

impl StoreServer {
    /// Create a server with `shards` independent shards (the paper's
    /// microbenchmark uses four store threads).
    pub fn new(shards: usize) -> Arc<StoreServer> {
        let shards = shards.max(1);
        Arc::new(StoreServer {
            shards: (0..shards)
                .map(|_| Shard {
                    instance: Mutex::new(StoreInstance::new()),
                    ops: AtomicU64::new(0),
                })
                .collect(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an object is pinned to. Stable for the server's lifetime:
    /// "each state object is only handled by a single thread" (§4.3).
    pub fn shard_index(&self, key: &StateKey) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    /// One pinned handle per shard (see [`ShardHandle`]); client threads use
    /// these to talk to "their" store thread without re-hashing every key.
    pub fn shard_handles(self: &Arc<Self>) -> Vec<ShardHandle> {
        (0..self.shards.len())
            .map(|index| ShardHandle {
                server: Arc::clone(self),
                index,
            })
            .collect()
    }

    /// Operations served by each shard since construction, in shard order.
    /// The spread shows how evenly `shard_hash` distributes the working set.
    pub fn ops_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    fn shard_of(&self, key: &StateKey) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Register a custom operation on every shard.
    pub fn register_custom_op(&self, name: &str, f: CustomOpFn) {
        for shard in &self.shards {
            shard.instance.lock().register_custom_op(name, f);
        }
    }

    /// Apply an operation (see [`StoreInstance::apply`]).
    pub fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        let shard = self.shard_of(key);
        shard.ops.fetch_add(1, Ordering::Relaxed);
        shard.instance.lock().apply(requester, key, op, clock)
    }

    /// Read a value without metadata effects.
    pub fn peek(&self, key: &StateKey) -> Value {
        self.shard_of(key).instance.lock().peek(key)
    }

    /// Register a change callback for `instance` on `key`.
    pub fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        self.shard_of(key)
            .instance
            .lock()
            .register_callback(key, instance);
    }

    /// Total operations served since construction.
    pub fn total_ops(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .sum()
    }

    /// Total number of objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.instance.lock().len()).sum()
    }

    /// True if no shard holds any object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoint every shard (used by integration tests exercising store
    /// recovery with the threaded server).
    pub fn checkpoint(&self, taken_at_ns: u64) -> Vec<Checkpoint> {
        self.shards
            .iter()
            .map(|s| s.instance.lock().checkpoint(taken_at_ns))
            .collect()
    }

    /// Forget duplicate-suppression log entries for `clock` on every shard.
    pub fn forget_clock(&self, clock: Clock) {
        for shard in &self.shards {
            shard.instance.lock().forget_clock(clock);
        }
    }

    /// Every stored object across all shards as `(canonical key, value,
    /// owner)`. Order is unspecified; callers sort as needed. Used for final
    /// state digests in the substrate-equivalence tests.
    pub fn dump(&self) -> Vec<(StateKey, Value, Option<InstanceId>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.instance.lock().entries());
        }
        out
    }

    /// Run a closure against one shard's [`StoreInstance`] (advanced tooling:
    /// recovery drills, shard inspection).
    pub fn with_shard<R>(&self, index: usize, f: impl FnOnce(&mut StoreInstance) -> R) -> R {
        f(&mut self.shards[index].instance.lock())
    }
}

/// A handle pinned to one shard of a [`StoreServer`].
///
/// The paper pins each state object to exactly one store thread so that no
/// locking is shared across objects (§4.3). `ShardHandle` is the client-side
/// view of that pinning: a worker thread holds the handle of the shard its
/// hot objects live on and issues operations without re-resolving the shard.
/// Operations on keys that hash elsewhere are rejected with
/// [`StoreError::WrongShard`] instead of silently acquiring a foreign lock.
#[derive(Clone)]
pub struct ShardHandle {
    server: Arc<StoreServer>,
    index: usize,
}

impl ShardHandle {
    /// The shard this handle is pinned to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// True if `key` is pinned to this handle's shard.
    pub fn owns(&self, key: &StateKey) -> bool {
        self.server.shard_index(key) == self.index
    }

    /// Apply an operation to an object pinned to this shard.
    pub fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        if !self.owns(key) {
            return Err(StoreError::WrongShard {
                key: key.clone(),
                shard: self.index,
                actual: self.server.shard_index(key),
            });
        }
        let shard = &self.server.shards[self.index];
        shard.ops.fetch_add(1, Ordering::Relaxed);
        shard.instance.lock().apply(requester, key, op, clock)
    }

    /// Read a value pinned to this shard without metadata effects.
    pub fn peek(&self, key: &StateKey) -> Value {
        self.server.shards[self.index].instance.lock().peek(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, VertexId};
    use chc_packet::ScopeKey;
    use std::net::Ipv4Addr;
    use std::thread;

    fn key(name: &str, host: u8) -> StateKey {
        StateKey::shared(
            VertexId(0),
            ObjectKey::scoped(name, ScopeKey::Host(Ipv4Addr::new(10, 0, 0, host))),
        )
    }

    #[test]
    fn sharding_is_stable_and_complete() {
        let server = StoreServer::new(4);
        assert_eq!(server.shard_count(), 4);
        for h in 0..32u8 {
            server
                .apply(InstanceId(0), &key("c", h), &Operation::Increment(1), None)
                .unwrap();
        }
        assert_eq!(server.len(), 32);
        assert_eq!(server.total_ops(), 32);
        for h in 0..32u8 {
            assert_eq!(server.peek(&key("c", h)), Value::Int(1));
        }
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_serialized() {
        let server = StoreServer::new(4);
        let threads = 8;
        let per_thread = 1_000;
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = Arc::clone(&server);
            handles.push(thread::spawn(move || {
                let k = key("shared_counter", 1);
                for _ in 0..per_thread {
                    server
                        .apply(InstanceId(t), &k, &Operation::Increment(1), None)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            server.peek(&key("shared_counter", 1)),
            Value::Int((threads as i64) * per_thread)
        );
    }

    #[test]
    fn concurrent_pop_hands_out_each_port_once() {
        // The NAT's free-port pool: concurrent pops must never hand the same
        // port to two instances (the store serializes pops).
        let server = StoreServer::new(2);
        let pool = StateKey::shared(VertexId(1), ObjectKey::named("free_ports"));
        for port in 0..2_000i64 {
            server
                .apply(
                    InstanceId(0),
                    &pool,
                    &Operation::PushBack(Value::Int(port)),
                    None,
                )
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..500 {
                    let r = server
                        .apply(InstanceId(t), &pool, &Operation::PopFront, None)
                        .unwrap();
                    got.push(r.outcome.returned.as_int());
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2_000, "every port handed out exactly once");
    }

    #[test]
    fn clocked_duplicates_suppressed_through_server() {
        let server = StoreServer::new(2);
        let k = key("pkt_count", 9);
        let clock = Clock::with_root(0, 7);
        let a = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        let b = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!a.outcome.emulated && b.outcome.emulated);
        assert_eq!(server.peek(&k), Value::Int(1));
        server.forget_clock(clock);
        let c = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!c.outcome.emulated);
    }

    #[test]
    fn shard_handles_pin_objects_to_one_shard() {
        let server = StoreServer::new(4);
        let handles = server.shard_handles();
        assert_eq!(handles.len(), 4);
        for h in 0..64u8 {
            let k = key("pinned", h);
            let idx = server.shard_index(&k);
            let handle = &handles[idx];
            assert!(handle.owns(&k));
            handle
                .apply(InstanceId(0), &k, &Operation::Increment(1), None)
                .unwrap();
            assert_eq!(handle.peek(&k), Value::Int(1));
            // Every other handle rejects the key instead of touching a
            // foreign shard's lock.
            for (other_idx, other) in handles.iter().enumerate() {
                if other_idx != idx {
                    let err = other
                        .apply(InstanceId(0), &k, &Operation::Increment(1), None)
                        .unwrap_err();
                    assert!(matches!(err, StoreError::WrongShard { actual, .. } if actual == idx));
                }
            }
        }
        // Handle traffic shows up in the per-shard counters and the total.
        assert_eq!(server.total_ops(), 64);
        assert_eq!(server.ops_per_shard().iter().sum::<u64>(), 64);
        assert!(
            server.ops_per_shard().iter().all(|n| *n > 0),
            "all shards saw traffic"
        );
    }

    #[test]
    fn dump_covers_all_shards() {
        let server = StoreServer::new(3);
        for h in 0..12u8 {
            server
                .apply(InstanceId(0), &key("d", h), &Operation::Increment(1), None)
                .unwrap();
        }
        let mut dump = server.dump();
        assert_eq!(dump.len(), 12);
        dump.sort_by_key(|(k, _, _)| k.to_string());
        assert!(dump.iter().all(|(_, v, _)| *v == Value::Int(1)));
    }

    #[test]
    fn checkpoints_cover_all_shards() {
        let server = StoreServer::new(3);
        for h in 0..9u8 {
            server
                .apply(InstanceId(0), &key("x", h), &Operation::Increment(1), None)
                .unwrap();
        }
        let cps = server.checkpoint(5);
        assert_eq!(cps.len(), 3);
        let total: usize = cps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 9);
    }
}
