//! A sharded, thread-safe datastore server.
//!
//! The paper's datastore is multi-threaded: "A thread can handle multiple
//! state objects; however, each state object is only handled by a single
//! thread to avoid locking overhead" (§4.3), and a single store instance
//! sustains ≈5.1 M ops/s on the microbenchmark of §7.1.
//!
//! [`StoreServer`] reproduces that structure: objects are sharded by the
//! stable hash of their canonical key, every shard is an independent
//! [`StoreInstance`] behind its own lock, and because an object maps to
//! exactly one shard, operations on different objects proceed in parallel
//! with no shared locking. The real-thread Criterion benchmark
//! (`benches/store_ops.rs`) measures this type directly.
//!
//! Two fault-tolerance facilities back the real-thread failover protocols:
//!
//! * **Per-shard journaling** (§5.4): with journaling enabled, every applied
//!   operation (plus callback registrations, custom-op registrations and
//!   ownership reassignments) is appended to a shard-local write-ahead
//!   journal that models the durable log a production store keeps on disk.
//!   [`StoreServer::checkpoint_shard`] snapshots a shard and truncates its
//!   journal; [`StoreServer::crash_shard`] wipes the in-memory state
//!   (fail-stop); [`StoreServer::recover_shard`] rebuilds it from the latest
//!   checkpoint plus the journal suffix. [`StoreServer::restart_shard`] does
//!   crash + recovery under one lock hold so concurrent clients observe an
//!   outage as latency, never as state loss.
//! * **Commit vectors** (Figure 6): chain components publish the highest
//!   logical-clock counter whose processing is fully flushed
//!   ([`StoreServer::publish_commit`]); the root reads the minimum over the
//!   on-path components ([`StoreServer::commit_frontier`]) to truncate its
//!   packet log, bounding replay memory.
//!
//! Both facilities run on a pluggable [`StorageBackend`]
//! (see [`crate::backend`]): the in-memory engine above is the default, and
//! the append-only flat-file engine persists the journal to per-shard
//! segment files with checkpoint compaction, making `restart_shard` O(delta
//! in ops-since-checkpoint).

pub use crate::backend::ShardRecoveryStats;
use crate::backend::{
    AppendOnlyBackend, BackendConfig, BackendKind, JournalRecord, MemoryBackend, ScratchDir,
    StorageBackend,
};
use crate::error::StoreError;
use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::{CustomOpFn, Operation};
use crate::store::{ApplyResult, Checkpoint, StoreInstance};
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The commit-vector slot under which the end-host sink publishes its
/// delivery frontier (distinct from every NF instance id).
pub const SINK_COMMIT_SOURCE: InstanceId = InstanceId(u32::MAX);

/// One shard of a [`StoreServer`]: an independent storage engine (live
/// [`StoreInstance`] plus its durable journal/checkpoint side) behind its own
/// lock, plus an op counter so load skew across shards is observable. The
/// journal append happens under the same lock hold as the apply, so durable
/// order is exactly execution order.
struct Shard {
    backend: Mutex<Box<dyn StorageBackend>>,
    ops: AtomicU64,
}

/// A sharded store server safe to share across threads (`Arc<StoreServer>`).
pub struct StoreServer {
    shards: Vec<Shard>,
    backend_kind: BackendKind,
    /// Commit vector: per published source, the highest fully-flushed logical
    /// clock counter. Low-rate (one publication per ring batch), so a mutexed
    /// map is the right tool.
    commits: Mutex<HashMap<InstanceId, u64>>,
    /// Keeps the append-only engine's ephemeral scratch directory alive for
    /// the server's lifetime (removed when the server is dropped).
    _scratch: Option<ScratchDir>,
}

impl StoreServer {
    /// Create a server with `shards` independent shards (the paper's
    /// microbenchmark uses four store threads), on the engine named by the
    /// `CHC_STORE_BACKEND` environment variable (in-memory by default).
    pub fn new(shards: usize) -> Arc<StoreServer> {
        StoreServer::with_config(shards, &BackendConfig::from_env())
    }

    /// Create a server on an explicitly chosen engine with default tuning.
    pub fn with_backend(shards: usize, kind: BackendKind) -> Arc<StoreServer> {
        StoreServer::with_config(
            shards,
            &BackendConfig {
                kind,
                ..BackendConfig::default()
            },
        )
    }

    /// Create a server with full backend configuration. For the append-only
    /// engine each shard gets its own subdirectory (`shard-<i>/`) under
    /// `config.dir`, or under an ephemeral scratch directory (removed on
    /// drop) when no directory is given.
    pub fn with_config(shards: usize, config: &BackendConfig) -> Arc<StoreServer> {
        let shards = shards.max(1);
        let scratch = match (config.kind, &config.dir) {
            (BackendKind::AppendOnly, None) => Some(ScratchDir::new("store-server")),
            _ => None,
        };
        let make = |i: usize| -> Box<dyn StorageBackend> {
            match config.kind {
                BackendKind::Memory => Box::new(MemoryBackend::new()),
                BackendKind::AppendOnly => {
                    let root = config
                        .dir
                        .clone()
                        .unwrap_or_else(|| scratch.as_ref().expect("scratch dir").path().into());
                    Box::new(AppendOnlyBackend::open(
                        root.join(format!("shard-{i}")),
                        config.checkpoint_interval,
                    ))
                }
            }
        };
        Arc::new(StoreServer {
            shards: (0..shards)
                .map(|i| Shard {
                    backend: Mutex::new(make(i)),
                    ops: AtomicU64::new(0),
                })
                .collect(),
            backend_kind: config.kind,
            commits: Mutex::new(HashMap::new()),
            _scratch: scratch,
        })
    }

    /// Which storage engine this server's shards run on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an object is pinned to. Stable for the server's lifetime:
    /// "each state object is only handled by a single thread" (§4.3).
    pub fn shard_index(&self, key: &StateKey) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    /// One pinned handle per shard (see [`ShardHandle`]); client threads use
    /// these to talk to "their" store thread without re-hashing every key.
    pub fn shard_handles(self: &Arc<Self>) -> Vec<ShardHandle> {
        (0..self.shards.len())
            .map(|index| ShardHandle {
                server: Arc::clone(self),
                index,
            })
            .collect()
    }

    /// Operations served by each shard since construction, in shard order.
    /// The spread shows how evenly `shard_hash` distributes the working set.
    pub fn ops_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    fn shard_of(&self, key: &StateKey) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Register a custom operation on every shard.
    pub fn register_custom_op(&self, name: &str, f: CustomOpFn) {
        for shard in &self.shards {
            shard.backend.lock().register_custom_op(name, f);
        }
    }

    /// Apply an operation on one shard, journaling it when the shard's
    /// journal is enabled. The journal append happens under the shard's
    /// backend lock so the journal order is exactly the execution order.
    fn apply_on_shard(
        &self,
        shard: &Shard,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        shard.ops.fetch_add(1, Ordering::Relaxed);
        let mut backend = shard.backend.lock();
        let result = backend.instance_mut().apply(requester, key, op, clock);
        if result.is_ok() && backend.journaling() {
            backend.append(&JournalRecord::Apply {
                requester,
                key: key.clone(),
                op: op.clone(),
                clock,
            });
        }
        result
    }

    /// Apply an operation (see [`StoreInstance::apply`]).
    pub fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        self.apply_on_shard(self.shard_of(key), requester, key, op, clock)
    }

    /// Apply a slice of operations, taking each involved shard's lock **once
    /// per batch** instead of once per op.
    ///
    /// Results come back in submission order. Within a shard, ops execute in
    /// submission order, and the shard's journal receives a single
    /// [`JournalRecord::ApplyBatch`] covering the batch's successful ops —
    /// replayed element-wise, so crash/recover semantics are identical to
    /// the same ops applied sequentially. Ops on different shards may
    /// interleave with concurrent writers exactly as sequential applies
    /// would; the batch is an amortization, not a transaction.
    pub fn apply_batch(
        &self,
        requester: InstanceId,
        ops: &[(StateKey, Operation, Option<Clock>)],
    ) -> Vec<Result<ApplyResult, StoreError>> {
        if let [(key, op, clock)] = ops {
            return vec![self.apply(requester, key, op, *clock)];
        }
        let mut results: Vec<Option<Result<ApplyResult, StoreError>>> =
            (0..ops.len()).map(|_| None).collect();
        // Bucket op indices by shard; shard counts are small, so a dense
        // per-shard index list beats sorting.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _, _)) in ops.iter().enumerate() {
            buckets[self.shard_index(key)].push(i);
        }
        for (shard, bucket) in self.shards.iter().zip(&buckets) {
            if bucket.is_empty() {
                continue;
            }
            shard.ops.fetch_add(bucket.len() as u64, Ordering::Relaxed);
            let mut backend = shard.backend.lock();
            for &i in bucket {
                let (key, op, clock) = &ops[i];
                results[i] = Some(backend.instance_mut().apply(requester, key, op, *clock));
            }
            // Journal append under the backend lock hold, like
            // `apply_on_shard`: journal order is exactly execution order.
            if backend.journaling() {
                let applied: Vec<(StateKey, Operation, Option<Clock>)> = bucket
                    .iter()
                    .filter(|&&i| matches!(results[i], Some(Ok(_))))
                    .map(|&i| ops[i].clone())
                    .collect();
                if !applied.is_empty() {
                    backend.append(&JournalRecord::ApplyBatch {
                        requester,
                        ops: applied,
                    });
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every op was bucketed to exactly one shard"))
            .collect()
    }

    /// Read a value without metadata effects.
    pub fn peek(&self, key: &StateKey) -> Value {
        self.shard_of(key).backend.lock().instance().peek(key)
    }

    /// Register a change callback for `instance` on `key`.
    pub fn register_callback(&self, key: &StateKey, instance: InstanceId) {
        let mut backend = self.shard_of(key).backend.lock();
        backend.instance_mut().register_callback(key, instance);
        if backend.journaling() {
            backend.append(&JournalRecord::Callback {
                key: key.clone(),
                instance,
            });
        }
    }

    /// Re-associate every per-flow object owned by `from` with `to` (NF
    /// instance failover, §5.4: the replacement instance takes over the
    /// failed instance's externalized per-flow state).
    pub fn reassign_owner(&self, from: InstanceId, to: InstanceId) -> usize {
        let mut moved = 0;
        for shard in &self.shards {
            let mut backend = shard.backend.lock();
            moved += backend.instance_mut().reassign_owner(from, to);
            if backend.journaling() {
                backend.append(&JournalRecord::Reassign { from, to });
            }
        }
        moved
    }

    /// Total operations served since construction.
    pub fn total_ops(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .sum()
    }

    /// Total number of objects across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.lock().instance().len())
            .sum()
    }

    /// True if no shard holds any object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of live state across all shards.
    pub fn state_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.lock().instance().state_bytes())
            .sum()
    }

    /// Durable segment files currently held across all shards (0 on the
    /// in-memory engine). Telemetry gauge.
    pub fn durable_segments(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.lock().segment_count())
            .sum()
    }

    /// Bytes of durable state (segments + checkpoint images) across all
    /// shards (0 on the in-memory engine). Telemetry gauge.
    pub fn durable_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.backend.lock().durable_bytes())
            .sum()
    }

    /// Checkpoint every shard (used by integration tests exercising store
    /// recovery with the threaded server).
    pub fn checkpoint(&self, taken_at_ns: u64) -> Vec<Checkpoint> {
        self.shards
            .iter()
            .map(|s| s.backend.lock().instance().checkpoint(taken_at_ns))
            .collect()
    }

    // ------------------------------------------------------------------
    // Shard fault tolerance: journaling, crash, recovery (§5.4)
    // ------------------------------------------------------------------

    /// Enable or disable the write-ahead journal of one shard. Disabling
    /// clears the durable side (journaling is an opt-in cost; the healthy
    /// hot path stays journal-free).
    pub fn set_shard_journaling(&self, shard: usize, enabled: bool) {
        self.shards[shard].backend.lock().set_journaling(enabled);
    }

    /// Number of journal records currently pending replay for `shard`.
    pub fn shard_journal_len(&self, shard: usize) -> usize {
        self.shards[shard].backend.lock().journal_len()
    }

    /// Snapshot one shard into its durable checkpoint and truncate the
    /// journal: records preceding a checkpoint are no longer needed for
    /// recovery (Figure 7's "latest checkpoint"). The snapshot is the full
    /// shard image, so truncation loses nothing — not the callback or
    /// custom-op registrations and not the duplicate-suppression log. On the
    /// append-only engine this also compacts the on-disk segments.
    pub fn checkpoint_shard(&self, shard: usize) -> usize {
        self.shards[shard].backend.lock().checkpoint()
    }

    /// Fail-stop one shard: its in-memory state is wiped. The durable side
    /// (checkpoint + journal) survives, as a disk-backed log would.
    pub fn crash_shard(&self, shard: usize) {
        self.shards[shard].backend.lock().crash();
    }

    /// Rebuild one (crashed) shard from its latest checkpoint plus the
    /// journal suffix. Re-applying journal records with their original
    /// duplicate-suppression clocks reconstructs both the values and the
    /// metadata exactly as they stood before the crash.
    pub fn recover_shard(&self, shard: usize) -> ShardRecoveryStats {
        self.shards[shard].backend.lock().recover()
    }

    /// Crash and recover one shard under a single lock hold: concurrent
    /// clients observe the outage as latency on that shard, never as lost or
    /// phantom state. This is the restart the real-thread fault injector
    /// drives ([`ShardRecoveryStats`] feeds the recovery-time experiment).
    pub fn restart_shard(&self, shard: usize) -> ShardRecoveryStats {
        let mut backend = self.shards[shard].backend.lock();
        backend.crash();
        backend.recover()
    }

    // ------------------------------------------------------------------
    // Commit vectors (Figure 6: bounding the root packet log)
    // ------------------------------------------------------------------

    /// Publish `source`'s commit watermark: the highest logical-clock counter
    /// such that every packet with a smaller-or-equal counter routed to
    /// `source` has been fully processed *and* its effects flushed
    /// downstream. Monotonic: stale publications never regress the vector.
    pub fn publish_commit(&self, source: InstanceId, counter: u64) {
        let mut commits = self.commits.lock();
        let entry = commits.entry(source).or_insert(0);
        *entry = (*entry).max(counter);
    }

    /// The published commit watermark of `source`, if any.
    pub fn commit_of(&self, source: InstanceId) -> Option<u64> {
        self.commits.lock().get(&source).copied()
    }

    /// The full commit vector, sorted by source id.
    pub fn commit_vector(&self) -> Vec<(InstanceId, u64)> {
        let mut v: Vec<(InstanceId, u64)> =
            self.commits.lock().iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// The clock counter up to which every listed source has committed: the
    /// root may truncate log entries with counters `<= frontier` because no
    /// replay can ever need them again. Sources that have not published yet
    /// hold the frontier at zero (conservative by construction).
    pub fn commit_frontier(&self, sources: &[InstanceId]) -> u64 {
        let commits = self.commits.lock();
        sources
            .iter()
            .map(|s| commits.get(s).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// Forget duplicate-suppression log entries for `clock` on every shard.
    pub fn forget_clock(&self, clock: Clock) {
        for shard in &self.shards {
            shard.backend.lock().instance_mut().forget_clock(clock);
        }
    }

    /// Every stored object across all shards as `(canonical key, value,
    /// owner)`. Order is unspecified; callers sort as needed. Used for final
    /// state digests in the substrate-equivalence tests.
    pub fn dump(&self) -> Vec<(StateKey, Value, Option<InstanceId>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.backend.lock().instance().entries());
        }
        out
    }

    /// Run a closure against one shard's [`StoreInstance`] (advanced tooling:
    /// recovery drills, shard inspection). Mutations made here bypass the
    /// shard's journal.
    pub fn with_shard<R>(&self, index: usize, f: impl FnOnce(&mut StoreInstance) -> R) -> R {
        f(self.shards[index].backend.lock().instance_mut())
    }
}

/// A handle pinned to one shard of a [`StoreServer`].
///
/// The paper pins each state object to exactly one store thread so that no
/// locking is shared across objects (§4.3). `ShardHandle` is the client-side
/// view of that pinning: a worker thread holds the handle of the shard its
/// hot objects live on and issues operations without re-resolving the shard.
/// Operations on keys that hash elsewhere are rejected with
/// [`StoreError::WrongShard`] instead of silently acquiring a foreign lock.
#[derive(Clone)]
pub struct ShardHandle {
    server: Arc<StoreServer>,
    index: usize,
}

impl ShardHandle {
    /// The shard this handle is pinned to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// True if `key` is pinned to this handle's shard.
    pub fn owns(&self, key: &StateKey) -> bool {
        self.server.shard_index(key) == self.index
    }

    /// Apply an operation to an object pinned to this shard.
    pub fn apply(
        &self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        if !self.owns(key) {
            return Err(StoreError::WrongShard {
                key: key.clone(),
                shard: self.index,
                actual: self.server.shard_index(key),
            });
        }
        let shard = &self.server.shards[self.index];
        self.server.apply_on_shard(shard, requester, key, op, clock)
    }

    /// Read a value pinned to this shard without metadata effects.
    pub fn peek(&self, key: &StateKey) -> Value {
        self.server.shards[self.index]
            .backend
            .lock()
            .instance()
            .peek(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, VertexId};
    use chc_packet::ScopeKey;
    use std::net::Ipv4Addr;
    use std::thread;

    fn key(name: &str, host: u8) -> StateKey {
        StateKey::shared(
            VertexId(0),
            ObjectKey::scoped(name, ScopeKey::Host(Ipv4Addr::new(10, 0, 0, host))),
        )
    }

    #[test]
    fn sharding_is_stable_and_complete() {
        let server = StoreServer::new(4);
        assert_eq!(server.shard_count(), 4);
        for h in 0..32u8 {
            server
                .apply(InstanceId(0), &key("c", h), &Operation::Increment(1), None)
                .unwrap();
        }
        assert_eq!(server.len(), 32);
        assert_eq!(server.total_ops(), 32);
        for h in 0..32u8 {
            assert_eq!(server.peek(&key("c", h)), Value::Int(1));
        }
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_serialized() {
        let server = StoreServer::new(4);
        let threads = 8;
        let per_thread = 1_000;
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = Arc::clone(&server);
            handles.push(thread::spawn(move || {
                let k = key("shared_counter", 1);
                for _ in 0..per_thread {
                    server
                        .apply(InstanceId(t), &k, &Operation::Increment(1), None)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            server.peek(&key("shared_counter", 1)),
            Value::Int((threads as i64) * per_thread)
        );
    }

    #[test]
    fn concurrent_pop_hands_out_each_port_once() {
        // The NAT's free-port pool: concurrent pops must never hand the same
        // port to two instances (the store serializes pops).
        let server = StoreServer::new(2);
        let pool = StateKey::shared(VertexId(1), ObjectKey::named("free_ports"));
        for port in 0..2_000i64 {
            server
                .apply(
                    InstanceId(0),
                    &pool,
                    &Operation::PushBack(Value::Int(port)),
                    None,
                )
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..500 {
                    let r = server
                        .apply(InstanceId(t), &pool, &Operation::PopFront, None)
                        .unwrap();
                    got.push(r.outcome.returned.as_int());
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2_000, "every port handed out exactly once");
    }

    #[test]
    fn clocked_duplicates_suppressed_through_server() {
        let server = StoreServer::new(2);
        let k = key("pkt_count", 9);
        let clock = Clock::with_root(0, 7);
        let a = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        let b = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!a.outcome.emulated && b.outcome.emulated);
        assert_eq!(server.peek(&k), Value::Int(1));
        server.forget_clock(clock);
        let c = server
            .apply(InstanceId(0), &k, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!c.outcome.emulated);
    }

    #[test]
    fn shard_handles_pin_objects_to_one_shard() {
        let server = StoreServer::new(4);
        let handles = server.shard_handles();
        assert_eq!(handles.len(), 4);
        for h in 0..64u8 {
            let k = key("pinned", h);
            let idx = server.shard_index(&k);
            let handle = &handles[idx];
            assert!(handle.owns(&k));
            handle
                .apply(InstanceId(0), &k, &Operation::Increment(1), None)
                .unwrap();
            assert_eq!(handle.peek(&k), Value::Int(1));
            // Every other handle rejects the key instead of touching a
            // foreign shard's lock.
            for (other_idx, other) in handles.iter().enumerate() {
                if other_idx != idx {
                    let err = other
                        .apply(InstanceId(0), &k, &Operation::Increment(1), None)
                        .unwrap_err();
                    assert!(matches!(err, StoreError::WrongShard { actual, .. } if actual == idx));
                }
            }
        }
        // Handle traffic shows up in the per-shard counters and the total.
        assert_eq!(server.total_ops(), 64);
        assert_eq!(server.ops_per_shard().iter().sum::<u64>(), 64);
        assert!(
            server.ops_per_shard().iter().all(|n| *n > 0),
            "all shards saw traffic"
        );
    }

    #[test]
    fn apply_batch_matches_sequential_apply_and_survives_restart() {
        let seq = StoreServer::new(4);
        let bat = StoreServer::new(4);
        for s in 0..4 {
            seq.set_shard_journaling(s, true);
            bat.set_shard_journaling(s, true);
        }
        // A mixed batch spanning shards, with a clocked duplicate inside it.
        let ops: Vec<(StateKey, Operation, Option<Clock>)> = (0..24u8)
            .map(|h| {
                (
                    key("c", h % 6),
                    Operation::Increment(i64::from(h)),
                    Some(Clock::with_root(0, u64::from(h % 20) + 1)),
                )
            })
            .collect();
        let seq_results: Vec<_> = ops
            .iter()
            .map(|(k, op, clock)| seq.apply(InstanceId(1), k, op, *clock))
            .collect();
        let bat_results = bat.apply_batch(InstanceId(1), &ops);
        assert_eq!(bat_results.len(), seq_results.len());
        for (s, b) in seq_results.iter().zip(&bat_results) {
            let (s, b) = (s.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(s.outcome.returned, b.outcome.returned);
            assert_eq!(s.outcome.emulated, b.outcome.emulated);
            assert_eq!(s.new_value, b.new_value);
        }
        let sorted_dump = |s: &StoreServer| {
            let mut d = s.dump();
            d.sort_by_key(|(k, _, _)| k.to_string());
            d
        };
        assert_eq!(sorted_dump(&seq), sorted_dump(&bat));
        assert_eq!(seq.total_ops(), bat.total_ops());
        // Crash + recover every shard: the batched journal record replays
        // element-wise to the same state.
        let before = sorted_dump(&bat);
        for s in 0..4 {
            bat.crash_shard(s);
            bat.recover_shard(s);
        }
        assert_eq!(sorted_dump(&bat), before);
    }

    #[test]
    fn dump_covers_all_shards() {
        let server = StoreServer::new(3);
        for h in 0..12u8 {
            server
                .apply(InstanceId(0), &key("d", h), &Operation::Increment(1), None)
                .unwrap();
        }
        let mut dump = server.dump();
        assert_eq!(dump.len(), 12);
        dump.sort_by_key(|(k, _, _)| k.to_string());
        assert!(dump.iter().all(|(_, v, _)| *v == Value::Int(1)));
    }

    #[test]
    fn journaled_shard_restart_reconstructs_state_exactly() {
        let server = StoreServer::new(2);
        // Journal both shards so every key is covered regardless of hashing.
        for s in 0..2 {
            server.set_shard_journaling(s, true);
        }
        let k = key("counter", 3);
        // Register a change callback *before* the checkpoint: the durable
        // image must carry it, or cached readers go silently stale after a
        // restart.
        server.register_callback(&k, InstanceId(7));
        for c in 1..=10u64 {
            server
                .apply(
                    InstanceId(0),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
        }
        let shard = server.shard_index(&k);
        // Checkpoint mid-stream, keep writing, then restart the shard.
        let captured = server.checkpoint_shard(shard);
        assert_eq!(captured, 1);
        assert_eq!(server.shard_journal_len(shard), 0, "journal truncated");
        for c in 11..=15u64 {
            server
                .apply(
                    InstanceId(1),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
        }
        let before = server.peek(&k);
        let stats = server.restart_shard(shard);
        assert_eq!(stats.restored_from_checkpoint, 1);
        assert_eq!(stats.replayed_ops, 5);
        assert_eq!(server.peek(&k), before, "restart must be state-neutral");
        // Duplicate-suppression metadata was rebuilt too: re-sending an
        // already-applied clocked op is still emulated — for clocks applied
        // after the checkpoint (journal replay) *and* before it (full-image
        // checkpoint), so a replay spanning the checkpoint cannot
        // double-apply.
        for c in [15u64, 5] {
            let r = server
                .apply(
                    InstanceId(1),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
            assert!(r.outcome.emulated, "clock {c} must survive the restart");
        }
        assert_eq!(server.peek(&k), before, "dedup re-checks stayed neutral");
        // The pre-checkpoint callback registration survived: a new update
        // still notifies the registered instance.
        let r = server
            .apply(
                InstanceId(0),
                &k,
                &Operation::Increment(1),
                Some(Clock::with_root(0, 99)),
            )
            .unwrap();
        assert!(
            r.notify.contains(&InstanceId(7)),
            "callback registration lost across the restart"
        );
    }

    #[test]
    fn crash_without_journal_loses_state_and_with_it_does_not() {
        let server = StoreServer::new(1);
        let k = key("x", 1);
        server
            .apply(InstanceId(0), &k, &Operation::Increment(7), None)
            .unwrap();
        server.crash_shard(0);
        assert_eq!(server.peek(&k), Value::None, "fail-stop wipes memory");
        // With the journal on, the same crash recovers.
        server.set_shard_journaling(0, true);
        server
            .apply(InstanceId(0), &k, &Operation::Increment(7), None)
            .unwrap();
        server.crash_shard(0);
        let stats = server.recover_shard(0);
        assert_eq!(stats.replayed_ops, 1);
        assert_eq!(server.peek(&k), Value::Int(7));
    }

    #[test]
    fn reassign_owner_spans_shards() {
        let server = StoreServer::new(4);
        for h in 0..16u8 {
            let k = StateKey::per_flow(
                VertexId(0),
                InstanceId(2),
                ObjectKey::scoped("conn", ScopeKey::Host(Ipv4Addr::new(10, 0, 0, h))),
            );
            server
                .apply(InstanceId(2), &k, &Operation::Increment(1), None)
                .unwrap();
        }
        let moved = server.reassign_owner(InstanceId(2), InstanceId(9));
        assert_eq!(moved, 16);
        let owners: Vec<Option<InstanceId>> =
            server.dump().into_iter().map(|(_, _, o)| o).collect();
        assert!(owners.iter().all(|o| *o == Some(InstanceId(9))));
    }

    #[test]
    fn commit_vector_is_monotonic_and_frontier_is_min() {
        let server = StoreServer::new(1);
        server.publish_commit(InstanceId(0), 40);
        server.publish_commit(InstanceId(1), 25);
        server.publish_commit(SINK_COMMIT_SOURCE, 30);
        // Stale publications never regress the vector.
        server.publish_commit(InstanceId(0), 10);
        assert_eq!(server.commit_of(InstanceId(0)), Some(40));
        let sources = [InstanceId(0), InstanceId(1), SINK_COMMIT_SOURCE];
        assert_eq!(server.commit_frontier(&sources), 25);
        // A source that never published pins the frontier at zero.
        assert_eq!(server.commit_frontier(&[InstanceId(0), InstanceId(5)]), 0);
        assert_eq!(server.commit_vector().len(), 3);
    }

    #[test]
    fn checkpoints_cover_all_shards() {
        let server = StoreServer::new(3);
        for h in 0..9u8 {
            server
                .apply(InstanceId(0), &key("x", h), &Operation::Increment(1), None)
                .unwrap();
        }
        let cps = server.checkpoint(5);
        assert_eq!(cps.len(), 3);
        let total: usize = cps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 9);
    }
}
