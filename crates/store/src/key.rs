//! Key schema and state-object metadata.
//!
//! §4.3 of the paper: "the key for a per-flow (5 tuple) state object is:
//! `vertex ID + instance ID + obj key` [...] The instance ID ensures that only
//! the instance to which the flow is assigned can update the corresponding
//! state object. [...] Likewise, the key for shared objects, e.g. pkt_count,
//! is: `vertex ID + obj key`." Vertex IDs also prevent conflicts when two
//! logical vertices use the same object name.

use chc_packet::{Scope, ScopeKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical chain vertex (an NF type in the logical DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a physical NF instance of some vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Per-packet logical clock assigned by the chain root (§5).
///
/// The high bits encode the root instance that stamped the packet so that
/// "delete" requests can be routed back to the right root when multiple root
/// instances are used (§5, "Logical clocks, logging").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Clock(pub u64);

impl Clock {
    /// Number of high-order bits reserved for the root instance id.
    pub const ROOT_BITS: u32 = 8;

    /// Build a clock value carrying the root instance id in its high bits.
    pub fn with_root(root: u8, counter: u64) -> Clock {
        let shift = 64 - Self::ROOT_BITS;
        Clock(((root as u64) << shift) | (counter & ((1u64 << shift) - 1)))
    }

    /// The root instance id encoded in this clock.
    pub fn root(&self) -> u8 {
        (self.0 >> (64 - Self::ROOT_BITS)) as u8
    }

    /// The per-root counter portion of the clock.
    pub fn counter(&self) -> u64 {
        self.0 & ((1u64 << (64 - Self::ROOT_BITS)) - 1)
    }

    /// The next clock value from the same root.
    pub fn next(&self) -> Clock {
        Clock::with_root(self.root(), self.counter() + 1)
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}:{}", self.root(), self.counter())
    }
}

/// Whether a state object is confined to one flow or shared across flows
/// (and hence potentially across instances). Mirrors Table 1's "Scope" row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateScope {
    /// Keyed per flow/connection: with scope-aware partitioning exactly one
    /// instance updates it at a time.
    PerFlow,
    /// Keyed across flows at the given granularity (e.g. per source host,
    /// per port, or one global object).
    CrossFlow(Scope),
}

impl StateScope {
    /// The packet-header scope used to key objects of this state scope.
    pub fn packet_scope(&self) -> Scope {
        match self {
            StateScope::PerFlow => Scope::FiveTuple,
            StateScope::CrossFlow(s) => *s,
        }
    }

    /// True for cross-flow (potentially shared) state.
    pub fn is_shared(&self) -> bool {
        matches!(self, StateScope::CrossFlow(_))
    }
}

/// How an NF accesses a state object. Together with [`StateScope`] this
/// selects the caching strategy of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Updated on (almost) every packet, read rarely — e.g. packet/byte
    /// counters. Eligible for non-blocking updates.
    WriteMostlyReadRarely,
    /// Written rarely, read often — e.g. a NAT's per-connection port mapping
    /// or a read-heavy shared object. Eligible for caching with callbacks.
    ReadMostly,
    /// Both written and read frequently — e.g. the portscan detector's
    /// per-host likelihood.
    ReadWriteOften,
}

/// Name/identity of a state object *within* a vertex, optionally specialised
/// by a [`ScopeKey`] (e.g. the per-host counter for host 10.0.0.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectKey {
    /// The state object's name as declared by the NF (e.g. `"pkt_count"`).
    pub name: String,
    /// The scope-key instance this object refers to (`None` for singleton
    /// objects such as a global list of free ports).
    pub scope_key: Option<ScopeKey>,
}

impl ObjectKey {
    /// A singleton object with no per-scope specialisation.
    pub fn named(name: &str) -> ObjectKey {
        ObjectKey {
            name: name.to_string(),
            scope_key: None,
        }
    }

    /// An object specialised for a scope key (per-flow, per-host, ...).
    pub fn scoped(name: &str, key: ScopeKey) -> ObjectKey {
        ObjectKey {
            name: name.to_string(),
            scope_key: Some(key),
        }
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.scope_key {
            Some(k) => write!(f, "{}[{}]", self.name, k),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A complete datastore key with its CHC metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateKey {
    /// Logical vertex that owns the object.
    pub vertex: VertexId,
    /// Owning instance for per-flow objects; `None` for shared objects.
    pub instance: Option<InstanceId>,
    /// Object identity within the vertex.
    pub object: ObjectKey,
}

impl StateKey {
    /// Key of a per-flow object owned by `instance`.
    pub fn per_flow(vertex: VertexId, instance: InstanceId, object: ObjectKey) -> StateKey {
        StateKey {
            vertex,
            instance: Some(instance),
            object,
        }
    }

    /// Key of a shared (cross-flow) object.
    pub fn shared(vertex: VertexId, object: ObjectKey) -> StateKey {
        StateKey {
            vertex,
            instance: None,
            object,
        }
    }

    /// True if this key carries per-flow ownership metadata.
    pub fn is_per_flow(&self) -> bool {
        self.instance.is_some()
    }

    /// The same object identity without the instance metadata. Used to look
    /// up an object across a handover (the instance id changes but the
    /// vertex + object identity is stable).
    pub fn canonical(&self) -> StateKey {
        StateKey {
            vertex: self.vertex,
            instance: None,
            object: self.object.clone(),
        }
    }

    /// Stable 64-bit hash used to shard objects across store threads /
    /// instances (each object lives on exactly one shard, §4.3).
    pub fn shard_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat_bytes(&self.vertex.0.to_be_bytes());
        eat_bytes(self.object.name.as_bytes());
        if let Some(sk) = &self.object.scope_key {
            eat_bytes(&sk.stable_hash().to_be_bytes());
        }
        h
    }
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instance {
            Some(i) => write!(f, "{}/{}/{}", self.vertex, i, self.object),
            None => write!(f, "{}/shared/{}", self.vertex, self.object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::ScopeKey;
    use std::net::Ipv4Addr;

    #[test]
    fn clock_encodes_root_in_high_bits() {
        let c = Clock::with_root(3, 12345);
        assert_eq!(c.root(), 3);
        assert_eq!(c.counter(), 12345);
        assert_eq!(c.next().counter(), 12346);
        assert_eq!(c.next().root(), 3);
        // Clocks from a higher root id always compare greater than clocks
        // from a lower root id; ordering within a root follows the counter.
        assert!(Clock::with_root(0, u32::MAX as u64) < Clock::with_root(1, 0));
        assert!(Clock::with_root(1, 5) < Clock::with_root(1, 6));
    }

    #[test]
    fn per_flow_and_shared_keys_differ() {
        let v = VertexId(7);
        let obj = ObjectKey::scoped("bytes", ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 1)));
        let pf = StateKey::per_flow(v, InstanceId(1), obj.clone());
        let sh = StateKey::shared(v, obj);
        assert!(pf.is_per_flow());
        assert!(!sh.is_per_flow());
        assert_ne!(pf, sh);
        assert_eq!(pf.canonical(), sh);
        // Canonical identity shards identically regardless of owner.
        assert_eq!(pf.shard_hash(), sh.shard_hash());
    }

    #[test]
    fn vertex_id_prevents_cross_vertex_conflicts() {
        let a = StateKey::shared(VertexId(1), ObjectKey::named("count"));
        let b = StateKey::shared(VertexId(2), ObjectKey::named("count"));
        assert_ne!(a, b);
        assert_ne!(a.shard_hash(), b.shard_hash());
    }

    #[test]
    fn state_scope_helpers() {
        assert!(!StateScope::PerFlow.is_shared());
        assert!(StateScope::CrossFlow(Scope::SrcIp).is_shared());
        assert_eq!(StateScope::PerFlow.packet_scope(), Scope::FiveTuple);
        assert_eq!(
            StateScope::CrossFlow(Scope::SrcIp).packet_scope(),
            Scope::SrcIp
        );
    }

    #[test]
    fn display_forms() {
        let k = StateKey::per_flow(
            VertexId(1),
            InstanceId(4),
            ObjectKey::scoped("map", ScopeKey::Port(80)),
        );
        let s = k.to_string();
        assert!(s.contains("v1") && s.contains("i4") && s.contains("map"));
        assert!(Clock::with_root(2, 9).to_string().contains("c2:9"));
    }
}
