//! Error type for store operations.

use crate::key::{InstanceId, StateKey};
use std::fmt;

/// Errors returned by the datastore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object is owned by another instance; per-flow objects may only be
    /// updated by the instance recorded in their metadata (§4.3). The current
    /// owner is reported so callers can register for a handover notification.
    NotOwner {
        /// Key that was accessed.
        key: StateKey,
        /// Instance that attempted the access.
        requester: InstanceId,
        /// Instance currently recorded as owner (if any).
        owner: Option<InstanceId>,
    },
    /// The key does not exist and the operation requires it to.
    Missing(StateKey),
    /// The operation is not applicable to the value stored at the key
    /// (e.g. popping from an integer).
    TypeMismatch {
        /// Key that was accessed.
        key: StateKey,
        /// Operation name.
        op: &'static str,
    },
    /// A custom operation name was not registered.
    UnknownCustomOp(String),
    /// The store instance has failed (fail-stop) and cannot serve requests.
    Unavailable,
    /// The key is pinned to a different shard than the handle it was issued
    /// through (objects are handled by exactly one store thread, §4.3).
    WrongShard {
        /// Key that was accessed.
        key: StateKey,
        /// Shard of the handle used.
        shard: usize,
        /// Shard the key actually hashes to.
        actual: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotOwner {
                key,
                requester,
                owner,
            } => write!(
                f,
                "instance {requester} is not the owner of {key} (owner: {owner:?})"
            ),
            StoreError::Missing(k) => write!(f, "no value stored at {k}"),
            StoreError::TypeMismatch { key, op } => {
                write!(f, "operation {op} not applicable to value at {key}")
            }
            StoreError::UnknownCustomOp(name) => write!(f, "unknown custom operation {name:?}"),
            StoreError::Unavailable => write!(f, "store instance unavailable"),
            StoreError::WrongShard { key, shard, actual } => {
                write!(f, "{key} is pinned to shard {actual}, not {shard}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, StateKey, VertexId};

    #[test]
    fn display_messages() {
        let key = StateKey::shared(VertexId(1), ObjectKey::named("pkt_count"));
        let e = StoreError::Missing(key.clone());
        assert!(e.to_string().contains("pkt_count"));
        let e = StoreError::TypeMismatch { key, op: "pop" };
        assert!(e.to_string().contains("pop"));
        assert!(StoreError::Unavailable.to_string().contains("unavailable"));
        assert!(StoreError::UnknownCustomOp("x".into())
            .to_string()
            .contains('x'));
    }
}
