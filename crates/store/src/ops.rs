//! Offloadable state operations (Table 2 of the paper).
//!
//! In CHC an NF instance does not read-modify-write shared state under a
//! lock; it sends the *operation* to the datastore, which serializes and
//! applies operations from all instances in the background (§4.3,
//! "Offloading operations"). Developers can also register custom operations.

use crate::error::StoreError;
use crate::key::StateKey;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Predicate used by [`Operation::CompareAndUpdate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Current value equals the given value.
    Equals(Value),
    /// Current integer value is strictly less than the given bound.
    LessThan(i64),
    /// Current integer value is strictly greater than the given bound.
    GreaterThan(i64),
    /// No value is stored yet (or it is [`Value::None`]).
    Absent,
}

impl Condition {
    /// Evaluate the predicate against the current value.
    pub fn eval(&self, current: &Value) -> bool {
        match self {
            Condition::Equals(v) => current == v,
            Condition::LessThan(b) => current.as_int() < *b,
            Condition::GreaterThan(b) => current.as_int() > *b,
            Condition::Absent => current.is_none(),
        }
    }
}

/// An operation an NF offloads to the datastore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Read the current value.
    Get,
    /// Overwrite the value.
    Set(Value),
    /// Remove the value; returns the previous value.
    Delete,
    /// Increment the integer value by the given amount (Table 2 row 1).
    Increment(i64),
    /// Decrement the integer value by the given amount (Table 2 row 1).
    Decrement(i64),
    /// Add to both components of a [`Value::Pair`].
    AddPair(i64, i64),
    /// Push a value to the back of the list stored at the key (Table 2 row 2).
    PushBack(Value),
    /// Push a value to the front of the list.
    PushFront(Value),
    /// Pop a value from the front of the list; returns the popped value.
    PopFront,
    /// Pop a value from the back of the list; returns the popped value.
    PopBack,
    /// If the condition holds, set the value (Table 2 row 3). Returns the
    /// value after the operation (updated or not).
    CompareAndUpdate {
        /// Predicate evaluated against the current value.
        condition: Condition,
        /// Value written when the predicate holds.
        new: Value,
    },
    /// A developer-registered custom operation, looked up by name in the
    /// store's custom-operation registry, with an argument value.
    Custom {
        /// Registered operation name.
        name: String,
        /// Operation argument.
        arg: Value,
    },
}

impl Operation {
    /// True if the operation only observes state (no mutation).
    pub fn is_read_only(&self) -> bool {
        matches!(self, Operation::Get)
    }

    /// True if the operation can be issued with non-blocking semantics: the
    /// NF does not need the returned value to continue processing. Reads and
    /// pops return data the NF typically consumes, so they block.
    pub fn is_non_blocking_eligible(&self) -> bool {
        !matches!(
            self,
            Operation::Get | Operation::PopFront | Operation::PopBack
        )
    }

    /// Short mnemonic used in logs and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Operation::Get => "get",
            Operation::Set(_) => "set",
            Operation::Delete => "del",
            Operation::Increment(_) => "incr",
            Operation::Decrement(_) => "decr",
            Operation::AddPair(_, _) => "addpair",
            Operation::PushBack(_) => "pushb",
            Operation::PushFront(_) => "pushf",
            Operation::PopFront => "popf",
            Operation::PopBack => "popb",
            Operation::CompareAndUpdate { .. } => "cau",
            Operation::Custom { .. } => "custom",
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Result of applying an operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpOutcome {
    /// Value returned to the requesting instance (for `Get`/`Pop*` this is
    /// the read/popped value; for updates it is the post-update value).
    pub returned: Value,
    /// True when the store *emulated* the operation because an update with
    /// the same (key, clock) had already been applied — the duplicate
    /// suppression mechanism of §5.3.
    pub emulated: bool,
}

impl OpOutcome {
    /// Outcome of a freshly applied operation.
    pub fn applied(returned: Value) -> OpOutcome {
        OpOutcome {
            returned,
            emulated: false,
        }
    }

    /// Outcome replayed from the duplicate-suppression log.
    pub fn emulated(returned: Value) -> OpOutcome {
        OpOutcome {
            returned,
            emulated: true,
        }
    }
}

/// Signature of a registered custom operation: given the current value and an
/// argument, produce `(new_value, returned_value)`.
pub type CustomOpFn = fn(&Value, &Value) -> (Value, Value);

/// Apply `op` to `current`, producing the new stored value and the value to
/// return to the caller. `custom` resolves custom operation names.
///
/// This is the single place where operation semantics are defined; both the
/// simulated store and the threaded server call it.
/// Resolver mapping a custom-operation name to its registered function.
pub type CustomOpResolver<'a> = &'a dyn Fn(&str) -> Option<CustomOpFn>;

pub fn apply_operation(
    key: &StateKey,
    current: &Value,
    op: &Operation,
    custom: Option<CustomOpResolver<'_>>,
) -> Result<(Value, Value), StoreError> {
    let out = match op {
        Operation::Get => (current.clone(), current.clone()),
        Operation::Set(v) => (v.clone(), v.clone()),
        Operation::Delete => (Value::None, current.clone()),
        Operation::Increment(d) => {
            let v = Value::Int(current.as_int() + d);
            (v.clone(), v)
        }
        Operation::Decrement(d) => {
            let v = Value::Int(current.as_int() - d);
            (v.clone(), v)
        }
        Operation::AddPair(a, b) => {
            let (x, y) = current.as_pair();
            let v = Value::Pair(x + a, y + b);
            (v.clone(), v)
        }
        Operation::PushBack(item) => {
            let mut list = take_list(key, current, "push")?;
            list.push_back(item.clone());
            let len = list.len() as i64;
            (Value::List(list), Value::Int(len))
        }
        Operation::PushFront(item) => {
            let mut list = take_list(key, current, "push")?;
            list.push_front(item.clone());
            let len = list.len() as i64;
            (Value::List(list), Value::Int(len))
        }
        Operation::PopFront => {
            let mut list = take_list(key, current, "pop")?;
            let popped = list.pop_front().unwrap_or(Value::None);
            (Value::List(list), popped)
        }
        Operation::PopBack => {
            let mut list = take_list(key, current, "pop")?;
            let popped = list.pop_back().unwrap_or(Value::None);
            (Value::List(list), popped)
        }
        Operation::CompareAndUpdate { condition, new } => {
            if condition.eval(current) {
                (new.clone(), new.clone())
            } else {
                (current.clone(), current.clone())
            }
        }
        Operation::Custom { name, arg } => {
            let f = custom
                .and_then(|resolve| resolve(name))
                .ok_or_else(|| StoreError::UnknownCustomOp(name.clone()))?;
            f(current, arg)
        }
    };
    Ok(out)
}

fn take_list(
    key: &StateKey,
    current: &Value,
    op: &'static str,
) -> Result<VecDeque<Value>, StoreError> {
    match current {
        Value::List(l) => Ok(l.clone()),
        Value::None => Ok(VecDeque::new()),
        _ => Err(StoreError::TypeMismatch {
            key: key.clone(),
            op,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, StateKey, VertexId};

    fn key() -> StateKey {
        StateKey::shared(VertexId(0), ObjectKey::named("x"))
    }

    fn apply(current: &Value, op: Operation) -> (Value, Value) {
        apply_operation(&key(), current, &op, None).unwrap()
    }

    #[test]
    fn increment_decrement() {
        let (v, r) = apply(&Value::None, Operation::Increment(3));
        assert_eq!(v, Value::Int(3));
        assert_eq!(r, Value::Int(3));
        let (v, _) = apply(&v, Operation::Decrement(1));
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn add_pair() {
        let (v, _) = apply(&Value::None, Operation::AddPair(1, 2));
        let (v, r) = apply(&v, Operation::AddPair(0, 3));
        assert_eq!(v, Value::Pair(1, 5));
        assert_eq!(r, Value::Pair(1, 5));
    }

    #[test]
    fn push_pop_round_trip() {
        let (v, len) = apply(&Value::None, Operation::PushBack(Value::Int(10)));
        assert_eq!(len, Value::Int(1));
        let (v, _) = apply(&v, Operation::PushBack(Value::Int(20)));
        let (v, popped) = apply(&v, Operation::PopFront);
        assert_eq!(popped, Value::Int(10));
        let (v, popped) = apply(&v, Operation::PopBack);
        assert_eq!(popped, Value::Int(20));
        let (_, popped) = apply(&v, Operation::PopFront);
        assert_eq!(popped, Value::None);
    }

    #[test]
    fn push_to_non_list_is_type_mismatch() {
        let err = apply_operation(
            &key(),
            &Value::Int(1),
            &Operation::PushBack(Value::Int(2)),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn compare_and_update() {
        // set only if absent — the paper's "compare and update".
        let op = Operation::CompareAndUpdate {
            condition: Condition::Absent,
            new: Value::Int(7),
        };
        let (v, _) = apply(&Value::None, op.clone());
        assert_eq!(v, Value::Int(7));
        let (v, _) = apply(&v, op);
        assert_eq!(v, Value::Int(7)); // unchanged: condition false
        let op = Operation::CompareAndUpdate {
            condition: Condition::GreaterThan(5),
            new: Value::Int(0),
        };
        let (v, _) = apply(&v, op);
        assert_eq!(v, Value::Int(0));
        assert!(Condition::LessThan(1).eval(&Value::Int(0)));
        assert!(Condition::Equals(Value::Int(0)).eval(&Value::Int(0)));
    }

    #[test]
    fn get_set_delete() {
        let (v, r) = apply(&Value::None, Operation::Set(Value::Int(5)));
        assert_eq!(v, Value::Int(5));
        assert_eq!(r, Value::Int(5));
        let (_, r) = apply(&v, Operation::Get);
        assert_eq!(r, Value::Int(5));
        let (v, r) = apply(&v, Operation::Delete);
        assert_eq!(v, Value::None);
        assert_eq!(r, Value::Int(5));
    }

    #[test]
    fn custom_ops_resolution() {
        fn max_op(current: &Value, arg: &Value) -> (Value, Value) {
            let v = Value::Int(current.as_int().max(arg.as_int()));
            (v.clone(), v)
        }
        let resolver = |name: &str| -> Option<CustomOpFn> {
            if name == "max" {
                Some(max_op)
            } else {
                None
            }
        };
        let op = Operation::Custom {
            name: "max".into(),
            arg: Value::Int(9),
        };
        let (v, _) = apply_operation(&key(), &Value::Int(4), &op, Some(&resolver)).unwrap();
        assert_eq!(v, Value::Int(9));
        let unknown = Operation::Custom {
            name: "nope".into(),
            arg: Value::None,
        };
        assert!(matches!(
            apply_operation(&key(), &Value::None, &unknown, Some(&resolver)),
            Err(StoreError::UnknownCustomOp(_))
        ));
    }

    #[test]
    fn blocking_classification() {
        assert!(Operation::Increment(1).is_non_blocking_eligible());
        assert!(Operation::Set(Value::Int(1)).is_non_blocking_eligible());
        assert!(!Operation::Get.is_non_blocking_eligible());
        assert!(!Operation::PopFront.is_non_blocking_eligible());
        assert!(Operation::Get.is_read_only());
        assert!(!Operation::Increment(1).is_read_only());
    }
}
