//! Values stored in the datastore.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A value stored at a datastore key.
///
/// The paper's datastore stores small values (its microbenchmark uses 64-bit
/// values); NFs in this reproduction additionally store lists (e.g. the NAT's
/// free-port pool) and small byte blobs (opaque per-flow records).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// Absent / uninitialised.
    #[default]
    None,
    /// A signed 64-bit integer (counters, likelihood scores scaled by 1e6, …).
    Int(i64),
    /// An ordered list of values (free port pools, pending events, …).
    List(VecDeque<Value>),
    /// A small opaque byte string (serialized per-flow records).
    Bytes(Vec<u8>),
    /// A pair of integers (e.g. connection counts per host: attempts/failures).
    Pair(i64, i64),
}

impl Value {
    /// Interpret as integer, defaulting missing values to 0.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::None => 0,
            Value::Pair(a, _) => *a,
            _ => 0,
        }
    }

    /// Interpret as a pair, defaulting to zeros.
    pub fn as_pair(&self) -> (i64, i64) {
        match self {
            Value::Pair(a, b) => (*a, *b),
            Value::Int(v) => (*v, 0),
            _ => (0, 0),
        }
    }

    /// Borrow the list contents if this value is a list.
    pub fn as_list(&self) -> Option<&VecDeque<Value>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow the bytes if this is a byte value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// True if this is [`Value::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }

    /// Build a list value from integers.
    pub fn list_of_ints<I: IntoIterator<Item = i64>>(items: I) -> Value {
        Value::List(items.into_iter().map(Value::Int).collect())
    }

    /// Approximate size in bytes of the stored value (used for store memory
    /// accounting in reports).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::None => 0,
            Value::Int(_) => 8,
            Value::Pair(_, _) => 16,
            Value::Bytes(b) => b.len(),
            Value::List(l) => l.iter().map(|v| v.size_bytes()).sum::<usize>() + 8,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<(i64, i64)> for Value {
    fn from(v: (i64, i64)) -> Value {
        Value::Pair(v.0, v.1)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Bytes(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "none"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(l) => write!(f, "list[{}]", l.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(5i64).as_int(), 5);
        assert_eq!(Value::from(7u64).as_int(), 7);
        assert_eq!(Value::None.as_int(), 0);
        assert_eq!(Value::from((3, 4)).as_pair(), (3, 4));
        assert_eq!(Value::Int(9).as_pair(), (9, 0));
        let l = Value::list_of_ints([1, 2, 3]);
        assert_eq!(l.as_list().unwrap().len(), 3);
        assert!(Value::None.is_none());
        assert!(Value::Bytes(vec![1, 2]).as_bytes().is_some());
        assert!(Value::Int(1).as_bytes().is_none());
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::Pair(1, 2).size_bytes(), 16);
        assert_eq!(Value::Bytes(vec![0; 10]).size_bytes(), 10);
        assert_eq!(Value::list_of_ints([1, 2]).size_bytes(), 24);
        assert_eq!(Value::None.size_bytes(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(4).to_string(), "4");
        assert_eq!(Value::Pair(1, 2).to_string(), "(1,2)");
        assert_eq!(Value::list_of_ints([1]).to_string(), "list[1]");
    }
}
