//! Client-side logs used for datastore fault tolerance (§5.4).
//!
//! Each NF instance locally appends the shared-state update operations it
//! issues to a write-ahead log, and records with every shared-state *read*
//! the `TS` metadata the store returned (the set of per-instance logical
//! clocks of the last operations the store had executed) together with the
//! value it read. When a store instance fails, these logs plus the latest
//! checkpoint are sufficient to roll the store forward to a state consistent
//! with every instance's view (Figure 7).

use crate::key::{Clock, InstanceId, StateKey};
use crate::ops::Operation;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The `TS` metadata: the logical clock of the last state operation the store
/// executed on behalf of each NF instance at some point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsSnapshot(pub HashMap<InstanceId, Clock>);

impl TsSnapshot {
    /// Build from a map.
    pub fn new(map: HashMap<InstanceId, Clock>) -> TsSnapshot {
        TsSnapshot(map)
    }

    /// The clock recorded for `instance`, if any.
    pub fn clock_of(&self, instance: InstanceId) -> Option<Clock> {
        self.0.get(&instance).copied()
    }

    /// True if any instance's entry equals `clock`.
    pub fn contains_clock(&self, clock: Clock) -> bool {
        self.0.values().any(|c| *c == clock)
    }

    /// The largest clock in the snapshot (used only for reporting).
    pub fn max_clock(&self) -> Option<Clock> {
        self.0.values().copied().max()
    }
}

/// One entry of an instance's write-ahead log: an update operation issued to
/// the store, tagged with the clock of the packet that induced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Logical clock of the inducing packet.
    pub clock: Clock,
    /// Target object.
    pub key: StateKey,
    /// The offloaded operation.
    pub op: Operation,
}

/// An NF instance's local write-ahead log of shared-state update operations.
///
/// Entries are appended in issue order, which per the paper follows a strict
/// clock order for a given instance. The log tracks whether that held
/// (`clock_ordered`): the common strictly-increasing case gets
/// binary-search suffix/truncation ([`Vec::partition_point`]), while logs
/// with out-of-order or duplicate clocks (the Figure-7 recovery drills
/// construct these) transparently fall back to the exact linear scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteAheadLog {
    entries: Vec<WalEntry>,
    /// True while appended clocks have been strictly increasing, i.e. the
    /// entries are sorted with no duplicates and binary search is exact.
    clock_ordered: bool,
}

impl Default for WriteAheadLog {
    fn default() -> WriteAheadLog {
        WriteAheadLog {
            entries: Vec::new(),
            clock_ordered: true,
        }
    }
}

impl WriteAheadLog {
    /// Create an empty log.
    pub fn new() -> WriteAheadLog {
        WriteAheadLog::default()
    }

    /// Append an update operation.
    pub fn append(&mut self, clock: Clock, key: StateKey, op: Operation) {
        if let Some(last) = self.entries.last() {
            if clock <= last.clock {
                self.clock_ordered = false;
            }
        }
        self.entries.push(WalEntry { clock, key, op });
    }

    /// Entries in append order.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop entries whose clock is `<= up_to` (log truncation after a store
    /// checkpoint makes older entries unnecessary). O(log n) + move on an
    /// ordered log, O(n) otherwise.
    pub fn truncate_through(&mut self, up_to: Clock) {
        if self.clock_ordered {
            let cut = self.entries.partition_point(|e| e.clock <= up_to);
            self.entries.drain(..cut);
        } else {
            self.entries.retain(|e| e.clock > up_to);
        }
    }

    /// The suffix of entries strictly after the entry with clock `after`
    /// (or the whole log when `after` is `None` / not found before any entry).
    /// O(log n) on an ordered log, O(n) otherwise.
    pub fn entries_after(&self, after: Option<Clock>) -> &[WalEntry] {
        match after {
            None => &self.entries,
            Some(c) if self.clock_ordered => {
                // Sorted, duplicate-free: the first clock `> c` is both "just
                // past the matching entry" and "the resume point when `c` was
                // never logged" — exactly what the linear scan computes.
                &self.entries[self.entries.partition_point(|e| e.clock <= c)..]
            }
            Some(c) => {
                match self.entries.iter().position(|e| e.clock == c) {
                    Some(idx) => &self.entries[idx + 1..],
                    // The referenced clock is not in the log (e.g. it was a
                    // read, or the log was truncated past it): every entry
                    // with a larger clock still needs re-execution.
                    None => {
                        let idx = self.entries.iter().position(|e| e.clock > c);
                        match idx {
                            Some(i) => &self.entries[i..],
                            None => &[],
                        }
                    }
                }
            }
        }
    }

    /// Traverse the log in reverse and return the latest update entry whose
    /// clock satisfies `pred` (the core step of the TS-selection algorithm).
    pub fn latest_matching(&self, mut pred: impl FnMut(Clock) -> bool) -> Option<&WalEntry> {
        self.entries.iter().rev().find(|e| pred(e.clock))
    }
}

/// A record of one shared-state read: the clock of the reading packet, the
/// `TS` snapshot the store returned alongside the value, and the value read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadLogEntry {
    /// Logical clock of the packet whose processing issued the read.
    pub clock: Clock,
    /// Object that was read.
    pub key: StateKey,
    /// Value returned by the store.
    pub value: Value,
    /// `TS` snapshot returned with the read.
    pub ts: TsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{ObjectKey, VertexId};

    fn key() -> StateKey {
        StateKey::shared(VertexId(0), ObjectKey::named("x"))
    }

    fn clock(n: u64) -> Clock {
        Clock::with_root(0, n)
    }

    #[test]
    fn append_and_suffix() {
        let mut wal = WriteAheadLog::new();
        for n in [5, 9, 12, 20] {
            wal.append(clock(n), key(), Operation::Increment(1));
        }
        assert_eq!(wal.len(), 4);
        assert_eq!(wal.entries_after(None).len(), 4);
        assert_eq!(wal.entries_after(Some(clock(9))).len(), 2);
        // Clock not present in the log: resume at the first larger clock.
        assert_eq!(wal.entries_after(Some(clock(10))).len(), 2);
        assert_eq!(wal.entries_after(Some(clock(20))).len(), 0);
        assert_eq!(wal.entries_after(Some(clock(99))).len(), 0);
    }

    #[test]
    fn truncate_and_reverse_search() {
        let mut wal = WriteAheadLog::new();
        for n in [1, 2, 3, 4, 5] {
            wal.append(clock(n), key(), Operation::Increment(1));
        }
        let found = wal.latest_matching(|c| c.counter() <= 3).unwrap();
        assert_eq!(found.clock, clock(3));
        wal.truncate_through(clock(3));
        assert_eq!(wal.len(), 2);
        assert!(wal.latest_matching(|c| c.counter() <= 3).is_none());
        assert!(!wal.is_empty());
    }

    #[test]
    fn ts_snapshot_queries() {
        let mut m = HashMap::new();
        m.insert(InstanceId(1), clock(15));
        m.insert(InstanceId(2), clock(30));
        let ts = TsSnapshot::new(m);
        assert!(ts.contains_clock(clock(15)));
        assert!(!ts.contains_clock(clock(16)));
        assert_eq!(ts.clock_of(InstanceId(2)), Some(clock(30)));
        assert_eq!(ts.clock_of(InstanceId(9)), None);
        assert_eq!(ts.max_clock(), Some(clock(30)));
    }
}
