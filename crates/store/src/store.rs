//! A single datastore instance.
//!
//! [`StoreInstance`] is the in-memory key-value store at the heart of CHC
//! (§4.3). It serializes offloaded operations, enforces per-flow ownership,
//! tracks callback registrations for read-heavy cached objects, logs
//! clock-tagged updates of in-flight packets for duplicate suppression
//! (§5.3), maintains the per-instance `TS` metadata and periodic checkpoints
//! used for store recovery (§5.4, Figure 7), and computes/logs
//! non-deterministic values (Appendix A).
//!
//! The struct itself is single-threaded; the simulated chain wraps it in a
//! store actor, and [`crate::server::StoreServer`] shards several instances
//! across threads for the real-thread throughput benchmarks (the paper pins
//! each state object to exactly one store thread to avoid locking overhead).

use crate::error::StoreError;
use crate::key::{Clock, InstanceId, ObjectKey, StateKey, VertexId};
use crate::ops::{apply_operation, CustomOpFn, OpOutcome, Operation};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// An entry stored at a canonical key.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Entry {
    value: Value,
    /// For per-flow objects: the instance currently allowed to update the
    /// object. `None` for shared objects (any instance of the vertex may
    /// issue operations; the store serializes them).
    owner: Option<InstanceId>,
}

/// Kinds of non-deterministic values an NF may request from the store
/// (Appendix A). The store logs the value per (clock, slot) so replayed
/// packets observe identical non-determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonDetKind {
    /// A random number (e.g. for sampling decisions).
    Random,
    /// A timestamp ("gettimeofday").
    Timestamp,
    /// Any other locally computed non-deterministic quantity.
    Other,
}

/// A consistent snapshot of a store instance: the state plus the `TS`
/// metadata (the logical clock of the last operation executed on behalf of
/// each NF instance), as described in §5.4 "Datastore instance".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: BTreeMap<String, (StateKey, Value, Option<InstanceId>)>,
    /// Logical clock of the last operation applied per instance.
    pub ts: HashMap<InstanceId, Clock>,
    /// Virtual time at which the checkpoint was taken (informational).
    pub taken_at_ns: u64,
}

impl Checkpoint {
    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the checkpoint holds no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the value of a key in the checkpoint.
    pub fn value_of(&self, key: &StateKey) -> Option<&Value> {
        self.entries
            .get(&key.canonical().to_string())
            .map(|(_, v, _)| v)
    }
}

/// Result of applying an operation at the store.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyResult {
    /// The operation outcome returned to the requester.
    pub outcome: OpOutcome,
    /// Instances (other than the requester) that registered callbacks on the
    /// object and must be notified of the new value.
    pub notify: Vec<InstanceId>,
    /// The new value of the object after the operation (what callbacks carry).
    pub new_value: Value,
}

/// A single CHC datastore instance. See the module documentation.
#[derive(Default, Clone)]
pub struct StoreInstance {
    entries: HashMap<StateKey, Entry>,
    custom_ops: HashMap<String, CustomOpFn>,
    /// Duplicate-suppression log: the update operations issued for
    /// (canonical key, packet clock) along with the value each returned.
    /// Kept only while the packet is still being processed somewhere in the
    /// chain (the root's delete clears it). A packet may legitimately issue
    /// several *different* updates against the same object (e.g. seeding a
    /// list), so emulation matches on the operation as well.
    update_log: HashMap<(StateKey, Clock), Vec<(Operation, Value)>>,
    /// Reverse index so `forget_clock` can clean `update_log` cheaply.
    clock_index: HashMap<Clock, Vec<StateKey>>,
    /// Last operation clock per requesting instance (the `TS` metadata).
    ts: HashMap<InstanceId, Clock>,
    /// Logged non-deterministic values per (clock, slot) — Appendix A.
    nondet_log: HashMap<(Clock, u32), Value>,
    /// Callback registrations per canonical key.
    callbacks: HashMap<StateKey, HashSet<InstanceId>>,
    /// Fail-stop flag: a failed instance answers nothing.
    failed: bool,
    /// Counters for reports.
    ops_applied: u64,
    ops_emulated: u64,
}

impl StoreInstance {
    /// Create an empty store instance.
    pub fn new() -> StoreInstance {
        StoreInstance::default()
    }

    /// Register a custom operation under `name` (Table 2, "Developers can
    /// also load custom operations").
    pub fn register_custom_op(&mut self, name: &str, f: CustomOpFn) {
        self.custom_ops.insert(name.to_string(), f);
    }

    /// Mark the instance failed / recovered.
    pub fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    /// True if the instance is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total operations applied (excluding emulated duplicates).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Operations answered from the duplicate-suppression log.
    pub fn ops_emulated(&self) -> u64 {
        self.ops_emulated
    }

    /// Approximate bytes of state stored.
    pub fn state_bytes(&self) -> usize {
        self.entries.values().map(|e| e.value.size_bytes()).sum()
    }

    fn check_available(&self) -> Result<(), StoreError> {
        if self.failed {
            Err(StoreError::Unavailable)
        } else {
            Ok(())
        }
    }

    fn ownership_check(
        &self,
        requester: InstanceId,
        key: &StateKey,
        canonical: &StateKey,
    ) -> Result<(), StoreError> {
        if !key.is_per_flow() {
            return Ok(());
        }
        if let Some(entry) = self.entries.get(canonical) {
            if let Some(owner) = entry.owner {
                if owner != requester {
                    return Err(StoreError::NotOwner {
                        key: key.clone(),
                        requester,
                        owner: Some(owner),
                    });
                }
            }
        }
        Ok(())
    }

    /// Apply an operation on behalf of `requester`.
    ///
    /// `clock` is the logical clock of the packet that induced the operation;
    /// when present it drives the `TS` metadata and duplicate suppression:
    /// if an update for the same `(key, clock)` was already applied the store
    /// *emulates* the operation, returning the previously returned value
    /// without mutating state (§5.3, Figure 5b).
    pub fn apply(
        &mut self,
        requester: InstanceId,
        key: &StateKey,
        op: &Operation,
        clock: Option<Clock>,
    ) -> Result<ApplyResult, StoreError> {
        self.check_available()?;
        let canonical = key.canonical();
        self.ownership_check(requester, key, &canonical)?;

        // Duplicate suppression: only mutating ops are logged/emulated, and a
        // re-issued operation is recognised by (key, clock, operation).
        if let Some(c) = clock {
            if !op.is_read_only() {
                if let Some(entries) = self.update_log.get(&(canonical.clone(), c)) {
                    if let Some((_, prev)) = entries.iter().find(|(logged, _)| logged == op) {
                        self.ops_emulated += 1;
                        let current = self
                            .entries
                            .get(&canonical)
                            .map(|e| e.value.clone())
                            .unwrap_or_default();
                        return Ok(ApplyResult {
                            outcome: OpOutcome::emulated(prev.clone()),
                            notify: Vec::new(),
                            new_value: current,
                        });
                    }
                }
            }
        }

        let current = self
            .entries
            .get(&canonical)
            .map(|e| e.value.clone())
            .unwrap_or_default();
        let custom = &self.custom_ops;
        let resolver = |name: &str| custom.get(name).copied();
        let (new_value, returned) = apply_operation(key, &current, op, Some(&resolver))?;

        let mutated = !op.is_read_only() && new_value != current;
        // Install the new value (creating the entry and, for per-flow keys,
        // recording the owner on first touch).
        let entry = self
            .entries
            .entry(canonical.clone())
            .or_insert_with(|| Entry {
                value: Value::None,
                owner: key.instance,
            });
        if key.is_per_flow() && entry.owner.is_none() {
            entry.owner = key.instance;
        }
        if !op.is_read_only() {
            entry.value = new_value.clone();
        }

        if let Some(c) = clock {
            self.ts.insert(requester, c);
            if !op.is_read_only() {
                self.update_log
                    .entry((canonical.clone(), c))
                    .or_default()
                    .push((op.clone(), returned.clone()));
                self.clock_index
                    .entry(c)
                    .or_default()
                    .push(canonical.clone());
            }
        }
        self.ops_applied += 1;

        let notify: Vec<InstanceId> = if mutated {
            self.callbacks
                .get(&canonical)
                .map(|set| set.iter().copied().filter(|i| *i != requester).collect())
                .unwrap_or_default()
        } else {
            Vec::new()
        };

        Ok(ApplyResult {
            outcome: OpOutcome::applied(returned),
            notify,
            new_value,
        })
    }

    /// Read a value without touching metadata (used by reports and tests).
    pub fn peek(&self, key: &StateKey) -> Value {
        self.entries
            .get(&key.canonical())
            .map(|e| e.value.clone())
            .unwrap_or_default()
    }

    /// Current `TS` metadata (last clock applied per instance).
    pub fn ts(&self) -> &HashMap<InstanceId, Clock> {
        &self.ts
    }

    /// All keys currently stored for a vertex (used by recovery tooling).
    pub fn keys_of_vertex(&self, vertex: VertexId) -> Vec<StateKey> {
        self.entries
            .keys()
            .filter(|k| k.vertex == vertex)
            .cloned()
            .collect()
    }

    /// All keys whose object name matches `name`.
    pub fn keys_named(&self, name: &str) -> Vec<StateKey> {
        self.entries
            .keys()
            .filter(|k| k.object.name == name)
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // Ownership management (per-flow state handover, §5.1 / Figure 4)
    // ------------------------------------------------------------------

    /// Current owner of a per-flow object, if any.
    pub fn owner_of(&self, key: &StateKey) -> Option<InstanceId> {
        self.entries.get(&key.canonical()).and_then(|e| e.owner)
    }

    /// Disassociate `instance` from the object (step 5 of the handover).
    /// Only the current owner may release; releasing an unowned object is a
    /// no-op so retried handovers stay idempotent.
    pub fn release_ownership(
        &mut self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), StoreError> {
        self.check_available()?;
        if let Some(entry) = self.entries.get_mut(&key.canonical()) {
            match entry.owner {
                Some(o) if o == instance => entry.owner = None,
                Some(o) => {
                    return Err(StoreError::NotOwner {
                        key: key.clone(),
                        requester: instance,
                        owner: Some(o),
                    })
                }
                None => {}
            }
        }
        Ok(())
    }

    /// Associate `instance` with the object (step 7 of the handover). Fails
    /// while another instance still owns it.
    pub fn acquire_ownership(
        &mut self,
        key: &StateKey,
        instance: InstanceId,
    ) -> Result<(), StoreError> {
        self.check_available()?;
        let canonical = key.canonical();
        let entry = self.entries.entry(canonical).or_insert_with(|| Entry {
            value: Value::None,
            owner: None,
        });
        match entry.owner {
            None => {
                entry.owner = Some(instance);
                Ok(())
            }
            Some(o) if o == instance => Ok(()),
            Some(o) => Err(StoreError::NotOwner {
                key: key.clone(),
                requester: instance,
                owner: Some(o),
            }),
        }
    }

    /// Reassign ownership of every per-flow object currently owned by `from`
    /// to `to` (used for NF failover, where the framework re-associates the
    /// failed instance's state with the failover instance, §5.4).
    pub fn reassign_owner(&mut self, from: InstanceId, to: InstanceId) -> usize {
        let mut n = 0;
        for entry in self.entries.values_mut() {
            if entry.owner == Some(from) {
                entry.owner = Some(to);
                n += 1;
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Callbacks (read-heavy cached cross-flow objects, Table 1)
    // ------------------------------------------------------------------

    /// Register `instance` to be notified whenever the object changes.
    pub fn register_callback(&mut self, key: &StateKey, instance: InstanceId) {
        self.callbacks
            .entry(key.canonical())
            .or_default()
            .insert(instance);
    }

    /// Remove a callback registration.
    pub fn unregister_callback(&mut self, key: &StateKey, instance: InstanceId) {
        if let Some(set) = self.callbacks.get_mut(&key.canonical()) {
            set.remove(&instance);
        }
    }

    /// Instances registered for callbacks on `key`.
    pub fn callback_registrations(&self, key: &StateKey) -> Vec<InstanceId> {
        self.callbacks
            .get(&key.canonical())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Duplicate-suppression log maintenance
    // ------------------------------------------------------------------

    /// Forget all duplicate-suppression log entries for `clock`. Called when
    /// the root deletes the packet (it is no longer in flight anywhere).
    pub fn forget_clock(&mut self, clock: Clock) {
        if let Some(keys) = self.clock_index.remove(&clock) {
            for k in keys {
                self.update_log.remove(&(k, clock));
            }
        }
        self.nondet_log.retain(|(c, _), _| *c != clock);
    }

    /// Number of clock-tagged update log entries currently retained.
    pub fn update_log_len(&self) -> usize {
        self.update_log.values().map(|v| v.len()).sum()
    }

    // ------------------------------------------------------------------
    // Non-deterministic values (Appendix A)
    // ------------------------------------------------------------------

    /// Return the non-deterministic value for `(clock, slot)`, computing and
    /// logging `candidate` on first request. A replayed packet (same clock)
    /// observes the identical value, keeping straggler clones and failover
    /// instances deterministic.
    pub fn nondet_value(&mut self, clock: Clock, slot: u32, candidate: Value) -> Value {
        self.nondet_log
            .entry((clock, slot))
            .or_insert(candidate)
            .clone()
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (store fault tolerance, §5.4)
    // ------------------------------------------------------------------

    /// Take a checkpoint of all state plus the `TS` metadata.
    pub fn checkpoint(&self, taken_at_ns: u64) -> Checkpoint {
        let mut entries = BTreeMap::new();
        for (k, e) in &self.entries {
            entries.insert(k.to_string(), (k.clone(), e.value.clone(), e.owner));
        }
        Checkpoint {
            entries,
            ts: self.ts.clone(),
            taken_at_ns,
        }
    }

    /// Replace the store contents with a checkpoint (used to boot a failover
    /// store instance before the write-ahead logs are re-executed).
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        self.entries.clear();
        for (key, value, owner) in checkpoint.entries.values() {
            self.entries.insert(
                key.clone(),
                Entry {
                    value: value.clone(),
                    owner: *owner,
                },
            );
        }
        self.ts = checkpoint.ts.clone();
        self.update_log.clear();
        self.clock_index.clear();
        self.failed = false;
    }

    /// Directly install a value (used when recovering per-flow state from the
    /// caches of NF instances, which hold the freshest copy, §5.4).
    pub fn install(&mut self, key: &StateKey, value: Value, owner: Option<InstanceId>) {
        self.entries.insert(
            key.canonical(),
            Entry {
                value,
                owner: owner.or(key.instance),
            },
        );
    }

    /// Every stored object as `(canonical key, value, owner)`. Used by the
    /// substrate-equivalence checks to digest final state and by recovery
    /// tooling; order is unspecified.
    pub fn entries(&self) -> Vec<(StateKey, Value, Option<InstanceId>)> {
        self.entries
            .iter()
            .map(|(k, e)| (k.clone(), e.value.clone(), e.owner))
            .collect()
    }

    // ------------------------------------------------------------------
    // Durable full-image capture (storage backends, `crate::backend`)
    // ------------------------------------------------------------------

    /// Capture the *complete* instance — values, ownership, `TS`, the
    /// duplicate-suppression log, logged non-determinism, callback
    /// registrations and counters — as plain data a durable backend can
    /// encode byte-by-byte. Custom operations are captured by *name* only
    /// (function pointers are not serializable); the backend re-resolves
    /// them from its resident registration table on restore. Sequences are
    /// deterministically ordered so the same state always encodes to the
    /// same bytes.
    pub fn durable_image(&self) -> DurableImage {
        let mut entries: Vec<(StateKey, Value, Option<InstanceId>)> = self.entries();
        entries.sort_by_key(|(k, _, _)| k.to_string());
        let mut update_log: UpdateLogImage = self
            .update_log
            .iter()
            .map(|((k, c), ops)| (k.clone(), *c, ops.clone()))
            .collect();
        update_log.sort_by_key(|(k, c, _)| (k.to_string(), *c));
        let mut ts: Vec<(InstanceId, Clock)> = self.ts.iter().map(|(i, c)| (*i, *c)).collect();
        ts.sort_unstable_by_key(|(i, _)| *i);
        let mut nondet_log: Vec<(Clock, u32, Value)> = self
            .nondet_log
            .iter()
            .map(|((c, slot), v)| (*c, *slot, v.clone()))
            .collect();
        nondet_log.sort_by_key(|(c, slot, _)| (*c, *slot));
        let mut callbacks: Vec<(StateKey, Vec<InstanceId>)> = self
            .callbacks
            .iter()
            .map(|(k, set)| {
                let mut who: Vec<InstanceId> = set.iter().copied().collect();
                who.sort_unstable();
                (k.clone(), who)
            })
            .collect();
        callbacks.sort_by_key(|(k, _)| k.to_string());
        let mut custom_op_names: Vec<String> = self.custom_ops.keys().cloned().collect();
        custom_op_names.sort();
        DurableImage {
            entries,
            ts,
            update_log,
            nondet_log,
            callbacks,
            custom_op_names,
            failed: self.failed,
            ops_applied: self.ops_applied,
            ops_emulated: self.ops_emulated,
        }
    }

    /// Rebuild an instance from a [`DurableImage`]. `resolve` maps captured
    /// custom-operation names back to registered functions (names it cannot
    /// resolve are dropped — the owning backend re-registers its resident
    /// table on top regardless). The clock reverse index is reconstructed
    /// from the update log.
    pub fn from_durable_image(
        image: DurableImage,
        resolve: &dyn Fn(&str) -> Option<CustomOpFn>,
    ) -> StoreInstance {
        let mut instance = StoreInstance::new();
        for (key, value, owner) in image.entries {
            instance.entries.insert(key, Entry { value, owner });
        }
        instance.ts = image.ts.into_iter().collect();
        for (key, clock, ops) in image.update_log {
            instance
                .clock_index
                .entry(clock)
                .or_default()
                .push(key.clone());
            instance.update_log.insert((key, clock), ops);
        }
        instance.nondet_log = image
            .nondet_log
            .into_iter()
            .map(|(c, slot, v)| ((c, slot), v))
            .collect();
        for (key, who) in image.callbacks {
            instance.callbacks.insert(key, who.into_iter().collect());
        }
        for name in image.custom_op_names {
            if let Some(f) = resolve(&name) {
                instance.custom_ops.insert(name, f);
            }
        }
        instance.failed = image.failed;
        instance.ops_applied = image.ops_applied;
        instance.ops_emulated = image.ops_emulated;
        instance
    }
}

/// Key-and-clock-ordered duplicate-suppression log entries of a
/// [`DurableImage`]: per `(key, clock)`, the applied update operations and
/// the value each returned.
pub type UpdateLogImage = Vec<(StateKey, Clock, Vec<(Operation, Value)>)>;

/// The complete durable image of a [`StoreInstance`], as plain ordered data.
/// See [`StoreInstance::durable_image`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurableImage {
    /// Stored objects: `(canonical key, value, owner)`, key-ordered.
    pub entries: Vec<(StateKey, Value, Option<InstanceId>)>,
    /// The `TS` metadata, instance-ordered.
    pub ts: Vec<(InstanceId, Clock)>,
    /// Duplicate-suppression log entries.
    pub update_log: UpdateLogImage,
    /// Logged non-deterministic values per `(clock, slot)`.
    pub nondet_log: Vec<(Clock, u32, Value)>,
    /// Callback registrations per canonical key, instance-ordered.
    pub callbacks: Vec<(StateKey, Vec<InstanceId>)>,
    /// Names of registered custom operations (functions re-resolved on
    /// restore).
    pub custom_op_names: Vec<String>,
    /// Fail-stop flag.
    pub failed: bool,
    /// Operations applied (excluding emulated duplicates).
    pub ops_applied: u64,
    /// Operations answered from the duplicate-suppression log.
    pub ops_emulated: u64,
}

/// Convenience constructor for per-flow keys used across the workspace.
pub fn per_flow_key(
    vertex: VertexId,
    instance: InstanceId,
    name: &str,
    scope_key: chc_packet::ScopeKey,
) -> StateKey {
    StateKey::per_flow(vertex, instance, ObjectKey::scoped(name, scope_key))
}

/// Convenience constructor for shared keys used across the workspace.
pub fn shared_key(
    vertex: VertexId,
    name: &str,
    scope_key: Option<chc_packet::ScopeKey>,
) -> StateKey {
    match scope_key {
        Some(sk) => StateKey::shared(vertex, ObjectKey::scoped(name, sk)),
        None => StateKey::shared(vertex, ObjectKey::named(name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_packet::ScopeKey;
    use std::net::Ipv4Addr;

    fn v() -> VertexId {
        VertexId(1)
    }

    fn shared(name: &str) -> StateKey {
        StateKey::shared(v(), ObjectKey::named(name))
    }

    fn per_flow(name: &str, instance: u32) -> StateKey {
        StateKey::per_flow(
            v(),
            InstanceId(instance),
            ObjectKey::scoped(name, ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 1))),
        )
    }

    #[test]
    fn operations_serialize_across_instances() {
        let mut store = StoreInstance::new();
        let key = shared("pkt_count");
        for i in 0..10 {
            let who = InstanceId(i % 3);
            store
                .apply(who, &key, &Operation::Increment(1), None)
                .unwrap();
        }
        assert_eq!(store.peek(&key), Value::Int(10));
        assert_eq!(store.ops_applied(), 10);
    }

    #[test]
    fn per_flow_ownership_enforced() {
        let mut store = StoreInstance::new();
        let key1 = per_flow("conn", 1);
        store
            .apply(InstanceId(1), &key1, &Operation::Set(Value::Int(5)), None)
            .unwrap();
        // Another instance may not touch it, even via its own key.
        let key2 = per_flow("conn", 2);
        let err = store
            .apply(InstanceId(2), &key2, &Operation::Increment(1), None)
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::NotOwner {
                owner: Some(InstanceId(1)),
                ..
            }
        ));
        // Handover: release then acquire, after which instance 2 may update.
        store.release_ownership(&key1, InstanceId(1)).unwrap();
        store.acquire_ownership(&key2, InstanceId(2)).unwrap();
        store
            .apply(InstanceId(2), &key2, &Operation::Increment(1), None)
            .unwrap();
        assert_eq!(store.peek(&key2), Value::Int(6));
        assert_eq!(store.owner_of(&key1), Some(InstanceId(2)));
    }

    #[test]
    fn release_by_non_owner_rejected() {
        let mut store = StoreInstance::new();
        let key = per_flow("conn", 1);
        store
            .apply(InstanceId(1), &key, &Operation::Set(Value::Int(1)), None)
            .unwrap();
        assert!(store.release_ownership(&key, InstanceId(9)).is_err());
        assert!(store.acquire_ownership(&key, InstanceId(9)).is_err());
        // Acquiring what you already own is idempotent.
        assert!(store
            .acquire_ownership(&per_flow("conn", 1), InstanceId(1))
            .is_ok());
    }

    #[test]
    fn duplicate_updates_are_emulated() {
        let mut store = StoreInstance::new();
        let key = shared("pkt_count");
        let clock = Clock::with_root(0, 42);
        let first = store
            .apply(InstanceId(0), &key, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!first.outcome.emulated);
        assert_eq!(first.outcome.returned, Value::Int(1));
        // A replayed packet issues the same update with the same clock.
        let second = store
            .apply(InstanceId(0), &key, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(second.outcome.emulated);
        assert_eq!(second.outcome.returned, Value::Int(1));
        assert_eq!(store.peek(&key), Value::Int(1), "state not double-counted");
        assert_eq!(store.ops_emulated(), 1);
        // Once the packet is deleted at the root the log entry is dropped and
        // a (hypothetical) new packet reusing the clock would apply normally.
        store.forget_clock(clock);
        assert_eq!(store.update_log_len(), 0);
        let third = store
            .apply(InstanceId(0), &key, &Operation::Increment(1), Some(clock))
            .unwrap();
        assert!(!third.outcome.emulated);
        assert_eq!(store.peek(&key), Value::Int(2));
    }

    #[test]
    fn reads_are_never_emulated() {
        let mut store = StoreInstance::new();
        let key = shared("x");
        let clock = Clock::with_root(0, 1);
        store
            .apply(
                InstanceId(0),
                &key,
                &Operation::Set(Value::Int(3)),
                Some(clock),
            )
            .unwrap();
        let r1 = store
            .apply(InstanceId(0), &key, &Operation::Get, Some(clock))
            .unwrap();
        let r2 = store
            .apply(InstanceId(0), &key, &Operation::Get, Some(clock))
            .unwrap();
        assert!(!r1.outcome.emulated && !r2.outcome.emulated);
        assert_eq!(r2.outcome.returned, Value::Int(3));
    }

    #[test]
    fn ts_metadata_tracks_last_clock_per_instance() {
        let mut store = StoreInstance::new();
        let key = shared("x");
        store
            .apply(
                InstanceId(1),
                &key,
                &Operation::Increment(1),
                Some(Clock::with_root(0, 5)),
            )
            .unwrap();
        store
            .apply(
                InstanceId(2),
                &key,
                &Operation::Increment(1),
                Some(Clock::with_root(0, 9)),
            )
            .unwrap();
        store
            .apply(
                InstanceId(1),
                &key,
                &Operation::Increment(1),
                Some(Clock::with_root(0, 11)),
            )
            .unwrap();
        assert_eq!(store.ts()[&InstanceId(1)], Clock::with_root(0, 11));
        assert_eq!(store.ts()[&InstanceId(2)], Clock::with_root(0, 9));
    }

    #[test]
    fn callbacks_notify_other_registered_instances() {
        let mut store = StoreInstance::new();
        let key = shared("likelihood");
        store.register_callback(&key, InstanceId(1));
        store.register_callback(&key, InstanceId(2));
        let res = store
            .apply(InstanceId(1), &key, &Operation::Increment(5), None)
            .unwrap();
        // The updater itself is not notified.
        assert_eq!(res.notify, vec![InstanceId(2)]);
        assert_eq!(res.new_value, Value::Int(5));
        // A read does not trigger callbacks.
        let res = store
            .apply(InstanceId(2), &key, &Operation::Get, None)
            .unwrap();
        assert!(res.notify.is_empty());
        store.unregister_callback(&key, InstanceId(2));
        let res = store
            .apply(InstanceId(1), &key, &Operation::Increment(1), None)
            .unwrap();
        assert!(res.notify.is_empty());
    }

    #[test]
    fn no_callback_when_value_unchanged() {
        let mut store = StoreInstance::new();
        let key = shared("cfg");
        store
            .apply(InstanceId(1), &key, &Operation::Set(Value::Int(1)), None)
            .unwrap();
        store.register_callback(&key, InstanceId(2));
        // compare-and-update whose condition fails leaves the value unchanged.
        let res = store
            .apply(
                InstanceId(1),
                &key,
                &Operation::CompareAndUpdate {
                    condition: crate::ops::Condition::Absent,
                    new: Value::Int(9),
                },
                None,
            )
            .unwrap();
        assert!(res.notify.is_empty());
    }

    #[test]
    fn checkpoint_and_restore() {
        let mut store = StoreInstance::new();
        let key = shared("x");
        store
            .apply(
                InstanceId(1),
                &key,
                &Operation::Increment(7),
                Some(Clock::with_root(0, 3)),
            )
            .unwrap();
        let cp = store.checkpoint(123);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.value_of(&key), Some(&Value::Int(7)));
        assert_eq!(cp.ts[&InstanceId(1)], Clock::with_root(0, 3));

        // Keep mutating after the checkpoint, then simulate a crash.
        store
            .apply(InstanceId(1), &key, &Operation::Increment(1), None)
            .unwrap();
        assert_eq!(store.peek(&key), Value::Int(8));
        let mut recovered = StoreInstance::new();
        recovered.restore(&cp);
        assert_eq!(recovered.peek(&key), Value::Int(7));
        assert_eq!(recovered.ts()[&InstanceId(1)], Clock::with_root(0, 3));
    }

    #[test]
    fn failed_store_is_unavailable() {
        let mut store = StoreInstance::new();
        store.set_failed(true);
        let err = store
            .apply(InstanceId(0), &shared("x"), &Operation::Get, None)
            .unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
        assert!(store.is_failed());
        store.set_failed(false);
        assert!(store
            .apply(InstanceId(0), &shared("x"), &Operation::Get, None)
            .is_ok());
    }

    #[test]
    fn nondet_values_replay_identically() {
        let mut store = StoreInstance::new();
        let clock = Clock::with_root(0, 77);
        let first = store.nondet_value(clock, 0, Value::Int(12345));
        // The replayed request proposes a different candidate but must get
        // the originally logged value back.
        let replay = store.nondet_value(clock, 0, Value::Int(99999));
        assert_eq!(first, replay);
        // A different slot of the same packet is independent.
        let other = store.nondet_value(clock, 1, Value::Int(7));
        assert_eq!(other, Value::Int(7));
        // Deleting the packet clears the log.
        store.forget_clock(clock);
        let fresh = store.nondet_value(clock, 0, Value::Int(1));
        assert_eq!(fresh, Value::Int(1));
    }

    #[test]
    fn reassign_owner_moves_all_per_flow_objects() {
        let mut store = StoreInstance::new();
        for host in 0..5u8 {
            let key = StateKey::per_flow(
                v(),
                InstanceId(1),
                ObjectKey::scoped("conn", ScopeKey::Host(Ipv4Addr::new(10, 0, 0, host))),
            );
            store
                .apply(
                    InstanceId(1),
                    &key,
                    &Operation::Set(Value::Int(host as i64)),
                    None,
                )
                .unwrap();
        }
        let moved = store.reassign_owner(InstanceId(1), InstanceId(7));
        assert_eq!(moved, 5);
        let key2 = StateKey::per_flow(
            v(),
            InstanceId(7),
            ObjectKey::scoped("conn", ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 3))),
        );
        store
            .apply(InstanceId(7), &key2, &Operation::Increment(1), None)
            .unwrap();
        assert_eq!(store.peek(&key2), Value::Int(4));
    }

    #[test]
    fn custom_op_via_store() {
        fn clamp_add(current: &Value, arg: &Value) -> (Value, Value) {
            let v = Value::Int((current.as_int() + arg.as_int()).min(100));
            (v.clone(), v)
        }
        let mut store = StoreInstance::new();
        store.register_custom_op("clamp_add", clamp_add);
        let key = shared("score");
        let op = Operation::Custom {
            name: "clamp_add".into(),
            arg: Value::Int(80),
        };
        store.apply(InstanceId(0), &key, &op, None).unwrap();
        store.apply(InstanceId(0), &key, &op, None).unwrap();
        assert_eq!(store.peek(&key), Value::Int(100));
    }

    #[test]
    fn key_helpers_and_queries() {
        let mut store = StoreInstance::new();
        let k1 = shared_key(v(), "a", None);
        let k2 = per_flow_key(v(), InstanceId(1), "b", ScopeKey::Port(80));
        store
            .apply(InstanceId(1), &k1, &Operation::Set(Value::Int(1)), None)
            .unwrap();
        store
            .apply(InstanceId(1), &k2, &Operation::Set(Value::Int(2)), None)
            .unwrap();
        assert_eq!(store.keys_of_vertex(v()).len(), 2);
        assert_eq!(store.keys_named("a").len(), 1);
        assert!(store.state_bytes() >= 16);
        store.install(&k1, Value::Int(9), None);
        assert_eq!(store.peek(&k1), Value::Int(9));
    }
}
