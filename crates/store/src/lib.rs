//! # chc-store
//!
//! The CHC external state store (the paper's "datastore", §4.3).
//!
//! CHC externalizes all NF state into an in-memory key-value store so that
//! state survives NF crashes (requirement R1) and so that shared-state
//! consistency (R3) reduces to the store serializing *operations* offloaded
//! by NF instances, instead of instances locking/copying state.
//!
//! This crate provides:
//!
//! * the key schema with vertex/instance metadata ([`key`]): per-flow objects
//!   are keyed `vertexID + instanceID + objKey` (only the owning instance may
//!   update them), shared objects `vertexID + objKey`;
//! * values and offloadable operations ([`value`], [`ops`]) — increment /
//!   decrement, push / pop, compare-and-update, plus registrable custom
//!   operations (Table 2);
//! * a single store instance ([`store::StoreInstance`]) implementing
//!   operation serialization, ownership checks, callback registration for
//!   read-heavy cached objects, clock-tagged update logging used for
//!   duplicate suppression (§5.3), checkpointing with `TS` metadata and
//!   store-computed non-deterministic values (Appendix A);
//! * client-side write-ahead/read logs ([`wal`]) and the shared-state
//!   recovery algorithm with `TS` selection (§5.4, Figure 7) in [`recovery`];
//! * pluggable per-shard storage engines ([`backend`]): the in-memory
//!   journal/checkpoint engine the server shipped with, and an append-only
//!   flat-file engine with checkpoint compaction whose shard restart is
//!   O(ops-since-checkpoint);
//! * a sharded, thread-safe server ([`server::StoreServer`]) used by the
//!   real-thread throughput benchmarks (the paper reports ≈5.1 M ops/s per
//!   store instance).

pub mod backend;
pub mod error;
pub mod key;
pub mod ops;
pub mod recovery;
pub mod server;
pub mod store;
pub mod value;
pub mod wal;

pub use backend::{
    AppendOnlyBackend, BackendConfig, BackendKind, JournalRecord, MemoryBackend, ScratchDir,
    StorageBackend, DEFAULT_CHECKPOINT_INTERVAL,
};
pub use error::StoreError;
pub use key::{AccessPattern, Clock, InstanceId, ObjectKey, StateKey, StateScope, VertexId};
pub use ops::{Condition, OpOutcome, Operation};
pub use recovery::{recover_shared_state, select_recovery_ts, RecoveryInput, RecoveryReport};
pub use server::{ShardHandle, ShardRecoveryStats, StoreServer, SINK_COMMIT_SOURCE};
pub use store::{Checkpoint, DurableImage, NonDetKind, StoreInstance};
pub use value::Value;
pub use wal::{ReadLogEntry, TsSnapshot, WriteAheadLog};
