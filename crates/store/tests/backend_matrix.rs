//! Backend conformance matrix: every shard-lifecycle property the store
//! server guarantees must hold identically on the in-memory engine and on
//! the append-only flat-file engine, plus append-only-specific properties —
//! random crash points mid-segment never lose a checkpointed write, and
//! restart work is proportional to ops-since-checkpoint, not history.
//!
//! The vendored proptest shim has no collection strategies, so each case
//! draws a seed and derives its random scenario from a `StdRng` — failures
//! stay reproducible because the seed is part of the case.

use chc_store::backend::{JournalRecord, StorageBackend};
use chc_store::{
    AppendOnlyBackend, BackendConfig, BackendKind, Clock, InstanceId, ObjectKey, Operation,
    ScratchDir, StateKey, StoreServer, Value, VertexId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::OpenOptions;
use std::sync::Arc;

const KINDS: [BackendKind; 2] = [BackendKind::Memory, BackendKind::AppendOnly];

fn key(name: &str, i: usize) -> StateKey {
    StateKey::shared(
        VertexId((i % 3) as u32),
        ObjectKey::named(&format!("{name}{i}")),
    )
}

fn journaled(kind: BackendKind, shards: usize) -> Arc<StoreServer> {
    let server = StoreServer::with_backend(shards, kind);
    for s in 0..shards {
        server.set_shard_journaling(s, true);
    }
    server
}

fn sorted_dump(server: &StoreServer) -> Vec<String> {
    let mut dump: Vec<String> = server
        .dump()
        .into_iter()
        .map(|entry| format!("{entry:?}"))
        .collect();
    dump.sort();
    dump
}

/// The restart-exactness drill from the server's unit suite, run on both
/// engines: checkpoint mid-stream, keep writing, restart — state, dedup
/// clocks and callback registrations all survive, with identical stats.
#[test]
fn journaled_restart_is_state_neutral_on_both_backends() {
    for kind in KINDS {
        let server = journaled(kind, 2);
        let k = key("counter", 3);
        server.register_callback(&k, InstanceId(7));
        for c in 1..=10u64 {
            server
                .apply(
                    InstanceId(0),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
        }
        let shard = server.shard_index(&k);
        let captured = server.checkpoint_shard(shard);
        assert_eq!(captured, 1, "{kind:?}");
        assert_eq!(server.shard_journal_len(shard), 0, "{kind:?}: truncated");
        for c in 11..=15u64 {
            server
                .apply(
                    InstanceId(1),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
        }
        let before = server.peek(&k);
        let stats = server.restart_shard(shard);
        assert_eq!(stats.restored_from_checkpoint, 1, "{kind:?}");
        assert_eq!(stats.replayed_ops, 5, "{kind:?}");
        assert_eq!(server.peek(&k), before, "{kind:?}: state-neutral restart");
        // Dedup clocks from before *and* after the checkpoint survive.
        for c in [15u64, 5] {
            let r = server
                .apply(
                    InstanceId(1),
                    &k,
                    &Operation::Increment(1),
                    Some(Clock::with_root(0, c)),
                )
                .unwrap();
            assert!(r.outcome.emulated, "{kind:?}: clock {c} lost");
        }
        // The pre-checkpoint callback registration survived.
        let r = server
            .apply(
                InstanceId(0),
                &k,
                &Operation::Increment(1),
                Some(Clock::with_root(0, 99)),
            )
            .unwrap();
        assert!(r.notify.contains(&InstanceId(7)), "{kind:?}: callback lost");
    }
}

/// Crash without journaling loses state; with journaling it does not — on
/// both engines.
#[test]
fn crash_semantics_match_on_both_backends() {
    for kind in KINDS {
        let server = StoreServer::with_backend(1, kind);
        let k = key("x", 1);
        server
            .apply(InstanceId(0), &k, &Operation::Increment(7), None)
            .unwrap();
        server.crash_shard(0);
        assert_eq!(server.peek(&k), Value::None, "{kind:?}: fail-stop wipes");
        server.set_shard_journaling(0, true);
        server
            .apply(InstanceId(0), &k, &Operation::Increment(7), None)
            .unwrap();
        server.crash_shard(0);
        let stats = server.recover_shard(0);
        assert_eq!(stats.replayed_ops, 1, "{kind:?}");
        assert_eq!(server.peek(&k), Value::Int(7), "{kind:?}");
    }
}

/// Custom operations journal by name on the durable engine and survive a
/// restart on both engines.
#[test]
fn custom_ops_survive_restart_on_both_backends() {
    fn saturating_double(current: &Value, arg: &Value) -> (Value, Value) {
        let cap = arg.as_int();
        let doubled = (current.as_int() * 2).min(cap);
        (Value::Int(doubled), Value::Int(doubled))
    }
    for kind in KINDS {
        let server = journaled(kind, 2);
        server.register_custom_op("sat_double", saturating_double);
        let k = key("tok", 0);
        server
            .apply(InstanceId(0), &k, &Operation::Set(Value::Int(3)), None)
            .unwrap();
        let shard = server.shard_index(&k);
        server.restart_shard(shard);
        let r = server
            .apply(
                InstanceId(0),
                &k,
                &Operation::Custom {
                    name: "sat_double".into(),
                    arg: Value::Int(100),
                },
                None,
            )
            .unwrap();
        assert_eq!(r.new_value, Value::Int(6), "{kind:?}: custom op lost");
    }
}

/// O(delta) restart: with a small compaction interval, restarting an
/// append-only shard replays exactly the post-checkpoint suffix
/// (`history % interval` ops), never the full history. The memory engine,
/// which only checkpoints explicitly, replays everything — the contrast is
/// the point of the durable engine.
#[test]
fn append_only_restart_replays_only_the_suffix() {
    let interval = 8usize;
    let history = 30u64;
    let server = StoreServer::with_config(
        1,
        &BackendConfig {
            kind: BackendKind::AppendOnly,
            checkpoint_interval: interval,
            ..BackendConfig::default()
        },
    );
    server.set_shard_journaling(0, true);
    let k = key("k", 0);
    for c in 1..=history {
        server
            .apply(
                InstanceId(0),
                &k,
                &Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            )
            .unwrap();
    }
    let expected_suffix = (history as usize) % interval;
    assert_eq!(server.shard_journal_len(0), expected_suffix);
    let stats = server.restart_shard(0);
    assert_eq!(
        stats.replayed_ops, expected_suffix,
        "replayed entries must equal the post-checkpoint suffix"
    );
    assert_eq!(stats.restored_from_checkpoint, 1);
    assert_eq!(server.peek(&k), Value::Int(history as i64));

    // Same history on the memory engine: no auto-checkpoint, full replay.
    let memory = journaled(BackendKind::Memory, 1);
    for c in 1..=history {
        memory
            .apply(
                InstanceId(0),
                &k,
                &Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            )
            .unwrap();
    }
    let stats = memory.restart_shard(0);
    assert_eq!(stats.replayed_ops, history as usize, "O(history) baseline");
}

proptest! {
    /// Server-level recovery equivalence on both engines: a random op
    /// sequence with a random mid-stream checkpoint, then restart every
    /// shard — the recovered image equals a never-crashed oracle's, and the
    /// replayed work never exceeds the post-checkpoint suffix.
    #[test]
    fn random_histories_recover_identically(seed in any::<u64>()) {
        for kind in KINDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let shards = rng.gen_range(1..=3usize);
            let n = rng.gen_range(1..=40usize);
            let checkpoint_at = rng.gen_range(0..=n);
            let server = journaled(kind, shards);
            let oracle = journaled(BackendKind::Memory, shards);
            for i in 0..n {
                let k = key("r", rng.gen_range(0..5));
                let op = Operation::Increment(rng.gen_range(1..4));
                let clock = Some(Clock::with_root(0, (i as u64) + 1));
                server.apply(InstanceId(0), &k, &op, clock).unwrap();
                oracle.apply(InstanceId(0), &k, &op, clock).unwrap();
                if i + 1 == checkpoint_at {
                    for s in 0..shards {
                        server.checkpoint_shard(s);
                    }
                }
            }
            let mut replayed = 0usize;
            for s in 0..shards {
                server.crash_shard(s);
                replayed += server.recover_shard(s).replayed_ops;
            }
            prop_assert_eq!(sorted_dump(&server), sorted_dump(&oracle));
            prop_assert!(
                replayed <= n - checkpoint_at,
                "replay must be bounded by the post-checkpoint suffix"
            );
        }
    }

    /// Append-only crash-point property: write, checkpoint, write more, then
    /// tear the active segment at a random byte. Recovery must keep every
    /// checkpointed write, replay some prefix of the post-checkpoint suffix,
    /// and match the oracle state for exactly the ops that survived.
    #[test]
    fn torn_segments_never_lose_checkpointed_writes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n1 = rng.gen_range(1..=12usize);
        let n2 = rng.gen_range(1..=12usize);
        let scratch = ScratchDir::new("matrix-torn");
        let dir = scratch.path().to_path_buf();
        let k = key("t", 0);
        let requester = InstanceId(1);

        let mut backend = AppendOnlyBackend::open(&dir, 1024);
        backend.set_journaling(true);
        let apply = |b: &mut AppendOnlyBackend, c: u64| {
            let op = Operation::Increment(1);
            b.instance_mut().apply(requester, &k, &op, Some(Clock::with_root(0, c))).unwrap();
            b.append(&JournalRecord::Apply {
                requester,
                key: k.clone(),
                op,
                clock: Some(Clock::with_root(0, c)),
            });
        };
        for c in 1..=n1 {
            apply(&mut backend, c as u64);
        }
        backend.checkpoint();
        for c in 1..=n2 {
            apply(&mut backend, (n1 + c) as u64);
        }
        let seg = backend.active_segment_path();
        drop(backend);

        // Tear the segment at a random byte (possibly not at all).
        let len = std::fs::metadata(&seg).unwrap().len();
        let tear_at = rng.gen_range(0..=len);
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(tear_at).unwrap();

        let mut backend = AppendOnlyBackend::open(&dir, 1024);
        let stats = backend.recover();
        // Checkpointed writes are never lost; restart work is bounded by the
        // suffix, and the state equals the oracle of the surviving prefix.
        prop_assert_eq!(stats.restored_from_checkpoint, 1);
        prop_assert!(stats.replayed_ops <= n2);
        let survived = n1 + stats.replayed_ops;
        prop_assert_eq!(backend.instance().peek(&k), Value::Int(survived as i64));
        prop_assert!(survived >= n1, "no checkpointed write may be lost");
    }
}
