//! Property tests for the datastore fault-tolerance machinery (§5.4):
//! for arbitrary operation sequences, checkpoint positions, read placements
//! and truncation points,
//!
//! * `WriteAheadLog::entries_after` returns exactly the suffix strictly
//!   after the given clock, and truncation never resurrects entries, and
//! * `recover_shared_state` rebuilds the pre-crash store from a snapshot
//!   plus the instances' logs without losing or double-applying any
//!   committed operation.
//!
//! The vendored proptest shim has no collection strategies, so each case
//! draws a seed and derives its random scenario from a `StdRng` — failures
//! stay reproducible because the seed is part of the case.

use chc_store::{
    recover_shared_state, Clock, InstanceId, ObjectKey, Operation, ReadLogEntry, RecoveryInput,
    StateKey, StoreInstance, TsSnapshot, Value, WriteAheadLog,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn key() -> StateKey {
    StateKey::shared(chc_store::VertexId(1), ObjectKey::named("shared_counter"))
}

fn clock(n: u64) -> Clock {
    Clock::with_root(0, n)
}

/// A randomized multi-instance history against one shared object: the global
/// interleave is the order the datastore executed the updates in, reads are
/// scattered through it, and the checkpoint cuts it at a random position.
struct Scenario {
    /// Datastore execution order: `(instance, clock counter)` per update.
    interleave: Vec<(InstanceId, u64)>,
    /// Interleave position of the checkpoint.
    checkpoint_at: usize,
    /// Reads as `(interleave position, reader, read clock counter)`.
    reads: Vec<(usize, InstanceId, u64)>,
}

impl Scenario {
    fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let instances = rng.gen_range(1..=4u32);
        let mut next_clock = 1u64;
        let mut per_instance: Vec<Vec<u64>> = Vec::new();
        for _ in 0..instances {
            let ops = rng.gen_range(1..=10usize);
            let clocks: Vec<u64> = (0..ops)
                .map(|_| {
                    let c = next_clock;
                    next_clock += rng.gen_range(1..=3u64);
                    c
                })
                .collect();
            next_clock += 1;
            per_instance.push(clocks);
        }
        // Random fair merge: per-instance order is preserved (an instance's
        // log follows its own clock order), the cross-instance interleave is
        // arbitrary — exactly the datastore's freedom.
        let mut cursors = vec![0usize; per_instance.len()];
        let mut interleave = Vec::new();
        while cursors
            .iter()
            .zip(&per_instance)
            .any(|(c, ops)| *c < ops.len())
        {
            let live: Vec<usize> = (0..per_instance.len())
                .filter(|i| cursors[*i] < per_instance[*i].len())
                .collect();
            let pick = live[rng.gen_range(0..live.len())];
            interleave.push((InstanceId(pick as u32), per_instance[pick][cursors[pick]]));
            cursors[pick] += 1;
        }
        let checkpoint_at = rng.gen_range(0..=interleave.len());
        let mut reads = Vec::new();
        for _ in 0..rng.gen_range(0..4usize) {
            let pos = rng.gen_range(0..=interleave.len());
            let reader = InstanceId(rng.gen_range(0..instances));
            let read_clock = next_clock;
            next_clock += 1;
            reads.push((pos, reader, read_clock));
        }
        Scenario {
            interleave,
            checkpoint_at,
            reads,
        }
    }

    /// Execute the scenario against a live store, crash it at the end, and
    /// assemble the recovery input exactly as the framework would: the
    /// checkpoint taken mid-stream, full per-instance write-ahead logs, and
    /// the reads issued after the checkpoint with their true `TS` snapshots.
    fn build(&self) -> (Value, RecoveryInput) {
        let k = key();
        let mut live = StoreInstance::new();
        let mut wals: HashMap<InstanceId, WriteAheadLog> = HashMap::new();
        let mut read_logs: HashMap<InstanceId, Vec<ReadLogEntry>> = HashMap::new();
        for (instance, c) in &self.interleave {
            wals.entry(*instance).or_default().append(
                clock(*c),
                k.clone(),
                Operation::Increment(1),
            );
        }

        let mut checkpoint = None;
        let mut last_applied: HashMap<InstanceId, Clock> = HashMap::new();
        let mut position = 0usize;
        let take_reads = |pos: usize,
                          live: &StoreInstance,
                          last: &HashMap<InstanceId, Clock>,
                          logs: &mut HashMap<InstanceId, Vec<ReadLogEntry>>,
                          after_checkpoint: bool| {
            for (p, reader, rc) in &self.reads {
                if *p == pos && after_checkpoint {
                    logs.entry(*reader).or_default().push(ReadLogEntry {
                        clock: clock(*rc),
                        key: k.clone(),
                        value: live.peek(&k),
                        ts: TsSnapshot::new(last.clone()),
                    });
                }
            }
        };

        take_reads(
            0,
            &live,
            &last_applied,
            &mut read_logs,
            self.checkpoint_at == 0,
        );
        if self.checkpoint_at == 0 {
            checkpoint = Some(live.checkpoint(0));
        }
        for (instance, c) in &self.interleave {
            live.apply(*instance, &k, &Operation::Increment(1), Some(clock(*c)))
                .unwrap();
            last_applied.insert(*instance, clock(*c));
            position += 1;
            if position == self.checkpoint_at {
                checkpoint = Some(live.checkpoint(0));
            }
            take_reads(
                position,
                &live,
                &last_applied,
                &mut read_logs,
                position >= self.checkpoint_at,
            );
        }

        let input = RecoveryInput {
            checkpoint: checkpoint.expect("checkpoint position within range"),
            wals,
            read_logs,
        };
        (live.peek(&k), input)
    }
}

proptest! {
    /// `entries_after` returns exactly the strict suffix, for present and
    /// absent pivot clocks alike.
    #[test]
    fn entries_after_is_the_strict_suffix(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clocks: Vec<u64> = Vec::new();
        let mut c = 0u64;
        for _ in 0..rng.gen_range(1..=20usize) {
            c += rng.gen_range(1..=4u64);
            clocks.push(c);
        }
        let mut wal = WriteAheadLog::new();
        for n in &clocks {
            wal.append(clock(*n), key(), Operation::Increment(1));
        }
        // Pivot on any counter in range, present in the log or not.
        let pivot = rng.gen_range(0..=c + 2);
        let suffix = wal.entries_after(Some(clock(pivot)));
        let expected: Vec<u64> = clocks.iter().copied().filter(|n| *n > pivot).collect();
        let got: Vec<u64> = suffix.iter().map(|e| e.clock.counter()).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(wal.entries_after(None).len(), clocks.len());
    }

    /// Truncation drops exactly the prefix and never resurrects it.
    #[test]
    fn truncation_never_resurrects(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..=30u64);
        let mut wal = WriteAheadLog::new();
        for c in 1..=n {
            wal.append(clock(c), key(), Operation::Increment(1));
        }
        let cut = rng.gen_range(0..=n + 1);
        wal.truncate_through(clock(cut));
        prop_assert_eq!(wal.len() as u64, n.saturating_sub(cut.min(n)));
        prop_assert!(wal.entries().iter().all(|e| e.clock.counter() > cut));
        // After truncation, every suffix query still excludes the prefix.
        let suffix = wal.entries_after(Some(clock(cut)));
        prop_assert_eq!(suffix.len(), wal.len());
    }

    /// The WAL's binary-search fast path (strictly increasing clocks) and its
    /// linear fallback (out-of-order or duplicate clocks, as the Figure-7
    /// drills construct) both match the original linear-scan oracle, for
    /// `entries_after` and `truncate_through` alike.
    #[test]
    fn wal_search_matches_linear_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ordered = rng.gen_bool(0.5);
        let n = rng.gen_range(1..=30usize);
        let mut clocks: Vec<u64> = Vec::new();
        let mut c = 0u64;
        for _ in 0..n {
            if ordered {
                c += rng.gen_range(1..=4u64);
                clocks.push(c);
            } else {
                // Arbitrary order, duplicates allowed.
                clocks.push(rng.gen_range(1..=20u64));
            }
        }
        let mut wal = WriteAheadLog::new();
        for ck in &clocks {
            wal.append(clock(*ck), key(), Operation::Increment(1));
        }
        let pivot = rng.gen_range(0..=22u64);

        // The pre-binary-search linear scan, verbatim.
        let oracle_suffix: Vec<u64> = match clocks.iter().position(|ck| *ck == pivot) {
            Some(idx) => clocks[idx + 1..].to_vec(),
            None => match clocks.iter().position(|ck| *ck > pivot) {
                Some(idx) => clocks[idx..].to_vec(),
                None => Vec::new(),
            },
        };
        let got: Vec<u64> = wal
            .entries_after(Some(clock(pivot)))
            .iter()
            .map(|e| e.clock.counter())
            .collect();
        prop_assert_eq!(got, oracle_suffix);

        let oracle_kept: Vec<u64> = clocks.iter().copied().filter(|ck| *ck > pivot).collect();
        wal.truncate_through(clock(pivot));
        let kept: Vec<u64> = wal.entries().iter().map(|e| e.clock.counter()).collect();
        prop_assert_eq!(kept, oracle_kept);
    }

    /// Recovery from an arbitrary checkpoint position plus the write-ahead
    /// logs reconstructs the pre-crash store: every committed operation is
    /// applied exactly once — none lost, none double-applied — whether or
    /// not reads happened since the checkpoint (Cases 1 and 2 of Figure 7).
    #[test]
    fn recovery_applies_every_op_exactly_once(seed in any::<u64>()) {
        let scenario = Scenario::generate(seed);
        let (live_value, input) = scenario.build();
        let total_ops = scenario.interleave.len() as i64;
        prop_assert_eq!(live_value.as_int(), total_ops);

        let (recovered, report) = recover_shared_state(&input);
        prop_assert_eq!(
            recovered.peek(&key()).as_int(),
            total_ops,
            "lost or double-applied updates (case {})", report.case
        );
        // The replayed suffix is bounded by what the checkpoint had not yet
        // absorbed.
        prop_assert!(report.replayed_ops <= scenario.interleave.len());
        if input.read_logs.values().all(|v| v.is_empty()) {
            prop_assert_eq!(report.case, 1);
        }
    }
}
