//! Property tests for the batched store fast path: for arbitrary operation
//! sequences, key spreads, clock tags (including duplicates) and batch
//! partitions, [`StoreServer::apply_batch`] must be observationally
//! indistinguishable from the same ops applied sequentially —
//!
//! * identical per-op results (outcome, callback fan-out, new value),
//! * identical final store dumps, and
//! * identical dumps after crashing every shard and rebuilding it from the
//!   journal (`recover_shard`), i.e. a batch journal record replays exactly
//!   like the equivalent run of single-op records.
//!
//! The properties run as a matrix over both storage backends — the servers
//! under comparison are built per [`BackendKind`], including a cross-engine
//! case (sequential on memory vs batched on append-only files), so batching
//! and durability cannot drift apart on either engine.
//!
//! The vendored proptest shim has no collection strategies, so each case
//! draws a seed and derives its random scenario from a `StdRng` — failures
//! stay reproducible because the seed is part of the case.

use chc_store::{
    BackendKind, Clock, Condition, InstanceId, ObjectKey, Operation, StateKey, StoreServer, Value,
    VertexId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SHARDS: usize = 4;

fn key(i: usize) -> StateKey {
    StateKey::shared(VertexId((i % 3) as u32), ObjectKey::named(&format!("k{i}")))
}

fn random_op(rng: &mut StdRng) -> Operation {
    match rng.gen_range(0..8u32) {
        0 => Operation::Get,
        1 => Operation::Set(Value::Int(rng.gen_range(-50..50))),
        2 => Operation::Delete,
        3 => Operation::Increment(rng.gen_range(1..5)),
        4 => Operation::Decrement(rng.gen_range(1..5)),
        5 => Operation::PushBack(Value::Int(rng.gen_range(0..100))),
        6 => Operation::PopFront,
        _ => Operation::CompareAndUpdate {
            condition: Condition::Equals(Value::Int(rng.gen_range(-2..3))),
            new: Value::Int(rng.gen_range(0..10)),
        },
    }
}

/// A randomized op sequence plus the partition that the batched server
/// submits it in. Clock counters repeat sometimes, so duplicate suppression
/// fires in both submission modes.
struct Scenario {
    ops: Vec<(StateKey, Operation, Option<Clock>)>,
    batch_ends: Vec<usize>,
    checkpoint_after_batch: Option<usize>,
}

impl Scenario {
    fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = rng.gen_range(1..=6usize);
        let n = rng.gen_range(1..=40usize);
        let mut counter = 0u64;
        let ops: Vec<(StateKey, Operation, Option<Clock>)> = (0..n)
            .map(|_| {
                let k = key(rng.gen_range(0..keys));
                let op = random_op(&mut rng);
                // Mostly fresh clocks, some repeats (duplicate-suppressed
                // redeliveries), some untagged ops.
                let clock = match rng.gen_range(0..10u32) {
                    0 => None,
                    1 if counter > 0 => Some(Clock::with_root(0, rng.gen_range(0..counter))),
                    _ => {
                        counter += 1;
                        Some(Clock::with_root(0, counter))
                    }
                };
                (k, op, clock)
            })
            .collect();
        // Random batch partition: cut points anywhere, so batches span one
        // op (the delegating fast path) up to the whole sequence.
        let mut batch_ends = Vec::new();
        let mut at = 0usize;
        while at < n {
            at = (at + rng.gen_range(1..=8usize)).min(n);
            batch_ends.push(at);
        }
        let checkpoint_after_batch = if rng.gen_bool(0.5) {
            Some(rng.gen_range(0..batch_ends.len()))
        } else {
            None
        };
        Scenario {
            ops,
            batch_ends,
            checkpoint_after_batch,
        }
    }
}

fn journaled_server(kind: BackendKind) -> Arc<StoreServer> {
    let server = StoreServer::with_backend(SHARDS, kind);
    for s in 0..SHARDS {
        server.set_shard_journaling(s, true);
    }
    server
}

/// A shard-order-independent, comparable image of a server's contents.
fn sorted_dump(server: &StoreServer) -> Vec<String> {
    let mut dump: Vec<String> = server
        .dump()
        .into_iter()
        .map(|entry| format!("{entry:?}"))
        .collect();
    dump.sort();
    dump
}

/// One equivalence case: sequential submission on a `seq_kind` server vs
/// batched submission on a `bat_kind` server, then crash-and-recover both.
/// The shim's `prop_assert*` macros are plain asserts, so this helper runs
/// inside any proptest body.
fn equivalence_case(seed: u64, seq_kind: BackendKind, bat_kind: BackendKind) {
    let scenario = Scenario::generate(seed);
    let requester = InstanceId(7);
    let seq = journaled_server(seq_kind);
    let bat = journaled_server(bat_kind);

    let seq_results: Vec<_> = scenario
        .ops
        .iter()
        .map(|(k, op, clock)| seq.apply(requester, k, op, *clock))
        .collect();

    let mut bat_results = Vec::new();
    let mut start = 0usize;
    for (b, &end) in scenario.batch_ends.iter().enumerate() {
        bat_results.extend(bat.apply_batch(requester, &scenario.ops[start..end]));
        if scenario.checkpoint_after_batch == Some(b) {
            for s in 0..SHARDS {
                bat.checkpoint_shard(s);
            }
        }
        start = end;
    }

    // Per-op results: outcome, callback fan-out and new value, in
    // submission order.
    assert_eq!(&seq_results, &bat_results);
    // Logical op accounting matches (batch entries count per op).
    assert_eq!(seq.total_ops(), bat.total_ops());
    // Same store image.
    assert_eq!(sorted_dump(&seq), sorted_dump(&bat));

    // Crash every shard of both servers and rebuild from the journals:
    // one ApplyBatch record must replay exactly like the run of
    // single-op Apply records, metadata included — on either engine.
    let image = sorted_dump(&seq);
    for s in 0..SHARDS {
        seq.crash_shard(s);
        bat.crash_shard(s);
        seq.recover_shard(s);
        bat.recover_shard(s);
    }
    assert_eq!(sorted_dump(&seq), image.clone());
    assert_eq!(sorted_dump(&bat), image);
}

proptest! {
    /// Batched submission returns the same per-op results and leaves the
    /// same store image as sequential submission, and both images survive a
    /// crash of every shard followed by journal recovery — with or without
    /// a mid-stream shard checkpoint cutting the journal. In-memory engine.
    #[test]
    fn apply_batch_is_equivalent_to_sequential_apply(seed in any::<u64>()) {
        equivalence_case(seed, BackendKind::Memory, BackendKind::Memory);
    }

    /// The same equivalence on the append-only flat-file engine: batching,
    /// durable journaling and checkpoint compaction compose.
    #[test]
    fn apply_batch_is_equivalent_on_append_only(seed in any::<u64>()) {
        equivalence_case(seed, BackendKind::AppendOnly, BackendKind::AppendOnly);
    }

    /// Cross-engine: a batched append-only server converges to the same
    /// image as a sequential in-memory server, so the engines cannot drift
    /// from each other either.
    #[test]
    fn append_only_batches_match_memory_sequential(seed in any::<u64>()) {
        equivalence_case(seed, BackendKind::Memory, BackendKind::AppendOnly);
    }

    /// Duplicate-suppression clocks survive the batch path: redelivering an
    /// already-applied clock inside a batch is a no-op, exactly as it is on
    /// the sequential path. Runs on both engines.
    #[test]
    fn batched_redelivery_is_suppressed(seed in any::<u64>()) {
        for kind in [BackendKind::Memory, BackendKind::AppendOnly] {
            let mut rng = StdRng::seed_from_u64(seed);
            let server = journaled_server(kind);
            let requester = InstanceId(1);
            let k = key(rng.gen_range(0..4));
            let n = rng.gen_range(1..=10u64);
            let ops: Vec<(StateKey, Operation, Option<Clock>)> = (1..=n)
                .map(|c| (k.clone(), Operation::Increment(1), Some(Clock::with_root(0, c))))
                .collect();
            for r in server.apply_batch(requester, &ops) {
                prop_assert!(r.is_ok());
            }
            prop_assert_eq!(server.peek(&k), Value::Int(n as i64));
            // Redeliver the whole batch: every op is suppressed by its clock.
            server.apply_batch(requester, &ops);
            prop_assert_eq!(server.peek(&k), Value::Int(n as i64));
        }
    }
}
