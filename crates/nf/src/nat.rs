//! Source NAT (§6 "NAT", Table 4).
//!
//! The NAT keeps a dynamic pool of available public ports in the datastore.
//! On a new connection it pops a free port (the store performs the pop on its
//! behalf, so concurrent instances never hand out the same port), records the
//! per-connection port mapping, and rewrites the source port of outbound /
//! the destination port of inbound packets. It also maintains two chain-wide
//! packet counters updated on every packet.

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{Direction, Packet, Protocol, Scope, ScopeKey};
use chc_store::{AccessPattern, Condition, Operation, Value};

/// Name of the free-port pool object.
pub const FREE_PORTS: &str = "free_ports";
/// Name of the per-connection port-mapping object.
pub const PORT_MAP: &str = "port_map";
/// Name of the total-packet counter.
pub const PKT_COUNT: &str = "pkt_count";
/// Name of the TCP-packet counter.
pub const TCP_PKT_COUNT: &str = "tcp_pkt_count";

/// A source NAT network function.
pub struct Nat {
    /// First port of the pool handed out on initialisation.
    pool_start: u16,
    /// Number of ports in the pool.
    pool_size: u16,
    /// Whether the pool has been pushed to the store yet.
    pool_initialised: bool,
}

impl Nat {
    /// Create a NAT managing `pool_size` public ports starting at
    /// `pool_start`.
    pub fn new(pool_start: u16, pool_size: u16) -> Nat {
        Nat {
            pool_start,
            pool_size,
            pool_initialised: false,
        }
    }

    fn ensure_pool(&mut self, ctx: &mut NfContext<'_>) {
        if self.pool_initialised {
            return;
        }
        self.pool_initialised = true;
        // Seed the pool at most once chain-wide. A read-then-push sequence
        // would double-seed when two instances start concurrently (and would
        // re-seed a legitimately exhausted pool); instead the whole pool is
        // installed with an offloaded compare-and-update (Table 2 row 3)
        // whose "absent" condition the store evaluates under serialization —
        // exactly one instance's attempt wins on any substrate.
        let existing = ctx.read(FREE_PORTS, None);
        if !existing.is_none() {
            return;
        }
        let pool = Value::list_of_ints((0..self.pool_size).map(|i| (self.pool_start + i) as i64));
        ctx.update(
            FREE_PORTS,
            None,
            Operation::CompareAndUpdate {
                condition: Condition::Absent,
                new: pool,
            },
        );
    }

    fn connection_scope(packet: &Packet) -> ScopeKey {
        ScopeKey::Flow(packet.connection_key())
    }
}

impl Default for Nat {
    fn default() -> Self {
        Nat::new(20_000, 4_096)
    }
}

impl NetworkFunction for Nat {
    fn name(&self) -> &str {
        "nat"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![
            // Available ports: cross-flow, write/read often.
            StateObjectSpec::cross_flow(FREE_PORTS, Scope::Global, AccessPattern::ReadWriteOften),
            // Total TCP packets / total packets: cross-flow, write mostly.
            StateObjectSpec::cross_flow(
                TCP_PKT_COUNT,
                Scope::Global,
                AccessPattern::WriteMostlyReadRarely,
            ),
            StateObjectSpec::cross_flow(
                PKT_COUNT,
                Scope::Global,
                AccessPattern::WriteMostlyReadRarely,
            ),
            // Per-connection port mapping: per-flow, write rarely read mostly.
            StateObjectSpec::per_flow(PORT_MAP, AccessPattern::ReadMostly),
        ]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        self.ensure_pool(ctx);
        let conn = Self::connection_scope(packet);

        // Counters are updated on every packet (non-blocking, write-mostly).
        ctx.increment(PKT_COUNT, None, 1);
        if packet.tuple.protocol == Protocol::Tcp {
            ctx.increment(TCP_PKT_COUNT, None, 1);
        }

        // Allocate a public port for new outbound connections.
        let mut mapping = ctx.read(PORT_MAP, Some(conn));
        if mapping.is_none() && packet.is_connection_attempt() {
            let allocated = ctx.update(FREE_PORTS, None, Operation::PopFront);
            let port = match allocated {
                Value::Int(p) if p > 0 => p,
                // Pool exhausted: the paper's NAT would drop the connection.
                _ => return Action::Drop,
            };
            ctx.set(PORT_MAP, Some(conn), Value::Int(port));
            mapping = Value::Int(port);
        }

        // Rewrite ports according to the mapping (if any).
        let mut out = packet.clone();
        if let Value::Int(port) = mapping {
            match packet.direction {
                Direction::FromInitiator => out.tuple.src_port = port as u16,
                Direction::FromResponder => out.tuple.dst_port = port as u16,
            }
        }
        Action::Forward(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::SharedStore;
    use chc_packet::{FiveTuple, TcpFlags};
    use chc_sim::VirtualTime;
    use chc_store::Clock;
    use std::net::Ipv4Addr;

    fn pkt(sport: u16, flags: TcpFlags, dir: Direction) -> Packet {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sport,
            Ipv4Addr::new(54, 0, 0, 1),
            80,
        );
        let t = if dir == Direction::FromResponder {
            t.reversed()
        } else {
            t
        };
        Packet::builder()
            .tuple(t)
            .direction(dir)
            .flags(flags)
            .len(100)
            .build()
    }

    fn process(nat: &mut Nat, client: &mut chc_core::StateClient, p: &Packet, n: u64) -> Action {
        let mut ctx = NfContext::new(client, Clock::with_root(0, n), VirtualTime::ZERO);
        nat.process(p, &mut ctx)
    }

    #[test]
    fn allocates_port_on_syn_and_keeps_mapping() {
        let store = SharedStore::new();
        let mut nat = Nat::new(30_000, 16);
        let mut client = client_for(&nat, &store, 0);
        let syn = pkt(5555, TcpFlags::SYN, Direction::FromInitiator);
        let out = process(&mut nat, &mut client, &syn, 1);
        let Action::Forward(out) = out else {
            panic!("expected forward")
        };
        assert_eq!(out.tuple.src_port, 30_000);
        // Subsequent packets of the same connection reuse the mapping.
        let data = pkt(5555, TcpFlags::ACK, Direction::FromInitiator);
        let Action::Forward(out2) = process(&mut nat, &mut client, &data, 2) else {
            panic!()
        };
        assert_eq!(out2.tuple.src_port, 30_000);
        // The reverse direction rewrites the destination port.
        let reply = pkt(5555, TcpFlags::ACK, Direction::FromResponder);
        let Action::Forward(back) = process(&mut nat, &mut client, &reply, 3) else {
            panic!()
        };
        assert_eq!(back.tuple.dst_port, 30_000);
        // Counters were updated once per packet.
        assert_eq!(
            store.with(|s| s.peek(&client.state_key(PKT_COUNT, None))),
            Value::Int(3)
        );
        assert_eq!(
            store.with(|s| s.peek(&client.state_key(TCP_PKT_COUNT, None))),
            Value::Int(3)
        );
    }

    #[test]
    fn different_connections_get_different_ports() {
        let store = SharedStore::new();
        let mut nat = Nat::new(30_000, 16);
        let mut client = client_for(&nat, &store, 0);
        let a = pkt(1111, TcpFlags::SYN, Direction::FromInitiator);
        let b = pkt(2222, TcpFlags::SYN, Direction::FromInitiator);
        let Action::Forward(oa) = process(&mut nat, &mut client, &a, 1) else {
            panic!()
        };
        let Action::Forward(ob) = process(&mut nat, &mut client, &b, 2) else {
            panic!()
        };
        assert_ne!(oa.tuple.src_port, ob.tuple.src_port);
    }

    #[test]
    fn pool_exhaustion_drops_new_connections() {
        let store = SharedStore::new();
        let mut nat = Nat::new(40_000, 1);
        let mut client = client_for(&nat, &store, 0);
        let a = pkt(1111, TcpFlags::SYN, Direction::FromInitiator);
        let b = pkt(2222, TcpFlags::SYN, Direction::FromInitiator);
        assert!(process(&mut nat, &mut client, &a, 1).is_forward());
        assert_eq!(process(&mut nat, &mut client, &b, 2), Action::Drop);
    }

    #[test]
    fn two_instances_share_the_port_pool() {
        let store = SharedStore::new();
        let mut nat1 = Nat::new(50_000, 4);
        let mut nat2 = Nat::new(50_000, 4);
        let mut c1 = client_for(&nat1, &store, 1);
        let mut c2 = client_for(&nat2, &store, 2);
        let mut ports = Vec::new();
        for (i, sport) in [(1u64, 1000u16), (2, 2000), (3, 3000), (4, 4000)] {
            let p = pkt(sport, TcpFlags::SYN, Direction::FromInitiator);
            let (nat, client) = if i % 2 == 0 {
                (&mut nat2, &mut c2)
            } else {
                (&mut nat1, &mut c1)
            };
            let Action::Forward(out) = process(nat, client, &p, i) else {
                panic!()
            };
            ports.push(out.tuple.src_port);
        }
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4, "no port handed out twice across instances");
    }
}
