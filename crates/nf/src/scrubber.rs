//! Traffic scrubber (the middle hop of the Figure 2 chain).
//!
//! The scrubber normalises traffic before it reaches detection NFs; for the
//! reproduction it validates packets (dropping malformed ones) and keeps a
//! per-flow packet counter. The R4 experiment slows scrubber instances down
//! with the framework's processing-delay knob to emulate resource contention
//! or recovery — the scrubber itself stays oblivious.

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{Packet, ScopeKey};
use chc_store::AccessPattern;

/// Name of the per-flow scrubbed-packet counter.
pub const SCRUBBED: &str = "scrubbed_pkts";

/// A pass-through traffic scrubber.
#[derive(Default)]
pub struct Scrubber;

impl Scrubber {
    /// Create a scrubber.
    pub fn new() -> Scrubber {
        Scrubber
    }
}

impl NetworkFunction for Scrubber {
    fn name(&self) -> &str {
        "scrubber"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![StateObjectSpec::per_flow(
            SCRUBBED,
            AccessPattern::WriteMostlyReadRarely,
        )]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        // Malformed packets (zero length) are scrubbed away.
        if packet.len == 0 {
            return Action::Drop;
        }
        ctx.increment(SCRUBBED, Some(ScopeKey::Flow(packet.connection_key())), 1);
        Action::Forward(packet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::SharedStore;
    use chc_sim::VirtualTime;
    use chc_store::Clock;

    #[test]
    fn forwards_and_counts() {
        let store = SharedStore::new();
        let mut s = Scrubber::new();
        let mut c = client_for(&s, &store, 0);
        let pkt = Packet::builder().len(100).build();
        let mut ctx = NfContext::new(&mut c, Clock::with_root(0, 1), VirtualTime::ZERO);
        assert!(s.process(&pkt, &mut ctx).is_forward());
        let mut bad = Packet::builder().len(100).build();
        bad.len = 0;
        let mut ctx = NfContext::new(&mut c, Clock::with_root(0, 2), VirtualTime::ZERO);
        assert_eq!(s.process(&bad, &mut ctx), Action::Drop);
    }
}
