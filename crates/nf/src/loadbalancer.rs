//! Layer-4 load balancer (§6, Table 4).
//!
//! The load balancer tracks the active connection count of every backend
//! server. A new connection is assigned to the least-loaded backend (the
//! datastore performs the selection on the NF's behalf, so concurrent
//! instances agree); the connection-to-server mapping is per-flow state, and
//! a per-server byte counter is updated on every packet.

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{Direction, Packet, Scope, ScopeKey, TcpEvent};
use chc_store::{AccessPattern, Condition, Operation, Value};
use std::net::Ipv4Addr;

/// Name of the per-backend active-connection table (one list object).
pub const SERVER_CONNS: &str = "server_conns";
/// Name of the per-backend byte counter.
pub const SERVER_BYTES: &str = "server_bytes";
/// Name of the per-connection backend mapping.
pub const CONN_SERVER: &str = "conn_server";

/// Least-loaded L4 load balancer.
pub struct LoadBalancer {
    backends: Vec<Ipv4Addr>,
    initialised: bool,
}

impl LoadBalancer {
    /// Create a load balancer spreading connections over `backends`.
    pub fn new(backends: Vec<Ipv4Addr>) -> LoadBalancer {
        LoadBalancer {
            backends,
            initialised: false,
        }
    }

    /// Default pool of four backends (10.99.0.1-4).
    pub fn with_default_backends() -> LoadBalancer {
        LoadBalancer::new((1..=4).map(|i| Ipv4Addr::new(10, 99, 0, i)).collect())
    }

    /// The configured backends.
    pub fn backends(&self) -> &[Ipv4Addr] {
        &self.backends
    }

    fn ensure_table(&mut self, ctx: &mut NfContext<'_>) {
        if self.initialised {
            return;
        }
        self.initialised = true;
        let existing = ctx.read(SERVER_CONNS, None);
        if !existing.is_none() {
            return;
        }
        // Install the zeroed table at most once chain-wide: the store
        // evaluates the "absent" condition under serialization, so
        // concurrently starting instances cannot clobber live counts.
        ctx.update(
            SERVER_CONNS,
            None,
            Operation::CompareAndUpdate {
                condition: Condition::Absent,
                new: Value::list_of_ints(self.backends.iter().map(|_| 0i64)),
            },
        );
    }

    fn pick_least_loaded(table: &Value) -> usize {
        table
            .as_list()
            .map(|l| {
                l.iter()
                    .enumerate()
                    .min_by_key(|(_, v)| v.as_int())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    fn adjust(table: &Value, idx: usize, delta: i64) -> Value {
        let mut list = table.as_list().cloned().unwrap_or_default();
        while list.len() <= idx {
            list.push_back(Value::Int(0));
        }
        let v = list[idx].as_int() + delta;
        list[idx] = Value::Int(v.max(0));
        Value::List(list)
    }
}

impl NetworkFunction for LoadBalancer {
    fn name(&self) -> &str {
        "load-balancer"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![
            // Per-server active connections: cross-flow, write/read often.
            StateObjectSpec::cross_flow(SERVER_CONNS, Scope::Global, AccessPattern::ReadWriteOften),
            // Per-server byte counter: cross-flow, write mostly read rarely.
            StateObjectSpec::cross_flow(
                SERVER_BYTES,
                Scope::DstIp,
                AccessPattern::WriteMostlyReadRarely,
            ),
            // Connection-to-server mapping: per-flow, write rarely read mostly.
            StateObjectSpec::per_flow(CONN_SERVER, AccessPattern::ReadMostly),
        ]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        self.ensure_table(ctx);
        let conn = ScopeKey::Flow(packet.connection_key());

        // Assign new connections to the least-loaded backend.
        let mut assigned = ctx.read(CONN_SERVER, Some(conn)).as_int();
        if packet.is_connection_attempt() && assigned == 0 {
            let table = ctx.read(SERVER_CONNS, None);
            let idx = Self::pick_least_loaded(&table);
            ctx.set(SERVER_CONNS, None, Self::adjust(&table, idx, 1));
            // store 1-based index so "0" can mean "unassigned"
            ctx.set(CONN_SERVER, Some(conn), Value::Int(idx as i64 + 1));
            assigned = idx as i64 + 1;
        }
        if assigned == 0 {
            // Mid-connection packet of a connection we never saw (e.g. trace
            // tail after scaling); forward unmodified.
            return Action::Forward(packet.clone());
        }
        let idx = (assigned - 1) as usize;
        let backend = self
            .backends
            .get(idx)
            .copied()
            .unwrap_or(packet.responder());

        // Per-server byte counter on every packet (write-mostly).
        ctx.increment(
            SERVER_BYTES,
            Some(ScopeKey::Host(backend)),
            packet.len as i64,
        );

        // Connection teardown releases the backend slot.
        if matches!(
            packet.tcp_event(true),
            TcpEvent::ConnectionClosed | TcpEvent::ConnectionReset
        ) {
            let table = ctx.read(SERVER_CONNS, None);
            ctx.set(SERVER_CONNS, None, Self::adjust(&table, idx, -1));
        }

        // Rewrite the destination (or source for return traffic) to the
        // chosen backend.
        let mut out = packet.clone();
        match packet.direction {
            Direction::FromInitiator => out.tuple.dst_ip = backend,
            Direction::FromResponder => out.tuple.src_ip = backend,
        }
        Action::Forward(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::{SharedStore, StateClient};
    use chc_packet::{FiveTuple, TcpFlags};
    use chc_sim::VirtualTime;
    use chc_store::Clock;

    fn syn(sport: u16) -> Packet {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sport,
            Ipv4Addr::new(54, 0, 0, 9),
            80,
        );
        Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::SYN)
            .len(64)
            .build()
    }

    fn fin(sport: u16) -> Packet {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sport,
            Ipv4Addr::new(54, 0, 0, 9),
            80,
        );
        Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::FIN | TcpFlags::ACK)
            .len(64)
            .build()
    }

    fn run(lb: &mut LoadBalancer, c: &mut StateClient, p: &Packet, n: u64) -> Packet {
        let mut ctx = NfContext::new(c, Clock::with_root(0, n), VirtualTime::ZERO);
        match lb.process(p, &mut ctx) {
            Action::Forward(out) => out,
            Action::Drop => panic!("LB never drops"),
        }
    }

    #[test]
    fn new_connections_spread_across_backends() {
        let store = SharedStore::new();
        let mut lb = LoadBalancer::with_default_backends();
        let mut c = client_for(&lb, &store, 0);
        let mut chosen = Vec::new();
        for (i, sport) in (1..=4u16).enumerate() {
            let out = run(&mut lb, &mut c, &syn(sport), i as u64 + 1);
            chosen.push(out.tuple.dst_ip);
        }
        chosen.sort_unstable();
        chosen.dedup();
        assert_eq!(
            chosen.len(),
            4,
            "least-loaded selection spreads the first four connections"
        );
    }

    #[test]
    fn connection_stickiness_and_release() {
        let store = SharedStore::new();
        let mut lb = LoadBalancer::with_default_backends();
        let mut c = client_for(&lb, &store, 0);
        let first = run(&mut lb, &mut c, &syn(1000), 1);
        // A data packet of the same connection keeps the same backend.
        let mut data = syn(1000);
        data.flags = TcpFlags::ACK;
        let second = run(&mut lb, &mut c, &data, 2);
        assert_eq!(first.tuple.dst_ip, second.tuple.dst_ip);
        // Closing the connection frees the slot; the next connection can pick
        // the same backend again (it is the least loaded once more).
        run(&mut lb, &mut c, &fin(1000), 3);
        let table = c.read(SERVER_CONNS, None, Clock::with_root(0, 4));
        let total: i64 = table.as_list().unwrap().iter().map(|v| v.as_int()).sum();
        assert_eq!(total, 0, "all slots released");
    }

    #[test]
    fn byte_counters_accumulate_per_backend() {
        let store = SharedStore::new();
        let mut lb = LoadBalancer::with_default_backends();
        let mut c = client_for(&lb, &store, 0);
        let out = run(&mut lb, &mut c, &syn(2000), 1);
        let backend = out.tuple.dst_ip;
        let mut data = syn(2000);
        data.flags = TcpFlags::ACK;
        data.len = 1500;
        run(&mut lb, &mut c, &data, 2);
        let key = c.state_key(SERVER_BYTES, Some(ScopeKey::Host(backend)));
        assert_eq!(store.with(|s| s.peek(&key)).as_int(), 64 + 1500);
    }
}
