//! Portscan detector (§6, Table 4; Schechter et al. [26]).
//!
//! Threshold-random-walk style detection: each connection attempt by a host
//! moves the host's "likelihood of being malicious" up (refused attempt) or
//! down (accepted attempt). A host whose likelihood crosses the threshold is
//! reported and its subsequent traffic dropped. Likelihood is cross-flow
//! state keyed by source host — the canonical example of shared state that
//! cannot be partitioned away when flows of one host land on different
//! instances (Figure 9 experiment).

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{Packet, Scope, ScopeKey, TcpEvent};
use chc_store::{AccessPattern, Value};

/// Name of the per-host likelihood object.
pub const LIKELIHOOD: &str = "likelihood";
/// Name of the per-connection pending-attempt object.
pub const PENDING: &str = "pending_conn";

/// Scale factor applied to the likelihood score (stored as an integer).
const UP: i64 = 2;
const DOWN: i64 = 1;

/// TRW-style portscan detector.
pub struct PortscanDetector {
    /// Likelihood value at which a host is declared malicious and blocked.
    threshold: i64,
}

impl PortscanDetector {
    /// Create a detector that blocks a host once its likelihood reaches
    /// `threshold` (each refused attempt adds 2, each accepted one subtracts
    /// 1, never below zero).
    pub fn new(threshold: i64) -> PortscanDetector {
        PortscanDetector { threshold }
    }
}

impl Default for PortscanDetector {
    fn default() -> Self {
        PortscanDetector::new(10)
    }
}

impl NetworkFunction for PortscanDetector {
    fn name(&self) -> &str {
        "portscan-detector"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![
            // Likelihood of being malicious (per host): cross-flow, write/read often.
            StateObjectSpec::cross_flow(LIKELIHOOD, Scope::SrcIp, AccessPattern::ReadWriteOften),
            // Pending connection-initiation requests: per-flow, write/read often.
            StateObjectSpec::per_flow(PENDING, AccessPattern::ReadWriteOften),
        ]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        let host = ScopeKey::Host(packet.initiator());
        let conn = ScopeKey::Flow(packet.connection_key());

        // Is this host already blocked?
        let likelihood = ctx.read(LIKELIHOOD, Some(host)).as_int();
        if likelihood >= self.threshold {
            return Action::Drop;
        }

        match packet.tcp_event(false) {
            TcpEvent::ConnectionAttempt => {
                // Remember the pending attempt with the packet's clock.
                ctx.set(PENDING, Some(conn), Value::Int(ctx.clock().0 as i64));
            }
            TcpEvent::ConnectionAccepted => {
                let pending = ctx.read(PENDING, Some(conn));
                if !pending.is_none() {
                    ctx.set(PENDING, Some(conn), Value::None);
                    let v = ctx.decrement(LIKELIHOOD, Some(host), DOWN).as_int();
                    if v < 0 {
                        ctx.set(LIKELIHOOD, Some(host), Value::Int(0));
                    }
                }
            }
            TcpEvent::ConnectionRefused => {
                let pending = ctx.read(PENDING, Some(conn));
                if !pending.is_none() {
                    ctx.set(PENDING, Some(conn), Value::None);
                }
                let v = ctx.increment(LIKELIHOOD, Some(host), UP).as_int();
                if v >= self.threshold {
                    ctx.alert(format!("portscan: blocking host {}", packet.initiator()));
                }
            }
            _ => {}
        }
        Action::Forward(packet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::{Action, SharedStore, StateClient};
    use chc_packet::{Direction, FiveTuple, TcpFlags};
    use chc_sim::VirtualTime;
    use chc_store::Clock;
    use std::net::Ipv4Addr;

    fn attempt(host: u8, port: u16) -> (Packet, Packet) {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, host),
            40_000 + port,
            Ipv4Addr::new(54, 0, 0, 1),
            port,
        );
        let syn = Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::SYN)
            .build();
        let rst = Packet::builder()
            .tuple(t.reversed())
            .direction(Direction::FromResponder)
            .flags(TcpFlags::RST)
            .build();
        (syn, rst)
    }

    fn run(
        nf: &mut PortscanDetector,
        client: &mut StateClient,
        p: &Packet,
        n: u64,
    ) -> (Action, Vec<String>) {
        let mut ctx = NfContext::new(client, Clock::with_root(0, n), VirtualTime::ZERO);
        let a = nf.process(p, &mut ctx);
        (a, ctx.take_alerts())
    }

    #[test]
    fn repeated_refusals_block_the_scanner() {
        let store = SharedStore::new();
        let mut nf = PortscanDetector::new(6);
        let mut client = client_for(&nf, &store, 0);
        let mut clock = 0;
        let mut alerts = Vec::new();
        for port in 1..=3u16 {
            let (syn, rst) = attempt(9, port);
            clock += 1;
            alerts.extend(run(&mut nf, &mut client, &syn, clock).1);
            clock += 1;
            alerts.extend(run(&mut nf, &mut client, &rst, clock).1);
        }
        assert_eq!(alerts.len(), 1, "exactly one blocking alert");
        assert!(alerts[0].contains("10.0.0.9"));
        // Further traffic from the blocked host is dropped.
        let (syn, _) = attempt(9, 99);
        let (action, _) = run(&mut nf, &mut client, &syn, clock + 1);
        assert_eq!(action, Action::Drop);
        // An innocent host is unaffected.
        let (syn, _) = attempt(10, 80);
        assert!(run(&mut nf, &mut client, &syn, clock + 2).0.is_forward());
    }

    #[test]
    fn successful_connections_lower_the_likelihood() {
        let store = SharedStore::new();
        let mut nf = PortscanDetector::new(4);
        let mut client = client_for(&nf, &store, 0);
        // one refusal (+2)
        let (syn, rst) = attempt(7, 1);
        run(&mut nf, &mut client, &syn, 1);
        run(&mut nf, &mut client, &rst, 2);
        // one success (-1)
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 7),
            41_000,
            Ipv4Addr::new(54, 0, 0, 1),
            80,
        );
        let syn = Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::SYN)
            .build();
        let synack = Packet::builder()
            .tuple(t.reversed())
            .direction(Direction::FromResponder)
            .flags(TcpFlags::SYN_ACK)
            .build();
        run(&mut nf, &mut client, &syn, 3);
        run(&mut nf, &mut client, &synack, 4);
        let host = ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 7));
        let v = store.with(|s| s.peek(&client.state_key(LIKELIHOOD, Some(host))));
        assert_eq!(v.as_int(), 1);
    }

    #[test]
    fn two_instances_share_likelihood_state() {
        // The same scanner's attempts observed by two different detector
        // instances still accumulate into one likelihood value (R3).
        let store = SharedStore::new();
        let mut a = PortscanDetector::new(6);
        let mut b = PortscanDetector::new(6);
        let mut ca = client_for(&a, &store, 1);
        let mut cb = client_for(&b, &store, 2);
        // The framework revokes exclusive caching of the shared likelihood
        // object when the traffic split makes both instances process the same
        // hosts (Table 1 row 4); emulate that here since there is no chain.
        ca.set_exclusive(LIKELIHOOD, false, Clock::with_root(0, 0));
        cb.set_exclusive(LIKELIHOOD, false, Clock::with_root(0, 0));
        let mut alerts = Vec::new();
        for port in 1..=3u16 {
            let (syn, rst) = attempt(5, port);
            if port % 2 == 0 {
                alerts.extend(run(&mut a, &mut ca, &syn, port as u64 * 10).1);
                alerts.extend(run(&mut a, &mut ca, &rst, port as u64 * 10 + 1).1);
            } else {
                alerts.extend(run(&mut b, &mut cb, &syn, port as u64 * 10).1);
                alerts.extend(run(&mut b, &mut cb, &rst, port as u64 * 10 + 1).1);
            }
        }
        assert_eq!(
            alerts.len(),
            1,
            "blocking decision made across instances: {alerts:?}"
        );
    }
}
