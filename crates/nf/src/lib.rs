//! # chc-nf
//!
//! Network functions implemented on the CHC framework, matching the NFs the
//! paper re-implements atop its prototype (§6, Table 4) plus the two helper
//! NFs of the Figure 2 chain:
//!
//! * [`Nat`] — source NAT with an externalized free-port pool, per-connection
//!   port mappings and L3/L4 packet counters,
//! * [`PortscanDetector`] — TRW-style scan detector (Schechter et al.): per
//!   host likelihood updated on connection attempts/refusals, host blocked
//!   above a threshold,
//! * [`TrojanDetector`] — off-path detector of the SSH → FTP(HTML, ZIP, EXE)
//!   → IRC sequence, keyed on chain-wide logical clocks (requirement R4),
//! * [`LoadBalancer`] — least-loaded backend selection with per-connection
//!   stickiness and per-server counters,
//! * [`Firewall`] — a simple port/destination blocker (used in the Fig. 2
//!   chain ahead of the scrubbers),
//! * [`Scrubber`] — a pass-through traffic scrubber (the Fig. 2 middle hop;
//!   experiments slow it down to emulate resource contention).
//!
//! Every NF is written against [`chc_core::NetworkFunction`] and declares its
//! state objects with the scope / access pattern of Table 4, so the framework
//! can apply the corresponding caching and partitioning strategies.

pub mod firewall;
pub mod loadbalancer;
pub mod nat;
pub mod portscan;
pub mod scrubber;
pub mod trojan;

pub use firewall::Firewall;
pub use loadbalancer::LoadBalancer;
pub use nat::Nat;
pub use portscan::PortscanDetector;
pub use scrubber::Scrubber;
pub use trojan::TrojanDetector;

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers for exercising NFs outside a full chain.
    use chc_core::{ChainConfig, ExternalizationMode, NetworkFunction, SharedStore, StateClient};
    use chc_store::{InstanceId, VertexId};

    /// Build a [`StateClient`] for `nf` backed by `store`.
    pub fn client_for(nf: &dyn NetworkFunction, store: &SharedStore, instance: u32) -> StateClient {
        let cfg = ChainConfig::with_mode(ExternalizationMode::ExternalizedCachedNonBlocking);
        StateClient::new(
            VertexId(7),
            InstanceId(instance),
            Box::new(store.clone()),
            cfg.mode,
            cfg.costs,
            &nf.state_objects(),
        )
    }
}
