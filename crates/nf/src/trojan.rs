//! Off-path Trojan detector (§2.1, §6; De Carli et al. [12]).
//!
//! The detector watches a copy of the traffic and flags a host that performs,
//! *in this order*: (1) an SSH connection, (2) FTP downloads of an HTML, a
//! ZIP and an EXE file, and (3) IRC activity. A different order does not
//! indicate a Trojan, so the detector must reason about the true order in
//! which connections entered the network — requirement R4. In CHC it uses the
//! chain-wide logical clock carried by every packet; legacy frameworks only
//! offer the local observation order, which intervening slow/recovering NFs
//! can scramble (the Figure 2 scenario and the R4 experiment).

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{AppProtocol, FtpTransferKind, Packet, Scope, ScopeKey};
use chc_store::{AccessPattern, Operation, Value};

/// Name of the per-host protocol-event log object.
pub const EVENTS: &str = "proto_events";
/// Name of the per-host "already reported" marker object.
pub const REPORTED: &str = "trojan_reported";

/// Event codes stored in the per-host log (paired with an ordering stamp).
const EV_SSH: i64 = 1;
const EV_FTP_HTML: i64 = 2;
const EV_FTP_ZIP: i64 = 3;
const EV_FTP_EXE: i64 = 4;
const EV_IRC: i64 = 5;

/// The off-path Trojan detector.
pub struct TrojanDetector {
    /// Use the chain-wide logical clock for ordering (CHC). When false, the
    /// detector falls back to its local observation order — the behaviour of
    /// frameworks without chain-wide ordering guarantees.
    use_chain_clocks: bool,
    /// Local observation counter (fallback ordering).
    observed: u64,
}

impl TrojanDetector {
    /// Detector using CHC's chain-wide logical clocks (the default).
    pub fn new() -> TrojanDetector {
        TrojanDetector {
            use_chain_clocks: true,
            observed: 0,
        }
    }

    /// Detector that only sees local arrival order (models running the same
    /// NF on a framework without chain-wide ordering, for the R4 comparison).
    pub fn without_chain_clocks() -> TrojanDetector {
        TrojanDetector {
            use_chain_clocks: false,
            observed: 0,
        }
    }

    fn event_code(packet: &Packet) -> Option<i64> {
        match packet.app {
            AppProtocol::Ssh => Some(EV_SSH),
            AppProtocol::Ftp(FtpTransferKind::Html) => Some(EV_FTP_HTML),
            AppProtocol::Ftp(FtpTransferKind::Zip) => Some(EV_FTP_ZIP),
            AppProtocol::Ftp(FtpTransferKind::Exe) => Some(EV_FTP_EXE),
            AppProtocol::Irc => Some(EV_IRC),
            _ => None,
        }
    }

    /// Does the per-host event log contain the full signature in order?
    fn signature_complete(events: &[(i64, u64)]) -> bool {
        // Earliest stamp of each stage.
        let earliest = |code: i64| {
            events
                .iter()
                .filter(|(c, _)| *c == code)
                .map(|(_, t)| *t)
                .min()
        };
        let Some(ssh) = earliest(EV_SSH) else {
            return false;
        };
        let stages = [EV_FTP_HTML, EV_FTP_ZIP, EV_FTP_EXE];
        let mut prev = ssh;
        for stage in stages {
            // Each FTP stage must occur after the SSH connection (the paper
            // requires the downloads to follow the SSH step; their mutual
            // order is not part of the signature).
            let Some(t) = events
                .iter()
                .filter(|(c, s)| *c == stage && *s > ssh)
                .map(|(_, s)| *s)
                .min()
            else {
                return false;
            };
            prev = prev.max(t);
        }
        // IRC activity must come last.
        events.iter().any(|(c, t)| *c == EV_IRC && *t > prev)
    }
}

impl Default for TrojanDetector {
    fn default() -> Self {
        TrojanDetector::new()
    }
}

impl NetworkFunction for TrojanDetector {
    fn name(&self) -> &str {
        "trojan-detector"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![
            // Arrival order of IRC/FTP/SSH flows per host: cross-flow,
            // write/read often (Table 4).
            StateObjectSpec::cross_flow(EVENTS, Scope::SrcIp, AccessPattern::ReadWriteOften),
            StateObjectSpec::cross_flow(REPORTED, Scope::SrcIp, AccessPattern::ReadWriteOften),
        ]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        // Only connection attempts of the relevant protocols feed the
        // signature (one event per connection).
        if !packet.is_connection_attempt() {
            return Action::Forward(packet.clone());
        }
        let Some(code) = Self::event_code(packet) else {
            return Action::Forward(packet.clone());
        };
        let host = ScopeKey::Host(packet.initiator());

        // Ordering stamp: chain-wide logical clock (CHC) or local order.
        self.observed += 1;
        let stamp = if self.use_chain_clocks {
            ctx.clock().counter()
        } else {
            self.observed
        };

        ctx.push_back(EVENTS, Some(host), Value::Pair(code, stamp as i64));

        if ctx.read(REPORTED, Some(host)).as_int() != 0 {
            return Action::Forward(packet.clone());
        }
        let log = ctx.read(EVENTS, Some(host));
        let events: Vec<(i64, u64)> = log
            .as_list()
            .map(|l| {
                l.iter()
                    .map(|v| {
                        let (c, t) = v.as_pair();
                        (c, t as u64)
                    })
                    .collect()
            })
            .unwrap_or_default();
        if Self::signature_complete(&events) {
            // Report once per host and remember it (compare-and-update keeps
            // this idempotent across instances).
            let updated = ctx.update(
                REPORTED,
                Some(host),
                Operation::CompareAndUpdate {
                    condition: chc_store::Condition::Absent,
                    new: Value::Int(1),
                },
            );
            if updated.as_int() == 1 {
                ctx.alert(format!("trojan detected at host {}", packet.initiator()));
            }
        }
        Action::Forward(packet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::{SharedStore, StateClient};
    use chc_packet::{Direction, FiveTuple, TcpFlags};
    use chc_sim::VirtualTime;
    use chc_store::Clock;
    use std::net::Ipv4Addr;

    fn conn_attempt(host: u8, app: AppProtocol, sport: u16) -> Packet {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, host),
            sport,
            Ipv4Addr::new(54, 0, 0, 2),
            app.default_port(),
        );
        Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::SYN)
            .app(app)
            .build()
    }

    fn feed(
        nf: &mut TrojanDetector,
        client: &mut StateClient,
        pkts: &[(Packet, u64)],
    ) -> Vec<String> {
        let mut alerts = Vec::new();
        for (p, clock) in pkts {
            let mut ctx = NfContext::new(client, Clock::with_root(0, *clock), VirtualTime::ZERO);
            nf.process(p, &mut ctx);
            alerts.extend(ctx.take_alerts());
        }
        alerts
    }

    fn signature(host: u8) -> Vec<(Packet, u64)> {
        vec![
            (conn_attempt(host, AppProtocol::Ssh, 10_001), 10),
            (
                conn_attempt(host, AppProtocol::Ftp(FtpTransferKind::Html), 10_002),
                20,
            ),
            (
                conn_attempt(host, AppProtocol::Ftp(FtpTransferKind::Zip), 10_003),
                30,
            ),
            (
                conn_attempt(host, AppProtocol::Ftp(FtpTransferKind::Exe), 10_004),
                40,
            ),
            (conn_attempt(host, AppProtocol::Irc, 10_005), 50),
        ]
    }

    #[test]
    fn detects_the_full_signature_once() {
        let store = SharedStore::new();
        let mut nf = TrojanDetector::new();
        let mut client = client_for(&nf, &store, 0);
        let alerts = feed(&mut nf, &mut client, &signature(3));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].contains("10.0.0.3"));
        // Repeating IRC traffic does not re-alert.
        let more = vec![(conn_attempt(3, AppProtocol::Irc, 10_009), 60)];
        assert!(feed(&mut nf, &mut client, &more).is_empty());
    }

    #[test]
    fn wrong_order_is_not_a_trojan() {
        let store = SharedStore::new();
        let mut nf = TrojanDetector::new();
        let mut client = client_for(&nf, &store, 0);
        // IRC first, then SSH, then the FTP transfers: benign.
        let pkts = vec![
            (conn_attempt(4, AppProtocol::Irc, 10_001), 10),
            (conn_attempt(4, AppProtocol::Ssh, 10_002), 20),
            (
                conn_attempt(4, AppProtocol::Ftp(FtpTransferKind::Html), 10_003),
                30,
            ),
            (
                conn_attempt(4, AppProtocol::Ftp(FtpTransferKind::Zip), 10_004),
                40,
            ),
            (
                conn_attempt(4, AppProtocol::Ftp(FtpTransferKind::Exe), 10_005),
                50,
            ),
        ];
        assert!(feed(&mut nf, &mut client, &pkts).is_empty());
    }

    #[test]
    fn chain_clocks_survive_out_of_order_delivery() {
        // The packets *arrive* at the detector in scrambled order (slow
        // upstream scrubber), but their logical clocks reflect the true
        // network-entry order, so the CHC detector still finds the Trojan...
        let store = SharedStore::new();
        let mut nf = TrojanDetector::new();
        let mut client = client_for(&nf, &store, 0);
        let mut pkts = signature(6);
        pkts.swap(0, 4); // IRC observed first, SSH last
        pkts.swap(1, 3);
        let alerts = feed(&mut nf, &mut client, &pkts);
        assert_eq!(alerts.len(), 1);

        // ...whereas a detector limited to observation order misses it.
        let store2 = SharedStore::new();
        let mut legacy = TrojanDetector::without_chain_clocks();
        let mut client2 = client_for(&legacy, &store2, 0);
        let alerts = feed(&mut legacy, &mut client2, &pkts);
        assert!(alerts.is_empty());
    }

    #[test]
    fn partial_signature_does_not_alert() {
        let store = SharedStore::new();
        let mut nf = TrojanDetector::new();
        let mut client = client_for(&nf, &store, 0);
        let pkts = vec![
            (conn_attempt(8, AppProtocol::Ssh, 10_001), 1),
            (
                conn_attempt(8, AppProtocol::Ftp(FtpTransferKind::Zip), 10_002),
                2,
            ),
            (conn_attempt(8, AppProtocol::Irc, 10_003), 3),
        ];
        assert!(feed(&mut nf, &mut client, &pkts).is_empty());
    }
}
