//! A simple stateful firewall (first hop of the Figure 2 chain).
//!
//! Blocks traffic to a configurable set of destination ports and to hosts an
//! operator (or another NF) has blacklisted via shared state, and counts
//! blocked packets per source host.

use chc_core::{Action, NetworkFunction, NfContext, StateObjectSpec};
use chc_packet::{Packet, Scope, ScopeKey};
use chc_store::{AccessPattern, Value};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Name of the per-host blocked-packet counter.
pub const BLOCKED_COUNT: &str = "blocked_count";
/// Name of the shared blacklist membership object (per host, 0/1).
pub const BLACKLISTED: &str = "blacklisted";

/// A port/blacklist firewall.
pub struct Firewall {
    blocked_ports: HashSet<u16>,
}

impl Firewall {
    /// Create a firewall blocking the given destination ports.
    pub fn new(blocked_ports: impl IntoIterator<Item = u16>) -> Firewall {
        Firewall {
            blocked_ports: blocked_ports.into_iter().collect(),
        }
    }

    /// A firewall with the conventional "block telnet and NetBIOS" policy.
    pub fn with_default_policy() -> Firewall {
        Firewall::new([23, 137, 139, 445])
    }

    /// Helper used by tests and operators: blacklist a host directly in the
    /// shared store through any instance's context.
    pub fn blacklist(ctx: &mut NfContext<'_>, host: Ipv4Addr) {
        ctx.set(BLACKLISTED, Some(ScopeKey::Host(host)), Value::Int(1));
    }
}

impl Default for Firewall {
    fn default() -> Self {
        Firewall::with_default_policy()
    }
}

impl NetworkFunction for Firewall {
    fn name(&self) -> &str {
        "firewall"
    }

    fn state_objects(&self) -> Vec<StateObjectSpec> {
        vec![
            StateObjectSpec::cross_flow(
                BLOCKED_COUNT,
                Scope::SrcIp,
                AccessPattern::WriteMostlyReadRarely,
            ),
            StateObjectSpec::cross_flow(BLACKLISTED, Scope::SrcIp, AccessPattern::ReadMostly),
        ]
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext<'_>) -> Action {
        let host = ScopeKey::Host(packet.initiator());
        let service_port = match packet.direction {
            chc_packet::Direction::FromInitiator => packet.tuple.dst_port,
            chc_packet::Direction::FromResponder => packet.tuple.src_port,
        };
        let blacklisted = ctx.read(BLACKLISTED, Some(host)).as_int() != 0;
        if blacklisted || self.blocked_ports.contains(&service_port) {
            ctx.increment(BLOCKED_COUNT, Some(host), 1);
            return Action::Drop;
        }
        Action::Forward(packet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::client_for;
    use chc_core::{SharedStore, StateClient};
    use chc_packet::{Direction, FiveTuple, TcpFlags};
    use chc_sim::VirtualTime;
    use chc_store::Clock;

    fn to_port(port: u16) -> Packet {
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 5),
            50_000,
            Ipv4Addr::new(54, 0, 0, 1),
            port,
        );
        Packet::builder()
            .tuple(t)
            .direction(Direction::FromInitiator)
            .flags(TcpFlags::SYN)
            .build()
    }

    fn run(fw: &mut Firewall, c: &mut StateClient, p: &Packet, n: u64) -> Action {
        let mut ctx = NfContext::new(c, Clock::with_root(0, n), VirtualTime::ZERO);
        fw.process(p, &mut ctx)
    }

    #[test]
    fn blocks_configured_ports_and_counts() {
        let store = SharedStore::new();
        let mut fw = Firewall::with_default_policy();
        let mut c = client_for(&fw, &store, 0);
        assert_eq!(run(&mut fw, &mut c, &to_port(23), 1), Action::Drop);
        assert!(run(&mut fw, &mut c, &to_port(80), 2).is_forward());
        let key = c.state_key(
            BLOCKED_COUNT,
            Some(ScopeKey::Host(Ipv4Addr::new(10, 0, 0, 5))),
        );
        assert_eq!(store.with(|s| s.peek(&key)).as_int(), 1);
    }

    #[test]
    fn blacklisted_hosts_are_dropped() {
        let store = SharedStore::new();
        let mut fw = Firewall::new([]);
        let mut c = client_for(&fw, &store, 0);
        assert!(run(&mut fw, &mut c, &to_port(80), 1).is_forward());
        {
            let mut ctx = NfContext::new(&mut c, Clock::with_root(0, 2), VirtualTime::ZERO);
            Firewall::blacklist(&mut ctx, Ipv4Addr::new(10, 0, 0, 5));
        }
        assert_eq!(run(&mut fw, &mut c, &to_port(80), 3), Action::Drop);
    }
}
