//! Concurrency stress tests: every chc-telemetry primitive is written from
//! the engine's hot paths by many threads at once, so the lock-free
//! counters and histogram must lose nothing under real contention.

use chc_telemetry::{Counter, EventJournal, EventKind, Gauge, StreamingHistogram};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 50_000;

#[test]
fn counters_and_histogram_are_exact_under_eight_writers() {
    let counter = Arc::new(Counter::new());
    let hist = Arc::new(StreamingHistogram::new());

    thread::scope(|s| {
        for w in 0..WRITERS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    counter.add(2);
                    // Spread samples across many octaves so the writers
                    // contend on disjoint and shared buckets alike.
                    hist.record((w as u64 + 1) * (i % 1024 + 1));
                }
            });
        }
    });

    let n = WRITERS as u64 * PER_WRITER;
    assert_eq!(counter.get(), 2 * n, "counter lost increments");
    assert_eq!(hist.count(), n, "histogram lost samples");

    // Exact sum: every sample value is exact regardless of bucketing.
    let expected_sum: u64 = (0..WRITERS as u64)
        .map(|w| {
            (0..PER_WRITER)
                .map(|i| (w + 1) * (i % 1024 + 1))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(hist.sum(), expected_sum, "histogram lost sample mass");

    // Bucket conservation: the per-bucket counts add back up to the total,
    // i.e. no sample fell between buckets or was double-counted.
    let bucketed: u64 = hist.nonzero_buckets().iter().map(|(_, c)| c).sum();
    assert_eq!(bucketed, n, "bucket counts do not conserve the total");

    // Min/max track the extreme samples exactly.
    assert_eq!(hist.min(), 1);
    assert_eq!(hist.max(), WRITERS as u64 * 1024);
}

#[test]
fn merged_shards_conserve_buckets() {
    // Per-thread histograms merged into one must agree with a histogram all
    // threads shared — the merge path is how per-vertex shards would
    // aggregate, so both layouts must bucket identically.
    let shared = Arc::new(StreamingHistogram::new());
    let parts: Vec<StreamingHistogram> = thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let local = StreamingHistogram::new();
                    for i in 0..1_000u64 {
                        let v = (w as u64 * 7919 + i * 31) % 1_000_000 + 1;
                        local.record(v);
                        shared.record(v);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let merged = StreamingHistogram::new();
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged.count(), shared.count());
    assert_eq!(merged.sum(), shared.sum());
    assert_eq!(merged.nonzero_buckets(), shared.nonzero_buckets());
    assert_eq!(merged.summary(), shared.summary());
}

#[test]
fn journal_assigns_unique_ordered_sequence_numbers() {
    let journal = Arc::new(EventJournal::new());
    thread::scope(|s| {
        for w in 0..WRITERS {
            let journal = Arc::clone(&journal);
            s.spawn(move || {
                for i in 0..500u64 {
                    journal.record(
                        i,
                        EventKind::InstanceSpawn {
                            vertex: w as u32,
                            index: 0,
                            instance: i,
                        },
                    );
                }
            });
        }
    });
    let events = journal.snapshot();
    assert_eq!(events.len(), WRITERS * 500);
    // snapshot() orders by seq; the seqs must be exactly 0..n with no gap
    // or duplicate even though eight threads raced on the allocator.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

#[test]
fn gauge_last_write_wins() {
    let gauge = Gauge::new();
    gauge.set(3.25);
    assert_eq!(gauge.get(), 3.25);
    gauge.set(-0.5);
    assert_eq!(gauge.get(), -0.5);
}
