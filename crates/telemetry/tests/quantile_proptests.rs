//! Property tests pinning `StreamingHistogram`'s quantization contract:
//! for arbitrary sample sets, the estimated p50/p99/p999 must stay within
//! the 1/32-octave sub-bucket bound of an exact store-and-sort oracle —
//! relative error ≤ 1/32 (~3.1%), or one unit where the bucket grid is
//! unit-width (values below the first octave). The bound is exercised where
//! it is tightest: point masses (whole quantile mass in one bucket), heavy
//! tails (estimate read from a wide high-octave bucket), and values pinned
//! to octave boundaries `2^k ± 1` (worst-case placement at bucket edges).
//!
//! The vendored proptest shim has no collection strategies, so each case
//! draws a seed and derives its random scenario from a `StdRng` — failures
//! stay reproducible because the seed is part of the case.

use chc_telemetry::StreamingHistogram;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUANTILES: [f64; 3] = [50.0, 99.0, 99.9];

/// Exact oracle: the sample at the nearest-rank quantile position, computed
/// from every recorded value. This is the definition the histogram's
/// `percentile` approximates (same `ceil(p·n)` rank convention).
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Feed `samples` into a streaming histogram and check every pinned
/// quantile against the oracle, plus the exact count/min/max/mean side
/// contracts.
fn assert_quantiles_pinned(samples: &[u64], label: &str) {
    assert!(!samples.is_empty(), "{label}: scenario drew no samples");
    let hist = StreamingHistogram::new();
    for &v in samples {
        hist.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();

    // count/min/max/mean are documented exact, independent of bucketing.
    assert_eq!(hist.len(), samples.len(), "{label}: count drifted");
    assert_eq!(hist.min(), sorted[0], "{label}: min is not exact");
    assert_eq!(
        hist.max(),
        *sorted.last().unwrap(),
        "{label}: max is not exact"
    );
    let true_mean = sorted.iter().map(|&v| v as u128).sum::<u128>() as f64 / sorted.len() as f64;
    assert!(
        (hist.mean() - true_mean).abs() <= true_mean * 1e-12 + 1e-9,
        "{label}: mean {} is not exact (oracle {true_mean})",
        hist.mean()
    );

    for p in QUANTILES {
        let truth = exact_quantile(&sorted, p);
        let est = hist.percentile(p);
        let diff = truth.abs_diff(est);
        // The true quantile and the estimate share a bucket, so the error is
        // at most one bucket width: width/low ≤ 1/32 once octaves begin, and
        // exactly one unit on the unit-width grid below them.
        let allowed = (truth as f64 / 32.0).max(1.0) + 1e-9;
        assert!(
            diff as f64 <= allowed,
            "{label}: p{p} estimate {est} strays from exact {truth} by {diff} (allowed {allowed:.3})"
        );
    }
}

proptest! {
    /// Point masses: a handful of spikes, each value repeated many times, so
    /// whole quantile ranks land inside a single bucket and interpolation
    /// has to answer from its edges. Also exercises `record_n`, which must
    /// be indistinguishable from repeated `record`.
    #[test]
    fn point_masses_stay_within_the_bucket_bound(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spikes = rng.gen_range(1..=4usize);
        let mut samples = Vec::new();
        let hist = StreamingHistogram::new();
        for _ in 0..spikes {
            // Log-uniform spike position: every octave is equally likely.
            let v = 1u64 << rng.gen_range(0..40u32);
            let v = v + rng.gen_range(0..=v / 2);
            let n = rng.gen_range(1..=5_000u64);
            hist.record_n(v, n);
            samples.extend(std::iter::repeat_n(v, n as usize));
        }
        assert_quantiles_pinned(&samples, "point_masses");
        // record_n(v, n) must equal n× record(v) in every observable.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(hist.len(), samples.len());
        for p in QUANTILES {
            let reference = {
                let h = StreamingHistogram::new();
                for &v in &samples { h.record(v); }
                h.percentile(p)
            };
            prop_assert_eq!(hist.percentile(p), reference);
        }
    }

    /// Heavy tails: a large small-value body with a thin tail several
    /// octaves above it, so p50 reads from the body while p99/p999 read
    /// from wide high-octave buckets — where the relative bound is tight.
    #[test]
    fn heavy_tails_stay_within_the_bucket_bound(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = rng.gen_range(200..=2_000usize);
        let tail = rng.gen_range(1..=body / 50);
        let mut samples: Vec<u64> = (0..body)
            .map(|_| rng.gen_range(1..1_000u64))
            .collect();
        for _ in 0..tail {
            samples.push(1u64 << rng.gen_range(20..60u32));
        }
        assert_quantiles_pinned(&samples, "heavy_tails");
    }

    /// Octave boundaries: every sample sits at `2^k - 1`, `2^k` or
    /// `2^k + 1`, the exact points where a value crosses from the last
    /// sub-bucket of one octave into the first of the next.
    #[test]
    fn octave_boundaries_stay_within_the_bucket_bound(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(50..=500usize);
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                let base = 1u64 << rng.gen_range(1..50u32);
                match rng.gen_range(0..3u8) {
                    0 => base - 1,
                    1 => base,
                    _ => base + 1,
                }
            })
            .collect();
        assert_quantiles_pinned(&samples, "octave_boundaries");
    }

    /// Below the first octave the bucket grid is unit-width, so every
    /// quantile estimate is exact to within one unit regardless of shape.
    #[test]
    fn small_values_are_unit_exact(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..=300usize);
        let samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0..32u64)).collect();
        let hist = StreamingHistogram::new();
        for &v in &samples { hist.record(v); }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in QUANTILES {
            let truth = exact_quantile(&sorted, p);
            let est = hist.percentile(p);
            prop_assert!(
                truth.abs_diff(est) <= 1,
                "p{} estimate {} vs exact {} on unit-width buckets", p, est, truth
            );
        }
    }
}
