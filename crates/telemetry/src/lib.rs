//! `chc-telemetry` — lock-free live metrics for the CHC runtime.
//!
//! The paper's evaluation hinges on per-stage latency decomposition (where
//! time goes between root stamping, NF processing, store round trips, and
//! the sink) and on live visibility into the state-access hot path. This
//! crate provides the measurement substrate for that, deliberately
//! dependency-free so every other CHC crate can sit above it:
//!
//! * [`Counter`], [`Gauge`], [`StreamingHistogram`] — wait-free,
//!   zero-allocation recording through `&self`; summaries readable while
//!   writers are live (unlike the exact sort-on-read `chc_sim::Histogram`).
//! * [`MetricsRegistry`] — name → handle registration at wiring time.
//! * [`GaugeSeries`] / [`TelemetrySeries`] — time series appended by a
//!   monitor thread sampling ring depths, shard op rates and log levels.
//! * [`EventJournal`] — append-only structured journal of control-plane
//!   events (spawns, kills, failover phases, commit-frontier advances),
//!   renderable as JSONL for post-hoc debugging of failover runs.
//! * [`trace`] — flow-sampled causal tracing: per-hop [`SpanEvent`]s in a
//!   bounded [`TraceCollector`], exported as Chrome trace-event JSON
//!   (Perfetto-loadable) with a shape validator for CI.
//! * [`sentinel`] — online invariant checking: streaming checkers for
//!   commit-frontier monotonicity, per-flow delivery order, packet
//!   conservation, root-log bounds and failover phase order, reported as
//!   [`Violation`]s.

#![warn(missing_docs)]

mod journal;
mod metrics;
mod registry;
pub mod sentinel;
mod series;
pub mod trace;

pub use journal::{Event, EventJournal, EventKind};
pub use metrics::{Counter, Gauge, HistSummary, StreamingHistogram};
pub use registry::MetricsRegistry;
pub use sentinel::{
    ConservationLedger, FlowOrderChecker, InvariantKind, Sentinel, SentinelReport, Violation,
};
pub use series::{GaugeSample, GaugeSeries, TelemetrySeries};
pub use trace::{
    chrome_trace_json, validate_chrome_trace, SpanEvent, SpanKind, TraceCollector, TraceLane,
    TraceShape,
};
