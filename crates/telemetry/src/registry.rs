//! Named metric registry.
//!
//! Registration (name → metric handle) takes a mutex, but happens once per
//! metric at wiring time; the returned `Arc` handles are then recorded into
//! lock-free. The monitor thread reads the same handles by name to build
//! its gauge series.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, StreamingHistogram};

/// A process-local registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<StreamingHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<StreamingHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Snapshot of all counter totals, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauge values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Names of all registered histograms, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("pkts");
        let b = r.counter("pkts");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("pkts").get(), 7);
        assert!(Arc::ptr_eq(&a, &b));

        r.gauge("depth").set(9.0);
        assert_eq!(r.gauge_values(), vec![("depth".to_string(), 9.0)]);
        r.histogram("lat").record(5);
        assert_eq!(r.histogram_names(), vec!["lat".to_string()]);
        assert_eq!(r.counter_values(), vec![("pkts".to_string(), 7)]);
    }
}
