//! Structured event journal: a bounded-cost, append-only record of the
//! control-plane moments of a run (spawns, kills, failover phases, commit
//! frontier advances), timestamped against the engine's run epoch.
//!
//! Events carry raw numeric ids (`u32` vertex ids, `u64` instance ids)
//! rather than runtime types so this crate stays dependency-free and below
//! every other CHC layer. Rendering is hand-rolled JSONL (the workspace has
//! no JSON serializer for arbitrary values).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What happened. Field meanings:
/// `vertex` — `VertexId.0`; `index` — replica slot within the vertex;
/// `instance` — `InstanceId.0`; `clock` — root clock counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on the enum and variants
pub enum EventKind {
    /// An NF instance thread started (initial wiring or replacement).
    InstanceSpawn {
        vertex: u32,
        index: u32,
        instance: u64,
    },
    /// A fault-injected instance stopped processing; `clock` is the last
    /// clock counter it observed before dying.
    InstanceKilled {
        vertex: u32,
        index: u32,
        instance: u64,
        clock: u64,
    },
    /// The supervisor accepted a death notice and began failover.
    FailoverBegin {
        vertex: u32,
        index: u32,
        instance: u64,
    },
    /// The replacement instance thread was spawned.
    ReplacementSpawn {
        vertex: u32,
        index: u32,
        instance: u64,
    },
    /// Replay of the root packet log into the replacement finished.
    ReplayComplete {
        vertex: u32,
        index: u32,
        instance: u64,
        packets_replayed: u64,
    },
    /// Failover completed end to end; `recovery_ns` is the supervisor-
    /// measured wall time from death notice to recovered.
    FailoverEnd {
        vertex: u32,
        index: u32,
        instance: u64,
        recovery_ns: u64,
    },
    /// The commit frontier advanced and the root log was truncated up to
    /// `frontier`, dropping `dropped` entries.
    CommitFrontier { frontier: u64, dropped: u64 },
    /// The root switched the vertex's replica set at `at_counter` (scale
    /// event cutover).
    ScaleCut { vertex: u32, at_counter: u64 },
    /// A store shard was restarted and replayed `ops_replayed` journal ops.
    ShardRestart { shard: u32, ops_replayed: u64 },
    /// The root stamping thread fail-stopped before injecting `at_counter`;
    /// its unflushed output buffers were dropped with it.
    RootKilled { at_counter: u64 },
    /// The warm standby took over injection: it replayed `packets_replayed`
    /// unconfirmed logged packets and resumed stamping at `resumed_at`.
    RootTakeover {
        resumed_at: u64,
        packets_replayed: u64,
    },
    /// A failover was abandoned mid-flight (replay ring stalled because the
    /// replacement stopped draining, or no replacement seed existed for the
    /// failed slot). The run continues degraded instead of hanging; the
    /// human-readable reason lives in `FaultReport::aborts`.
    FailoverAbort {
        vertex: u32,
        index: u32,
        instance: u64,
    },
    /// The invariant sentinel detected a violation. `code` is the stable
    /// [`crate::sentinel::InvariantKind`] code; `observed`/`expected` carry
    /// the offending value and the bound it broke (kept numeric so the
    /// event stays `Copy`; the full detail string lives in the run report).
    InvariantViolation {
        code: u32,
        observed: u64,
        expected: u64,
    },
}

impl EventKind {
    /// Stable snake_case name used in JSONL output.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::InstanceSpawn { .. } => "instance_spawn",
            EventKind::InstanceKilled { .. } => "instance_killed",
            EventKind::FailoverBegin { .. } => "failover_begin",
            EventKind::ReplacementSpawn { .. } => "replacement_spawn",
            EventKind::ReplayComplete { .. } => "replay_complete",
            EventKind::FailoverEnd { .. } => "failover_end",
            EventKind::CommitFrontier { .. } => "commit_frontier",
            EventKind::ScaleCut { .. } => "scale_cut",
            EventKind::ShardRestart { .. } => "shard_restart",
            EventKind::RootKilled { .. } => "root_killed",
            EventKind::RootTakeover { .. } => "root_takeover",
            EventKind::FailoverAbort { .. } => "failover_abort",
            EventKind::InvariantViolation { .. } => "invariant_violation",
        }
    }
}

/// One journal entry. `seq` is a global order assigned at record time, so
/// causality between threads is decidable even when coarse clocks tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global record order (0-based).
    pub seq: u64,
    /// Nanoseconds since the run epoch.
    pub t_ns: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// Render as a single JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"t_ns\":{},\"event\":\"{}\"",
            self.seq,
            self.t_ns,
            self.kind.name()
        );
        use std::fmt::Write as _;
        match self.kind {
            EventKind::InstanceSpawn {
                vertex,
                index,
                instance,
            } => {
                let _ = write!(
                    s,
                    ",\"vertex\":{vertex},\"index\":{index},\"instance\":{instance}"
                );
            }
            EventKind::InstanceKilled {
                vertex,
                index,
                instance,
                clock,
            } => {
                let _ = write!(
                    s,
                    ",\"vertex\":{vertex},\"index\":{index},\"instance\":{instance},\"clock\":{clock}"
                );
            }
            EventKind::FailoverBegin {
                vertex,
                index,
                instance,
            }
            | EventKind::ReplacementSpawn {
                vertex,
                index,
                instance,
            }
            | EventKind::FailoverAbort {
                vertex,
                index,
                instance,
            } => {
                let _ = write!(
                    s,
                    ",\"vertex\":{vertex},\"index\":{index},\"instance\":{instance}"
                );
            }
            EventKind::ReplayComplete {
                vertex,
                index,
                instance,
                packets_replayed,
            } => {
                let _ = write!(
                    s,
                    ",\"vertex\":{vertex},\"index\":{index},\"instance\":{instance},\"packets_replayed\":{packets_replayed}"
                );
            }
            EventKind::FailoverEnd {
                vertex,
                index,
                instance,
                recovery_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"vertex\":{vertex},\"index\":{index},\"instance\":{instance},\"recovery_ns\":{recovery_ns}"
                );
            }
            EventKind::CommitFrontier { frontier, dropped } => {
                let _ = write!(s, ",\"frontier\":{frontier},\"dropped\":{dropped}");
            }
            EventKind::ScaleCut { vertex, at_counter } => {
                let _ = write!(s, ",\"vertex\":{vertex},\"at_counter\":{at_counter}");
            }
            EventKind::ShardRestart {
                shard,
                ops_replayed,
            } => {
                let _ = write!(s, ",\"shard\":{shard},\"ops_replayed\":{ops_replayed}");
            }
            EventKind::RootKilled { at_counter } => {
                let _ = write!(s, ",\"at_counter\":{at_counter}");
            }
            EventKind::RootTakeover {
                resumed_at,
                packets_replayed,
            } => {
                let _ = write!(
                    s,
                    ",\"resumed_at\":{resumed_at},\"packets_replayed\":{packets_replayed}"
                );
            }
            EventKind::InvariantViolation {
                code,
                observed,
                expected,
            } => {
                let _ = write!(
                    s,
                    ",\"invariant\":\"{}\",\"code\":{code},\"observed\":{observed},\"expected\":{expected}",
                    crate::sentinel::invariant_name(code)
                );
            }
        }
        s.push('}');
        s
    }
}

/// Thread-safe append-only journal. Recording takes a short mutex on the
/// event vector — events are control-plane-rate (spawns, failovers), never
/// per-packet, so contention is irrelevant.
#[derive(Debug, Default)]
pub struct EventJournal {
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl EventJournal {
    /// An empty journal.
    pub fn new() -> EventJournal {
        EventJournal::default()
    }

    /// Append an event observed `t_ns` nanoseconds after the run epoch.
    /// Returns the assigned global sequence number.
    pub fn record(&self, t_ns: u64, kind: EventKind) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events
            .lock()
            .expect("journal poisoned")
            .push(Event { seq, t_ns, kind });
        seq
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("journal poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of all events, sorted by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = self.events.lock().expect("journal poisoned").clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events with `seq >= from`, sorted by sequence number — the polling
    /// primitive of streaming consumers (the invariant sentinel): call with
    /// the last seen sequence + 1 to drain only what is new.
    pub fn events_since(&self, from: u64) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .events
            .lock()
            .expect("journal poisoned")
            .iter()
            .filter(|e| e.seq >= from)
            .copied()
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Render the whole journal as JSONL (one event per line, trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Write the journal as JSONL to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_sequence_and_renders_jsonl() {
        let j = EventJournal::new();
        j.record(
            100,
            EventKind::InstanceKilled {
                vertex: 1,
                index: 0,
                instance: 7,
                clock: 42,
            },
        );
        j.record(
            200,
            EventKind::FailoverBegin {
                vertex: 1,
                index: 0,
                instance: 7,
            },
        );
        j.record(
            300,
            EventKind::CommitFrontier {
                frontier: 40,
                dropped: 40,
            },
        );
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));

        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"instance_killed\""));
        assert!(lines[0].contains("\"clock\":42"));
        assert!(lines[2].contains("\"frontier\":40"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn concurrent_records_get_unique_seqs() {
        let j = std::sync::Arc::new(EventJournal::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let j = std::sync::Arc::clone(&j);
                s.spawn(move || {
                    for i in 0..100u64 {
                        j.record(
                            i,
                            EventKind::ScaleCut {
                                vertex: t,
                                at_counter: i,
                            },
                        );
                    }
                });
            }
        });
        let events = j.snapshot();
        assert_eq!(events.len(), 400);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers are unique and sorted");
    }
}
