//! Gauge time series produced by the monitor thread.
//!
//! The monitor samples a set of named gauges at a fixed cadence and appends
//! one [`GaugeSample`] per gauge per tick. Series are plain owned data (no
//! atomics): the monitor thread owns them while the run is live and hands
//! them over through the report when it joins.

/// One `(time, value)` observation of a gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Nanoseconds since the run's epoch (the engine's `t0`).
    pub t_ns: u64,
    /// Observed value.
    pub value: f64,
}

/// A named sequence of samples, appended in wall-clock order.
#[derive(Debug, Clone, Default)]
pub struct GaugeSeries {
    /// Metric name, e.g. `ring.fw0->nat0.depth` or `shard.2.ops_per_sec`.
    pub name: String,
    /// Samples in append order.
    pub points: Vec<GaugeSample>,
}

impl GaugeSeries {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> GaugeSeries {
        GaugeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one observation.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        self.points.push(GaugeSample { t_ns, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// True when timestamps never decrease — the invariant the monitor
    /// thread must uphold (asserted by tests).
    pub fn is_monotonic(&self) -> bool {
        self.points.windows(2).all(|w| w[0].t_ns <= w[1].t_ns)
    }

    /// Largest observed value (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Last observed value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }
}

/// All gauge series collected during one run.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySeries {
    /// One series per monitored gauge.
    pub series: Vec<GaugeSeries>,
}

impl TelemetrySeries {
    /// An empty collection.
    pub fn new() -> TelemetrySeries {
        TelemetrySeries::default()
    }

    /// Find a series by exact name.
    pub fn get(&self, name: &str) -> Option<&GaugeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Series whose names start with `prefix` (e.g. `"ring."`).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a GaugeSeries> {
        self.series
            .iter()
            .filter(move |s| s.name.starts_with(prefix))
    }

    /// True when every contained series is monotonic in time.
    pub fn is_monotonic(&self) -> bool {
        self.series.iter().all(GaugeSeries::is_monotonic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonicity_and_lookup() {
        let mut s = GaugeSeries::new("ring.a->b.depth");
        s.push(10, 1.0);
        s.push(20, 5.0);
        s.push(20, 3.0);
        assert!(s.is_monotonic());
        assert_eq!(s.max_value(), 5.0);
        assert_eq!(s.last_value(), Some(3.0));
        s.push(5, 0.0);
        assert!(!s.is_monotonic());

        let mut all = TelemetrySeries::new();
        all.series.push(GaugeSeries::new("ring.a->b.depth"));
        all.series.push(GaugeSeries::new("shard.0.ops"));
        assert!(all.get("shard.0.ops").is_some());
        assert_eq!(all.with_prefix("ring.").count(), 1);
        assert!(all.is_monotonic());
    }
}
