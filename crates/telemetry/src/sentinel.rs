//! Online invariant sentinel: continuous checks of the paper's correctness
//! properties against the event journal and the delivery stream, while the
//! engine runs.
//!
//! ## Invariant list (and the paper property each encodes)
//!
//! * **Frontier monotonicity** — the commit frontier (minimum confirmed
//!   clock over every on-path component and the sink) may only advance;
//!   a regression would mean the root log truncated entries that were not
//!   actually confirmed, voiding the bounded-replay guarantee (§5.4,
//!   Figure 6).
//! * **Per-flow delivery order** — the sink must observe each flow's live
//!   packets in clock order: CHC's root clock serializes state updates, and
//!   SPSC ring FIFO per route preserves it end to end (requirement R4,
//!   "ordered updates"). Replayed copies and pre/post scale-cut pairs are
//!   exempt (recovery traffic may legitimately arrive late; a scale cut
//!   re-routes a flow to a different instance).
//! * **Packet conservation** — every packet copy pushed into an SPSC ring
//!   is eventually popped, and every popped copy is accounted: processed,
//!   suppressed as a duplicate (§5.3), destroyed by a fail-stop kill, or
//!   delivered. Nothing is silently lost or invented (the run-level form of
//!   "injected = delivered + dropped + suppressed + in-flight").
//! * **Exactly-once delivery** — without deliberate re-injection the sink
//!   must see zero duplicate clocks, failover replay included (§5.3).
//! * **Bounded root log** — the packet log never exceeds its configured
//!   capacity, and its final depth is bounded by the un-confirmed suffix
//!   `injected − frontier` (§5, buffer-bloat bound).
//! * **Failover phase order** — for each failed slot: killed → failover
//!   begin → replacement spawned → replay complete → failover end (§5.4,
//!   "NF instance" recovery protocol). An explicit `failover_abort`
//!   discharges the slot (degraded by design, not a hang).
//! * **Root handoff** — a killed root is taken over by exactly one warm
//!   standby: no takeover without a kill, no double kill, no kill left
//!   without a takeover at shutdown (§5.4, "root" recovery).
//! * **XOR residue** — every delivered clock's delete-token accumulator
//!   cancels to zero: each token a logging vertex folded in was folded back
//!   out by the sink (Figure 6's commit vector closes).
//!
//! Violations are recorded as journal events (`invariant_violation`) and
//! surfaced in the run report, so every existing failover/equivalence test
//! asserts `violations == 0` for free.

use crate::journal::{Event, EventKind};
use crate::metrics::Counter;
use std::collections::HashMap;

/// Which invariant a violation belongs to. Codes are stable (journal events
/// carry them numerically to keep `EventKind` `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Commit frontier regressed.
    FrontierMonotonic,
    /// A flow's live packets reached the sink out of clock order.
    FlowOrdering,
    /// A packet copy was lost or invented somewhere in the pipeline.
    Conservation,
    /// Duplicate clocks reached the sink without a re-injection drill.
    ExactlyOnce,
    /// The root packet log exceeded its bound.
    RootlogBound,
    /// Failover phases out of order.
    FailoverPhase,
    /// Root kill / standby takeover protocol broken: a takeover without a
    /// prior root kill, a double kill, or a killed root no standby ever
    /// took over for.
    RootHandoff,
    /// The XOR delete ledger finished with a delivered counter whose token
    /// residue never cancelled (a delete token folded in but not back out,
    /// or vice versa — Figure 6's commit vector did not close).
    XorResidue,
}

impl InvariantKind {
    /// Stable numeric code (journal representation).
    pub fn code(&self) -> u32 {
        match self {
            InvariantKind::FrontierMonotonic => 1,
            InvariantKind::FlowOrdering => 2,
            InvariantKind::Conservation => 3,
            InvariantKind::ExactlyOnce => 4,
            InvariantKind::RootlogBound => 5,
            InvariantKind::FailoverPhase => 6,
            InvariantKind::RootHandoff => 7,
            InvariantKind::XorResidue => 8,
        }
    }

    /// Inverse of [`InvariantKind::code`].
    pub fn from_code(code: u32) -> Option<InvariantKind> {
        Some(match code {
            1 => InvariantKind::FrontierMonotonic,
            2 => InvariantKind::FlowOrdering,
            3 => InvariantKind::Conservation,
            4 => InvariantKind::ExactlyOnce,
            5 => InvariantKind::RootlogBound,
            6 => InvariantKind::FailoverPhase,
            7 => InvariantKind::RootHandoff,
            8 => InvariantKind::XorResidue,
            _ => return None,
        })
    }

    /// Stable snake_case name.
    pub fn name(&self) -> &'static str {
        match self {
            InvariantKind::FrontierMonotonic => "frontier_monotonic",
            InvariantKind::FlowOrdering => "flow_ordering",
            InvariantKind::Conservation => "conservation",
            InvariantKind::ExactlyOnce => "exactly_once",
            InvariantKind::RootlogBound => "rootlog_bound",
            InvariantKind::FailoverPhase => "failover_phase",
            InvariantKind::RootHandoff => "root_handoff",
            InvariantKind::XorResidue => "xor_residue",
        }
    }
}

/// Name for a numeric invariant code (used by the journal's JSONL
/// rendering; unknown codes render as `"unknown"`).
pub fn invariant_name(code: u32) -> &'static str {
    InvariantKind::from_code(code).map_or("unknown", |k| k.name())
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: InvariantKind,
    /// When it was detected, nanoseconds since the run epoch.
    pub t_ns: u64,
    /// The offending observed value (meaning depends on the invariant:
    /// regressed frontier, out-of-order clock, actual count, …).
    pub observed: u64,
    /// The bound or expected value it broke.
    pub expected: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Per-slot failover phase, advanced by the journal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailoverPhase {
    Killed,
    Begun,
    Spawned,
    Replayed,
    Ended,
}

/// Streaming checker over the event journal: feed it events in sequence
/// order and collect violations. Pure state machine — no clocks, no I/O —
/// so it is driven identically by the live sentinel thread and by tests
/// injecting synthetic event streams.
#[derive(Debug, Default)]
pub struct Sentinel {
    last_frontier: u64,
    phases: HashMap<(u32, u32), FailoverPhase>,
    root_killed: bool,
    root_recovered: bool,
    /// Events observed.
    pub events_checked: u64,
    /// `commit_frontier` events observed.
    pub frontier_advances: u64,
}

impl Sentinel {
    /// A fresh checker.
    pub fn new() -> Sentinel {
        Sentinel::default()
    }

    /// Observe one journal event; returns any violations it exposes.
    pub fn observe(&mut self, event: &Event) -> Vec<Violation> {
        let mut out = Vec::new();
        self.events_checked += 1;
        let t_ns = event.t_ns;
        match event.kind {
            EventKind::CommitFrontier { frontier, .. } => {
                self.frontier_advances += 1;
                if frontier < self.last_frontier {
                    out.push(Violation {
                        invariant: InvariantKind::FrontierMonotonic,
                        t_ns,
                        observed: frontier,
                        expected: self.last_frontier,
                        detail: format!(
                            "commit frontier regressed from {} to {frontier}",
                            self.last_frontier
                        ),
                    });
                }
                self.last_frontier = self.last_frontier.max(frontier);
            }
            EventKind::InstanceKilled { vertex, index, .. } => {
                self.phases.insert((vertex, index), FailoverPhase::Killed);
            }
            EventKind::FailoverBegin { vertex, index, .. } => {
                out.extend(self.advance(
                    (vertex, index),
                    FailoverPhase::Killed,
                    FailoverPhase::Begun,
                    t_ns,
                    "failover_begin before instance_killed",
                ));
            }
            EventKind::ReplacementSpawn { vertex, index, .. } => {
                out.extend(self.advance(
                    (vertex, index),
                    FailoverPhase::Begun,
                    FailoverPhase::Spawned,
                    t_ns,
                    "replacement_spawn before failover_begin",
                ));
            }
            EventKind::ReplayComplete { vertex, index, .. } => {
                out.extend(self.advance(
                    (vertex, index),
                    FailoverPhase::Spawned,
                    FailoverPhase::Replayed,
                    t_ns,
                    "replay_complete before replacement_spawn",
                ));
            }
            EventKind::FailoverEnd { vertex, index, .. } => {
                out.extend(self.advance(
                    (vertex, index),
                    FailoverPhase::Replayed,
                    FailoverPhase::Ended,
                    t_ns,
                    "failover_end before replay_complete",
                ));
            }
            EventKind::RootKilled { at_counter } => {
                if self.root_killed {
                    out.push(Violation {
                        invariant: InvariantKind::RootHandoff,
                        t_ns,
                        observed: at_counter,
                        expected: 0,
                        detail: "second root_killed — the root can only fail-stop once".into(),
                    });
                }
                self.root_killed = true;
            }
            EventKind::RootTakeover { resumed_at, .. } => {
                if !self.root_killed {
                    out.push(Violation {
                        invariant: InvariantKind::RootHandoff,
                        t_ns,
                        observed: resumed_at,
                        expected: 0,
                        detail: "root_takeover without a preceding root_killed".into(),
                    });
                }
                self.root_recovered = true;
            }
            // An aborted failover discharges the slot's phase obligation —
            // the run continues degraded by design, so the slot must not
            // count as an unfinished failover at shutdown.
            EventKind::FailoverAbort { vertex, index, .. } => {
                self.phases.remove(&(vertex, index));
            }
            // Spawns, scale cuts, shard restarts and our own violation
            // events carry no phase obligations.
            EventKind::InstanceSpawn { .. }
            | EventKind::ScaleCut { .. }
            | EventKind::ShardRestart { .. }
            | EventKind::InvariantViolation { .. } => {}
        }
        out
    }

    fn advance(
        &mut self,
        slot: (u32, u32),
        required: FailoverPhase,
        next: FailoverPhase,
        t_ns: u64,
        what: &str,
    ) -> Option<Violation> {
        let current = self.phases.get(&slot).copied();
        self.phases.insert(slot, next);
        if current == Some(required) {
            return None;
        }
        Some(Violation {
            invariant: InvariantKind::FailoverPhase,
            t_ns,
            observed: current.map_or(0, |p| p as u64 + 1),
            expected: required as u64 + 1,
            detail: format!("vertex {} index {}: {what}", slot.0, slot.1),
        })
    }

    /// Failover slots that started a phase sequence but never reached
    /// `failover_end` (checked at shutdown).
    pub fn unfinished_failovers(&self) -> Vec<(u32, u32)> {
        self.phases
            .iter()
            .filter(|(_, p)| **p != FailoverPhase::Ended)
            .map(|(slot, _)| *slot)
            .collect()
    }

    /// The root was killed but no standby ever took over (checked at
    /// shutdown).
    pub fn root_handoff_pending(&self) -> bool {
        self.root_killed && !self.root_recovered
    }
}

/// Streaming per-flow delivery-order checker, fed by the sink with every
/// non-duplicate live arrival.
///
/// `scale_cut` is the clock counter of a pre-planned scale-out event, if
/// any: the cut legitimately re-routes flows to a different instance, so
/// pre-cut and post-cut packets of one flow may interleave at the sink;
/// ordering is only required within each side of the cut.
#[derive(Debug, Default)]
pub struct FlowOrderChecker {
    last: HashMap<u128, u64>,
    scale_cut: Option<u64>,
    /// Arrivals checked.
    pub checked: u64,
}

impl FlowOrderChecker {
    /// A checker; `scale_cut` per the type docs.
    pub fn new(scale_cut: Option<u64>) -> FlowOrderChecker {
        FlowOrderChecker {
            last: HashMap::new(),
            scale_cut,
            checked: 0,
        }
    }

    /// Observe a live (non-replay, non-duplicate) delivery of flow `flow`
    /// with clock counter `counter` at `t_ns`.
    pub fn observe(&mut self, flow: u128, counter: u64, t_ns: u64) -> Option<Violation> {
        self.checked += 1;
        let prev = self.last.get(&flow).copied();
        let entry = self.last.entry(flow).or_insert(0);
        *entry = (*entry).max(counter);
        let prev = prev?;
        let same_side = match self.scale_cut {
            Some(cut) => (prev >= cut) == (counter >= cut),
            None => true,
        };
        if same_side && counter <= prev {
            return Some(Violation {
                invariant: InvariantKind::FlowOrdering,
                t_ns,
                observed: counter,
                expected: prev + 1,
                detail: format!("flow {flow:#x}: clock {counter} delivered after {prev}"),
            });
        }
        None
    }
}

/// Copy-level conservation ledger, updated on the packet path (gated on the
/// sentinel switch). `ring_pushed` counts at flush time — copies sitting in
/// an unflushed output buffer when an instance fail-stops die with it, like
/// bytes in a crashed process's socket buffer, and are deliberately never
/// counted as "in the network".
#[derive(Debug, Default)]
pub struct ConservationLedger {
    /// Copies pushed into any SPSC ring (root, instances, supervisor).
    pub ring_pushed: Counter,
    /// Copies popped from any SPSC ring (instances, sink).
    pub ring_popped: Counter,
    /// Popped copies destroyed by a fail-stop kill (the batch tail the
    /// dying instance had already dequeued but not processed).
    pub kill_lost: Counter,
}

impl ConservationLedger {
    /// A zeroed ledger.
    pub fn new() -> ConservationLedger {
        ConservationLedger::default()
    }

    /// Copies currently inside rings (pushed − popped); must be zero after
    /// every ring has drained.
    pub fn in_flight(&self) -> i64 {
        self.ring_pushed.get() as i64 - self.ring_popped.get() as i64
    }
}

/// Sentinel section of a run report: the violations plus the counters that
/// prove how much was actually checked.
#[derive(Debug, Clone, Default)]
pub struct SentinelReport {
    /// Every detected violation, in detection order. Empty in a correct run.
    pub violations: Vec<Violation>,
    /// Journal events the sentinel consumed.
    pub events_checked: u64,
    /// `commit_frontier` advances observed.
    pub frontier_advances: u64,
    /// Sink arrivals put through the per-flow order checker.
    pub deliveries_checked: u64,
    /// Copies pushed into SPSC rings over the run.
    pub ring_pushed: u64,
    /// Copies popped from SPSC rings over the run.
    pub ring_popped: u64,
    /// Popped copies destroyed by fail-stop kills.
    pub kill_lost: u64,
    /// Packets fully processed by NF instances (all instances, failed and
    /// replacements included).
    pub processed: u64,
    /// Duplicate copies suppressed at input queues.
    pub suppressed: u64,
    /// Copies that arrived at the sink (duplicates included).
    pub sink_arrivals: u64,
}

impl SentinelReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one invariant.
    pub fn of_kind(&self, kind: InvariantKind) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.invariant == kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            t_ns: seq * 100,
            kind,
        }
    }

    fn failover_events(vertex: u32, index: u32) -> Vec<EventKind> {
        let instance = 7;
        vec![
            EventKind::InstanceKilled {
                vertex,
                index,
                instance,
                clock: 50,
            },
            EventKind::FailoverBegin {
                vertex,
                index,
                instance,
            },
            EventKind::ReplacementSpawn {
                vertex,
                index,
                instance: instance + 1,
            },
            EventKind::ReplayComplete {
                vertex,
                index,
                instance: instance + 1,
                packets_replayed: 40,
            },
            EventKind::FailoverEnd {
                vertex,
                index,
                instance: instance + 1,
                recovery_ns: 1000,
            },
        ]
    }

    #[test]
    fn clean_failover_sequence_passes() {
        let mut s = Sentinel::new();
        for (i, kind) in failover_events(1, 0).into_iter().enumerate() {
            assert!(s.observe(&ev(i as u64, kind)).is_empty(), "step {i}");
        }
        assert!(s.unfinished_failovers().is_empty());
        assert_eq!(s.events_checked, 5);
    }

    #[test]
    fn out_of_order_failover_is_caught() {
        let mut s = Sentinel::new();
        let evs = failover_events(1, 0);
        // Skip failover_begin: replacement_spawn right after the kill.
        assert!(s.observe(&ev(0, evs[0])).is_empty());
        let v = s.observe(&ev(1, evs[2]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantKind::FailoverPhase);
    }

    #[test]
    fn frontier_regression_is_caught_and_advance_is_not() {
        let mut s = Sentinel::new();
        for (i, f) in [10u64, 25, 25, 40].into_iter().enumerate() {
            let v = s.observe(&ev(
                i as u64,
                EventKind::CommitFrontier {
                    frontier: f,
                    dropped: 1,
                },
            ));
            assert!(v.is_empty(), "monotone frontier {f} flagged");
        }
        let v = s.observe(&ev(
            9,
            EventKind::CommitFrontier {
                frontier: 12,
                dropped: 0,
            },
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantKind::FrontierMonotonic);
        assert_eq!(v[0].observed, 12);
        assert_eq!(v[0].expected, 40);
        assert_eq!(s.frontier_advances, 5);
    }

    #[test]
    fn flow_order_checker_flags_regressions_only_within_a_side() {
        let mut c = FlowOrderChecker::new(None);
        assert!(c.observe(0xaa, 5, 0).is_none());
        assert!(c.observe(0xaa, 9, 0).is_none());
        assert!(c.observe(0xbb, 7, 0).is_none(), "other flow independent");
        let v = c.observe(0xaa, 8, 0).expect("regression caught");
        assert_eq!(v.invariant, InvariantKind::FlowOrdering);
        assert_eq!(c.checked, 4);

        // With a scale cut at 100, pre-cut stragglers may trail post-cut
        // packets (the flow moved instances) — but order within each side
        // still holds.
        let mut c = FlowOrderChecker::new(Some(100));
        assert!(c.observe(0xcc, 150, 0).is_none());
        assert!(c.observe(0xcc, 90, 0).is_none(), "cross-cut is exempt");
        assert!(c.observe(0xcc, 160, 0).is_none());
        assert!(
            c.observe(0xcc, 155, 0).is_some(),
            "post-cut regression still caught"
        );
    }

    #[test]
    fn ledger_tracks_in_flight() {
        let l = ConservationLedger::new();
        l.ring_pushed.add(10);
        l.ring_popped.add(7);
        assert_eq!(l.in_flight(), 3);
        l.ring_popped.add(3);
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn root_handoff_protocol_is_checked() {
        // Clean kill → takeover sequence.
        let mut s = Sentinel::new();
        assert!(s
            .observe(&ev(0, EventKind::RootKilled { at_counter: 50 }))
            .is_empty());
        assert!(s.root_handoff_pending());
        assert!(s
            .observe(&ev(
                1,
                EventKind::RootTakeover {
                    resumed_at: 50,
                    packets_replayed: 12,
                },
            ))
            .is_empty());
        assert!(!s.root_handoff_pending());
        // A second kill is a violation.
        let v = s.observe(&ev(2, EventKind::RootKilled { at_counter: 60 }));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantKind::RootHandoff);

        // Takeover without any kill is a violation.
        let mut s = Sentinel::new();
        let v = s.observe(&ev(
            0,
            EventKind::RootTakeover {
                resumed_at: 1,
                packets_replayed: 0,
            },
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantKind::RootHandoff);
    }

    #[test]
    fn failover_abort_discharges_the_slot() {
        let mut s = Sentinel::new();
        let evs = failover_events(1, 0);
        assert!(s.observe(&ev(0, evs[0])).is_empty());
        assert!(s.observe(&ev(1, evs[1])).is_empty());
        assert_eq!(s.unfinished_failovers(), vec![(1, 0)]);
        assert!(s
            .observe(&ev(
                2,
                EventKind::FailoverAbort {
                    vertex: 1,
                    index: 0,
                    instance: 8,
                },
            ))
            .is_empty());
        assert!(
            s.unfinished_failovers().is_empty(),
            "aborted slot owes no further phases"
        );
    }

    #[test]
    fn codes_round_trip_and_name() {
        for k in [
            InvariantKind::FrontierMonotonic,
            InvariantKind::FlowOrdering,
            InvariantKind::Conservation,
            InvariantKind::ExactlyOnce,
            InvariantKind::RootlogBound,
            InvariantKind::FailoverPhase,
            InvariantKind::RootHandoff,
            InvariantKind::XorResidue,
        ] {
            assert_eq!(InvariantKind::from_code(k.code()), Some(k));
            assert_eq!(invariant_name(k.code()), k.name());
        }
        assert_eq!(invariant_name(999), "unknown");
    }
}
