//! Causal packet tracing: span events recorded at every hop of a sampled
//! packet's life, and a Chrome trace-event (Perfetto-loadable) exporter.
//!
//! ## Span taxonomy
//!
//! One traced packet produces, in causal order:
//!
//! * `inject` — the root stamps the clock and lets go (root lane, zero
//!   duration),
//! * one `service` span per on-path vertex it crosses — the span covers the
//!   wall window from dequeue to egress, carries the measured queue wait as
//!   an argument (ring residency happens *between* lanes, so drawing it as
//!   a span on either lane would break per-lane nesting), and nests a
//!   `store` child span when the packet's NF made synchronous store round
//!   trips,
//! * `suppress` — a queue that recognized the clock as a duplicate (§5.3)
//!   and absorbed the copy,
//! * `replay_inject` — the supervisor re-injected the logged packet towards
//!   a failover replacement (supervisor lane); the replacement's processing
//!   then shows up as a `service` span with `replay:1`,
//! * `deliver` — sink arrival, with the final-hop wait and whether the copy
//!   was a duplicate.
//!
//! ## Lanes
//!
//! Each span lives on a *lane* — exported as one Chrome `tid` — owned by
//! exactly one OS thread at a time (root, one per NF instance id, the
//! supervisor, the sink). Because every lane is single-writer and recording
//! happens in program order, events within a lane are naturally
//! timestamp-monotone and properly nested; the exporter relies on this
//! instead of re-sorting, and [`validate_chrome_trace`] checks it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where a span happened. Exported as the Chrome `tid` of the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLane {
    /// The root (clock-stamping) thread.
    Root,
    /// One NF instance thread. `vertex` is `VertexId.0`, `instance` is
    /// `InstanceId.0`; replacements get their own lane under their fresh id.
    Vertex {
        /// Vertex the instance belongs to.
        vertex: u32,
        /// Instance id (unique across the run, replacements included).
        instance: u64,
    },
    /// The failover supervisor thread.
    Supervisor,
    /// The sink (delivery) thread.
    Sink,
}

impl TraceLane {
    /// Stable Chrome `tid` for the lane. Small fixed ids for the singleton
    /// lanes, then one per instance id.
    pub fn tid(&self) -> u64 {
        match self {
            TraceLane::Root => 0,
            TraceLane::Sink => 1,
            TraceLane::Supervisor => 2,
            TraceLane::Vertex { instance, .. } => 16 + instance,
        }
    }

    /// Human-readable lane name (the Chrome thread name).
    pub fn label(&self) -> String {
        match self {
            TraceLane::Root => "root".to_string(),
            TraceLane::Sink => "sink".to_string(),
            TraceLane::Supervisor => "supervisor".to_string(),
            TraceLane::Vertex { vertex, instance } => format!("v{vertex}.inst{instance}"),
        }
    }
}

/// What a span records. Durations live on [`SpanEvent`]; kinds carry the
/// per-kind arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Root stamped and released the packet (zero duration).
    Inject,
    /// An instance dequeued and processed the packet. The span's duration
    /// is the full dequeue→egress wall window; `store_ns` of it was spent
    /// in synchronous store round trips (exported as a nested child span).
    Service {
        /// Measured wait between the previous hop's egress and this
        /// dequeue (ring residency + batching delay).
        queue_wait_ns: u64,
        /// Synchronous store RTT inside the span (≤ duration).
        store_ns: u64,
        /// True when this was replayed recovery traffic, not live service.
        replay: bool,
    },
    /// A queue suppressed this copy as a duplicate clock (zero duration).
    Suppress,
    /// The supervisor re-injected the logged packet for a replacement
    /// (zero duration).
    ReplayInject,
    /// The sink received the packet (zero duration).
    Deliver {
        /// Final-hop wait: last vertex egress → sink arrival.
        wait_ns: u64,
        /// True when the sink had already seen this clock.
        duplicate: bool,
    },
}

impl SpanKind {
    /// Stable span name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Inject => "inject",
            SpanKind::Service { .. } => "service",
            SpanKind::Suppress => "suppress",
            SpanKind::ReplayInject => "replay_inject",
            SpanKind::Deliver { .. } => "deliver",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace id — the packet's root clock counter.
    pub trace_id: u64,
    /// Lane (exported as the Chrome `tid`).
    pub lane: TraceLane,
    /// Kind and per-kind arguments.
    pub kind: SpanKind,
    /// Start, nanoseconds since the run epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

impl SpanEvent {
    /// Render as one JSONL line in the journal schema (`seq`, `t_ns`,
    /// `event`), so trace spans and journal events share one consumer
    /// format. `seq` continues the journal's global numbering.
    pub fn to_json(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"seq\":{},\"t_ns\":{},\"event\":\"trace_span\",\"trace_id\":{},\"span\":\"{}\",\"lane\":\"{}\",\"dur_ns\":{}",
            seq,
            self.t_ns,
            self.trace_id,
            self.kind.name(),
            self.lane.label(),
            self.dur_ns
        );
        match self.kind {
            SpanKind::Service {
                queue_wait_ns,
                store_ns,
                replay,
            } => {
                let _ = write!(
                    s,
                    ",\"queue_wait_ns\":{queue_wait_ns},\"store_ns\":{store_ns},\"replay\":{}",
                    replay as u8
                );
            }
            SpanKind::Deliver { wait_ns, duplicate } => {
                let _ = write!(
                    s,
                    ",\"wait_ns\":{wait_ns},\"duplicate\":{}",
                    duplicate as u8
                );
            }
            SpanKind::Inject | SpanKind::Suppress | SpanKind::ReplayInject => {}
        }
        s.push('}');
        s
    }
}

/// Default bound on collected spans (~1M ≈ 56 MB); beyond it spans are
/// counted as dropped rather than allocated without limit.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

/// Thread-safe collector of span events.
///
/// Recording takes a short mutex: tracing is flow-sampled, so even at full
/// sampling the rate is bounded by the packet rate, and traced runs are
/// diagnostic runs, not the overhead-measured hot path.
#[derive(Debug)]
pub struct TraceCollector {
    spans: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl Default for TraceCollector {
    fn default() -> TraceCollector {
        TraceCollector::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl TraceCollector {
    /// An empty collector with the default capacity.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// An empty collector bounded at `capacity` spans.
    pub fn with_capacity(capacity: usize) -> TraceCollector {
        TraceCollector {
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Record one span (counted as dropped once the collector is full).
    pub fn record(&self, span: SpanEvent) {
        let mut spans = self.spans.lock().expect("trace collector poisoned");
        if spans.len() >= self.capacity {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace collector poisoned").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans rejected because the collector was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of every span, in record order (per lane this is the owning
    /// thread's program order).
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.spans.lock().expect("trace collector poisoned").clone()
    }
}

/// Summary counts of an exported trace, for reports and CI checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceShape {
    /// Trace events emitted (metadata excluded).
    pub events: usize,
    /// `B` (span begin) events.
    pub begins: usize,
    /// `E` (span end) events.
    pub ends: usize,
    /// Distinct lanes (`tid`s).
    pub lanes: usize,
}

/// Render spans as Chrome trace-event JSON (the `traceEvents` object form
/// Perfetto and `chrome://tracing` load directly).
///
/// Events are grouped by lane and emitted in record order within each lane,
/// which per the collector's single-writer-per-lane discipline yields
/// monotone timestamps and balanced `B`/`E` nesting per `tid`. Timestamps
/// are microseconds with nanosecond decimals, as the format requires.
/// Instant hops are zero-length `B`/`E` pairs; a `service` span with store
/// time nests a `store` child at its start.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    use std::fmt::Write as _;
    let mut tids: Vec<(u64, TraceLane)> = Vec::new();
    for s in spans {
        let tid = s.lane.tid();
        if !tids.iter().any(|(t, _)| *t == tid) {
            tids.push((tid, s.lane));
        }
    }
    tids.sort_by_key(|(t, _)| *t);

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, line: &str, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    for (tid, lane) in &tids {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane.label()
            ),
            &mut first,
        );
    }

    let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
    for (tid, _) in &tids {
        for s in spans.iter().filter(|s| s.lane.tid() == *tid) {
            let t0 = us(s.t_ns);
            let t1 = us(s.t_ns + s.dur_ns);
            let mut begin = format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{t0},\"name\":\"{}\",\
                 \"args\":{{\"trace_id\":{}",
                s.kind.name(),
                s.trace_id
            );
            match s.kind {
                SpanKind::Service {
                    queue_wait_ns,
                    store_ns,
                    replay,
                } => {
                    let _ = write!(
                        begin,
                        ",\"queue_wait_ns\":{queue_wait_ns},\"store_ns\":{store_ns},\"replay\":{}",
                        replay as u8
                    );
                }
                SpanKind::Deliver { wait_ns, duplicate } => {
                    let _ = write!(
                        begin,
                        ",\"wait_ns\":{wait_ns},\"duplicate\":{}",
                        duplicate as u8
                    );
                }
                SpanKind::Inject | SpanKind::Suppress | SpanKind::ReplayInject => {}
            }
            begin.push_str("}}");
            push(&mut out, &begin, &mut first);

            if let SpanKind::Service { store_ns, .. } = s.kind {
                // Nest the store child at the span start; its exact offsets
                // inside the service window are not recorded (store RTT is
                // accumulated per packet), only its total share.
                let store_ns = store_ns.min(s.dur_ns);
                if store_ns > 0 {
                    let tstore = us(s.t_ns + store_ns);
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{t0},\
                             \"name\":\"store\",\"args\":{{\"trace_id\":{}}}}}",
                            s.trace_id
                        ),
                        &mut first,
                    );
                    push(
                        &mut out,
                        &format!("{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{tstore}}}"),
                        &mut first,
                    );
                }
            }
            push(
                &mut out,
                &format!("{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{t1}}}"),
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Validate the shape of a Chrome trace-event JSON document produced by
/// [`chrome_trace_json`] (one event object per line): every `E` closes an
/// open `B` on the same `tid`, every `tid`'s stack is empty at the end, and
/// timestamps never regress within a `tid`. Returns the counted
/// [`TraceShape`] or a description of the first problem.
pub fn validate_chrome_trace(json: &str) -> Result<TraceShape, String> {
    use std::collections::HashMap;
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };

    let mut shape = TraceShape::default();
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for (lineno, line) in json.lines().enumerate() {
        let Some(ph) = field(line, "ph") else {
            continue;
        };
        if ph == "M" {
            continue;
        }
        let tid: u64 = field(line, "tid")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: event without tid", lineno + 1))?;
        let ts: f64 = field(line, "ts")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: event without ts", lineno + 1))?;
        shape.events += 1;
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "line {}: ts regressed on tid {tid}: {ts} after {prev}",
                lineno + 1
            ));
        }
        *prev = ts;
        match ph.as_str() {
            "B" => {
                shape.begins += 1;
                let name = field(line, "name").unwrap_or_default();
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                shape.ends += 1;
                let stack = stacks.entry(tid).or_default();
                if stack.pop().is_none() {
                    return Err(format!(
                        "line {}: E without matching B on tid {tid}",
                        lineno + 1
                    ));
                }
            }
            other => {
                return Err(format!("line {}: unexpected phase {other:?}", lineno + 1));
            }
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} unclosed span(s): {:?}",
                stack.len(),
                stack
            ));
        }
    }
    shape.lanes = stacks.len();
    if shape.begins != shape.ends {
        return Err(format!(
            "unbalanced events: {} B vs {} E",
            shape.begins, shape.ends
        ));
    }
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(trace_id: u64, instance: u64, t_ns: u64, dur: u64, store: u64) -> SpanEvent {
        SpanEvent {
            trace_id,
            lane: TraceLane::Vertex {
                vertex: 1,
                instance,
            },
            kind: SpanKind::Service {
                queue_wait_ns: 40,
                store_ns: store,
                replay: false,
            },
            t_ns,
            dur_ns: dur,
        }
    }

    #[test]
    fn collector_caps_and_counts_drops() {
        let tc = TraceCollector::with_capacity(2);
        for i in 0..5 {
            tc.record(service(i, 0, i * 100, 50, 0));
        }
        assert_eq!(tc.len(), 2);
        assert_eq!(tc.dropped(), 3);
        assert_eq!(tc.snapshot().len(), 2);
    }

    #[test]
    fn export_validates_and_counts() {
        let tc = TraceCollector::new();
        tc.record(SpanEvent {
            trace_id: 7,
            lane: TraceLane::Root,
            kind: SpanKind::Inject,
            t_ns: 100,
            dur_ns: 0,
        });
        tc.record(service(7, 3, 250, 500, 120));
        tc.record(SpanEvent {
            trace_id: 7,
            lane: TraceLane::Sink,
            kind: SpanKind::Deliver {
                wait_ns: 90,
                duplicate: false,
            },
            t_ns: 900,
            dur_ns: 0,
        });
        let json = chrome_trace_json(&tc.snapshot());
        let shape = validate_chrome_trace(&json).expect("valid trace");
        // inject B/E + service B/E + nested store B/E + deliver B/E.
        assert_eq!(shape.begins, 4);
        assert_eq!(shape.ends, 4);
        assert_eq!(shape.events, 8);
        assert_eq!(shape.lanes, 3);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("v1.inst3"));
        assert!(json.contains("\"trace_id\":7"));
    }

    #[test]
    fn validator_rejects_regressions_and_imbalance() {
        // ts regression within one tid.
        let bad = "{\"ph\":\"B\",\"pid\":1,\"tid\":5,\"ts\":10.0,\"name\":\"a\"}\n\
                   {\"ph\":\"E\",\"pid\":1,\"tid\":5,\"ts\":9.0}\n";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("regressed"));
        // E without B.
        let bad = "{\"ph\":\"E\",\"pid\":1,\"tid\":5,\"ts\":9.0}\n";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("without matching B"));
        // Unclosed span.
        let bad = "{\"ph\":\"B\",\"pid\":1,\"tid\":5,\"ts\":9.0,\"name\":\"a\"}\n";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn jsonl_lines_share_the_journal_schema() {
        let line = service(42, 1, 10, 20, 5).to_json(9);
        assert!(line.starts_with("{\"seq\":9,\"t_ns\":10,\"event\":\"trace_span\""));
        assert!(line.contains("\"trace_id\":42"));
        assert!(line.contains("\"span\":\"service\""));
        assert!(line.contains("\"queue_wait_ns\":40"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn store_child_is_clamped_to_the_service_window() {
        // store_ns longer than the span (clock jitter) must still nest.
        let json = chrome_trace_json(&[service(1, 0, 100, 50, 500)]);
        validate_chrome_trace(&json).expect("clamped store child stays nested");
    }
}
